"""Bench E-X3: the Quantized-then-Bucketing switchover (Section V-C)."""

from repro.experiments import hybrid_study


def test_hybrid_switchover_on_topeft(benchmark, bench_config):
    result = benchmark.pedantic(
        hybrid_study.run,
        args=(bench_config,),
        kwargs={"workflow": "topeft", "switch_points": (25, 50)},
        rounds=1,
        iterations=1,
    )
    eb = result.of("exhaustive_bucketing")
    hybrids = [r for r in result.rows if r.variant.startswith("hybrid")]
    # The mitigation must not sacrifice the bucketing algorithms' strong
    # suits: memory and disk stay within a few points of plain EB.
    for row in hybrids:
        assert row.awe_memory >= eb.awe_memory - 0.1
        assert row.awe_disk >= eb.awe_disk - 0.1
    print()
    print(hybrid_study.render(result))
