"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures and prints
the reproduced rows (run ``pytest benchmarks/ --benchmark-only -s`` to
see them).  Sizes are reduced from the paper's 1000-task / 20-50-worker
runs where a full-size run would make the harness take tens of minutes;
the CLI (``repro-experiments``) runs the full-size versions.
"""

import pytest

from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """Reduced-scale grid configuration used by the figure benchmarks."""
    return ExperimentConfig(n_tasks=300, n_workers=8, ramp_up_seconds=240.0)
