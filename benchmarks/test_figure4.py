"""Bench E-F4: regenerate Figure 4 (synthetic memory distributions)."""

from repro.experiments import figure4


def test_figure4_synthetic_generation(benchmark):
    """Time generating all five 1000-task synthetic workflows."""
    result = benchmark(figure4.run, 1000, 0)
    assert set(result.workflows) == {
        "normal", "uniform", "exponential", "bimodal", "trimodal"
    }
    # Distribution centres the workflows are designed around.
    assert abs(result.stats["normal"][5] - 8000) < 400      # mean
    assert result.stats["exponential"][5] > result.stats["exponential"][2]  # skew
    p1, p2, p3 = result.trimodal_phase_means
    assert p2 > p1 > p3                                      # moving phases
    print()
    print(figure4.render(result))
