"""Bench E-X2: ablations of the bucketing design choices."""

from repro.experiments import ablation


def test_significance_ablation(benchmark, bench_config):
    rows = benchmark.pedantic(
        ablation.run_significance_ablation,
        args=(bench_config,),
        kwargs={"workflow": "trimodal"},
        rounds=1,
        iterations=1,
    )
    by_variant = {r.variant: r for r in rows}
    paper = next(v for k, v in by_variant.items() if "paper" in k)
    ablated = next(v for k, v in by_variant.items() if "ablated" in k)
    # Recency weighting exists for phasing workloads; on the moving
    # trimodal stream dropping it must not help.
    assert paper.awe_memory >= ablated.awe_memory - 0.05
    print()
    print(ablation.render(ablation.AblationResult(rows=rows)))


def test_exploration_budget_ablation(benchmark, bench_config):
    rows = benchmark.pedantic(
        ablation.run_exploration_ablation,
        args=(bench_config,),
        kwargs={"budgets": (3, 10, 30)},
        rounds=1,
        iterations=1,
    )
    assert len(rows) == 3
    assert all(0 < r.awe_memory <= 1 for r in rows)
    print()
    print(ablation.render(ablation.AblationResult(rows=rows)))


def test_bucket_cap_ablation(benchmark, bench_config):
    rows = benchmark.pedantic(
        ablation.run_bucket_cap_ablation,
        args=(bench_config,),
        kwargs={"caps": (1, 2, 10)},
        rounds=1,
        iterations=1,
    )
    by_cap = {r.variant.split(" ")[0]: r for r in rows}
    # On the bimodal workload a single bucket cannot model the two
    # modes: allowing >= 2 buckets must not hurt.
    assert by_cap["max_buckets=10"].awe_memory >= by_cap["max_buckets=1"].awe_memory - 0.05
    print()
    print(ablation.render(ablation.AblationResult(rows=rows)))
