"""Bench E-T1: regenerate Table I (allocation computation time).

Times both bucketing algorithms' state computation + allocation at the
paper's record counts, including the literal Algorithm 1 transcription
that reproduces the paper's Greedy Bucketing blowup.  The 5000-record
literal-GB measurement takes seconds by design — that is the result.
"""

import pytest

from repro.core.exhaustive import exhaustive_break_indices
from repro.core.greedy import greedy_break_indices
from repro.experiments import table1
from repro.experiments.table1 import _make_records


@pytest.fixture(scope="module")
def records_5000():
    return _make_records(5000, seed=0)


def test_table1_exhaustive_at_5000(benchmark, records_5000):
    """EB at 5000 records: the paper reports 1.6 ms; ours is ~1 ms."""
    breaks = benchmark(exhaustive_break_indices, records_5000)
    assert breaks[-1] == 4999
    # Roughly-linear scaling: must stay well under 10 ms.
    assert benchmark.stats.stats.mean < 0.05


def test_table1_greedy_optimized_at_5000(benchmark, records_5000):
    """This repo's prefix-sum GB stays in the same range as EB."""
    breaks = benchmark(greedy_break_indices, records_5000)
    assert breaks[-1] == 4999


def test_table1_full_sweep(benchmark):
    """The complete Table I sweep, literal GB included (one round)."""
    result = benchmark.pedantic(
        table1.run,
        kwargs={"record_counts": (10, 200, 1000, 2000, 5000), "repeats": 5},
        rounds=1,
        iterations=1,
    )
    lit = result.microseconds["greedy_bucketing_literal"]
    eb = result.microseconds["exhaustive_bucketing"]
    # Paper shape: GB superlinear (x500 records -> >> x500 time) while EB
    # grows far slower; bounds are loose because single-process timing on
    # a busy host is noisy.
    assert lit[-1] / lit[0] > 500
    assert eb[-1] / max(eb[0], 1e-9) < lit[-1] / lit[0] / 10
    assert lit[-1] > 100 * eb[-1]
    print()
    print(table1.render(result))
