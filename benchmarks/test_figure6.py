"""Bench E-F6: regenerate Figure 6 (waste decomposition)."""

import pytest

from repro.experiments import figure6


@pytest.fixture(scope="module")
def result(bench_config):
    return figure6.run(config=bench_config)


def test_figure6_waste_split(benchmark, bench_config, result):
    from repro.experiments.runner import run_cell

    benchmark.pedantic(
        run_cell,
        args=("normal", "quantized_bucketing", bench_config),
        rounds=1,
        iterations=1,
    )

    # Shape claims (Section V-D):
    # 1. Max Seen's waste is (almost) pure over-estimation.
    assert result.failed_share("normal", "max_seen", "memory") < 0.1
    # 2. Quantized Bucketing is the under-estimating outlier.
    assert result.failed_share("normal", "quantized_bucketing", "memory") > \
        result.failed_share("normal", "max_seen", "memory")
    # 3. The bucketing algorithms keep their failed share moderate,
    #    behind Quantized's.
    for algo in ("greedy_bucketing", "exhaustive_bucketing"):
        assert result.failed_share("normal", algo, "memory") < \
            result.failed_share("normal", "quantized_bucketing", "memory")
    # 4. Max Throughput under-allocates more than Min Waste (it ignores
    #    retry cost), showing a larger failed share on the heavy tail.
    assert result.failed_share("exponential", "max_throughput", "memory") >= \
        result.failed_share("exponential", "min_waste", "memory") - 1e-9

    print()
    print(figure6.render(result))
