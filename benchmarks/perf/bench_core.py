"""Core allocation-loop microbenchmarks -> BENCH_core.json.

Three benchmark families, matching the hot paths named in
docs/PERFORMANCE.md:

* **record ingest** — the simulator's update->predict alternation: one
  ``RecordList.add`` followed by touching the values / prefix-sum views,
  at 1k / 5k / 20k records.  Measured for the array-backed
  implementation and (at 1k / 5k) for the seed's Python-object-backed
  :class:`~repro.core.records_legacy.LegacyRecordList`, whose per-task
  full view rebuild is the baseline the fast path is scored against.
* **allocation latency** — time to compute a fresh bucketing state plus
  one allocation for Greedy and Exhaustive Bucketing, reproducing the
  record-count axis of the paper's Table I.
* **grid wall time** — a small (workflow x algorithm) sweep through
  ``run_grid``, serial, end to end.

Results are written as a flat JSON document (``BENCH_core.json`` at the
repo root by default) so ``scripts/bench_compare.py`` can diff two runs
and flag regressions.  Run with ``--quick`` in CI for a seconds-scale
smoke pass.

Usage::

    python benchmarks/perf/bench_core.py [--quick] [--out PATH] [--repeats N]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, List, Optional

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np  # noqa: E402

from repro.core.records import RecordList  # noqa: E402
from repro.core.records_legacy import LegacyRecordList  # noqa: E402
from repro.experiments.config import ExperimentConfig  # noqa: E402
from repro.experiments.runner import run_grid  # noqa: E402
from repro.experiments.table1 import _make_records, time_algorithm  # noqa: E402

#: Bump when metric names or semantics change incompatibly.
SCHEMA_VERSION = 1


def _ingest_values(n: int, seed: int = 0) -> np.ndarray:
    """The paper's running example: N(8 GB, 2 GB) peak memory records."""
    rng = np.random.default_rng(seed)
    return np.clip(rng.normal(8000.0, 2000.0, n), 50.0, None)


def bench_record_ingest(record_list_cls: Callable, n: int, repeats: int) -> float:
    """Seconds to ingest ``n`` records in update->predict alternation.

    After every ``add`` the three views the cost kernels read
    (``values``, ``sig_prefix``, ``sigval_prefix``) are touched, which is
    what every completed task costs in the simulator: the legacy
    implementation rebuilds all of them from Python objects, the
    array-backed one shifts a suffix and snapshots buffers.
    """
    values = _ingest_values(n)
    best = float("inf")
    for _ in range(repeats):
        records = record_list_cls()
        start = time.perf_counter()
        for task_id, value in enumerate(values):
            records.add(
                float(value), significance=float(task_id + 1), task_id=task_id
            )
            _ = records.values
            _ = records.sig_prefix
            _ = records.sigval_prefix
        best = min(best, time.perf_counter() - start)
    return best


def bench_allocation_latency(
    algorithm: str, n: int, repeats: int, seed: int = 0
) -> float:
    """Seconds for one bucketing-state computation + allocation at ``n`` records."""
    records = _make_records(n, seed=seed)
    return time_algorithm(algorithm, records, repeats=repeats, seed=seed)


def bench_grid(n_tasks: int, jobs: int = 1) -> float:
    """Wall seconds for a small end-to-end (workflow x algorithm) sweep."""
    config = ExperimentConfig(n_tasks=n_tasks, n_workers=8)
    start = time.perf_counter()
    run_grid(
        workflows=("uniform", "bimodal"),
        algorithms=("max_seen", "greedy_bucketing", "exhaustive_bucketing"),
        config=config,
        jobs=jobs,
    )
    return time.perf_counter() - start


def run_suite(quick: bool = False, repeats: Optional[int] = None) -> Dict[str, object]:
    """Execute every benchmark; return the BENCH_core.json document."""
    repeats = repeats if repeats is not None else (1 if quick else 3)
    ingest_sizes = [1000, 5000] if quick else [1000, 5000, 20000]
    # The 5000-record legacy baseline is the acceptance anchor (>=5x);
    # it costs ~1.5 s, cheap enough to keep even in --quick mode.
    legacy_sizes = [1000, 5000]
    latency_sizes = [200, 1000] if quick else [1000, 5000]
    grid_tasks = 60 if quick else 150

    metrics: Dict[str, float] = {}

    for n in ingest_sizes:
        metrics[f"record_ingest_new_n{n}_s"] = bench_record_ingest(
            RecordList, n, repeats
        )
    for n in legacy_sizes:
        metrics[f"record_ingest_legacy_n{n}_s"] = bench_record_ingest(
            LegacyRecordList, n, repeats
        )
        new = metrics[f"record_ingest_new_n{n}_s"]
        metrics[f"record_ingest_speedup_n{n}_x"] = (
            metrics[f"record_ingest_legacy_n{n}_s"] / new if new > 0 else float("inf")
        )

    for algorithm in ("greedy_bucketing", "exhaustive_bucketing"):
        for n in latency_sizes:
            metrics[f"allocation_latency_{algorithm}_n{n}_s"] = bench_allocation_latency(
                algorithm, n, repeats
            )

    metrics["grid_serial_s"] = bench_grid(grid_tasks, jobs=1)

    return {
        "schema": SCHEMA_VERSION,
        "quick": quick,
        "repeats": repeats,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "metrics": metrics,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=os.path.join(_REPO_ROOT, "BENCH_core.json"),
        help="output JSON path (default: BENCH_core.json at the repo root)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="seconds-scale smoke pass (CI): smaller sizes, one repeat",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats (best-of)"
    )
    args = parser.parse_args(argv)

    doc = run_suite(quick=args.quick, repeats=args.repeats)
    # Atomic replace: a benchmark run killed mid-write must not leave a
    # torn BENCH_core.json for the regression checker to trip over.
    from repro.checkpoint import write_text_atomic

    write_text_atomic(args.out, json.dumps(doc, indent=2, sort_keys=True) + "\n")

    width = max(len(k) for k in doc["metrics"])
    for key in sorted(doc["metrics"]):
        value = doc["metrics"][key]
        unit = "x" if key.endswith("_x") else "s"
        print(f"{key:<{width}}  {value:12.6f} {unit}")
    print(f"\nwrote {args.out}")

    speedup_keys = [k for k in doc["metrics"] if k.startswith("record_ingest_speedup")]
    worst = min(doc["metrics"][k] for k in speedup_keys)
    print(f"worst ingest speedup vs seed implementation: {worst:.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
