"""Core allocation-loop microbenchmarks -> BENCH_core.json.

Three benchmark families, matching the hot paths named in
docs/PERFORMANCE.md:

* **record ingest** — the simulator's update->predict alternation: one
  ``RecordList.add`` followed by touching the values / prefix-sum views,
  at 1k / 5k / 20k records.  Measured for the array-backed
  implementation and (at 1k / 5k) for the seed's Python-object-backed
  :class:`~repro.core.records_legacy.LegacyRecordList`, whose per-task
  full view rebuild is the baseline the fast path is scored against.
* **allocation latency** — time to compute a fresh bucketing state plus
  one allocation for Greedy and Exhaustive Bucketing, reproducing the
  record-count axis of the paper's Table I.
* **million-record hot path** (full runs only) — the streaming regime at
  n = 10^6 records: steady-state ingest cost, the per-decision
  allocation latency with the incremental partition engines on and off,
  and the partition-search pair underlying the headline claim — the
  incremental engine's ``break_indices`` versus the full
  ``exhaustive_break_indices`` re-search on the identical stream (the
  two return identical break indices; only the cost differs).  Ingest at
  this size is measured over a 1000-record steady-state tail on a
  prebuilt list (replaying the full history through the O(n) sorted
  insert would take ~40 minutes and measure the same thing).
* **grid wall time** — a small (workflow x algorithm) sweep through
  ``run_grid``, serial, end to end.
* **footprint** — record-store bytes at n = 10^6 and the process peak
  RSS (``resource.getrusage``; stdlib, since psutil is not a
  dependency).

Results are written as a flat JSON document (``BENCH_core.json`` at the
repo root by default) so ``scripts/bench_compare.py`` can diff two runs
and flag regressions.  Run with ``--quick`` in CI for a seconds-scale
smoke pass.

Usage::

    python benchmarks/perf/bench_core.py [--quick] [--out PATH] [--repeats N]
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np  # noqa: E402

from repro.core.records import RecordList  # noqa: E402
from repro.core.records_legacy import LegacyRecordList  # noqa: E402
from repro.experiments.config import ExperimentConfig  # noqa: E402
from repro.experiments.runner import run_grid  # noqa: E402
from repro.experiments.table1 import _make_records, time_algorithm  # noqa: E402

#: Bump when metric names or semantics change incompatibly.
SCHEMA_VERSION = 1


def _ingest_values(n: int, seed: int = 0) -> np.ndarray:
    """The paper's running example: N(8 GB, 2 GB) peak memory records."""
    rng = np.random.default_rng(seed)
    return np.clip(rng.normal(8000.0, 2000.0, n), 50.0, None)


def bench_record_ingest(record_list_cls: Callable, n: int, repeats: int) -> float:
    """Seconds to ingest ``n`` records in update->predict alternation.

    After every ``add`` the three views the cost kernels read
    (``values``, ``sig_prefix``, ``sigval_prefix``) are touched, which is
    what every completed task costs in the simulator: the legacy
    implementation rebuilds all of them from Python objects, the
    array-backed one shifts a suffix and snapshots buffers.
    """
    values = _ingest_values(n)
    best = float("inf")
    for _ in range(repeats):
        records = record_list_cls()
        start = time.perf_counter()
        for task_id, value in enumerate(values):
            records.add(
                float(value), significance=float(task_id + 1), task_id=task_id
            )
            _ = records.values
            _ = records.sig_prefix
            _ = records.sigval_prefix
        best = min(best, time.perf_counter() - start)
    return best


def bench_allocation_latency(
    algorithm: str, n: int, repeats: int, seed: int = 0
) -> float:
    """Seconds for one bucketing-state computation + allocation at ``n`` records."""
    records = _make_records(n, seed=seed)
    return time_algorithm(algorithm, records, repeats=repeats, seed=seed)


def _make_streaming_fixture(
    n: int, tail: int, seed: int = 0
) -> Tuple[RecordList, np.ndarray, np.ndarray]:
    """A prebuilt n-record list plus a ``tail``-long arrival stream.

    Same N(8 GB, 2 GB) population as :func:`_ingest_values`; the list is
    bulk-built with :meth:`RecordList.from_arrays` so fixture setup is
    O(n log n) instead of the O(n^2) streaming replay.
    """
    rng = np.random.default_rng(seed)
    values = np.clip(rng.normal(8000.0, 2000.0, n + tail), 50.0, None)
    sigs = np.arange(1.0, n + tail + 1.0)
    records = RecordList.from_arrays(values[:n], sigs[:n])
    return records, values[n:], sigs[n:]


def bench_streaming_ingest(n: int, tail: int, repeats: int) -> float:
    """Steady-state seconds for ``tail`` sorted inserts at size ~``n``.

    Reported as the total for the tail (one fresh fixture per repeat so
    the list never drifts far from ``n``); the dominant cost is the
    O(n) suffix shift across the five record buffers per insert.
    """
    best = float("inf")
    for rep in range(repeats):
        records, values, sigs = _make_streaming_fixture(n, tail, seed=rep)
        start = time.perf_counter()
        for i in range(tail):
            records.add(float(values[i]), float(sigs[i]), task_id=n + i)
        best = min(best, time.perf_counter() - start)
    return best


def bench_partition_search(
    n: int, decisions: int, repeats: int
) -> Tuple[float, float]:
    """(full, incremental) seconds per partition search on one stream.

    Drives the same arrival stream through an
    :class:`~repro.core.exhaustive.ExhaustiveBucketing` with the
    incremental engine on, timing per update (a) the engine's
    ``break_indices`` and (b) the full ``exhaustive_break_indices``
    re-search over the same records.  The two produce identical break
    indices (asserted); the pair is the measured form of the
    "incremental allocation vs full re-search" speedup claim.
    """
    from repro.core.exhaustive import ExhaustiveBucketing, exhaustive_break_indices

    best_full = float("inf")
    best_inc = float("inf")
    for rep in range(repeats):
        records, values, sigs = _make_streaming_fixture(n, decisions, seed=rep)
        algo = ExhaustiveBucketing(rng=np.random.default_rng(rep), incremental=True)
        algo._records = records
        algo._partition_engine = algo._make_partition_engine()
        engine = algo.partition_engine
        assert engine is not None
        engine.break_indices()  # warm resync outside the timed region
        t_full = 0.0
        t_inc = 0.0
        for i in range(decisions):
            pos = records.add(float(values[i]), float(sigs[i]), task_id=n + i)
            eviction = records.last_eviction
            inserted = None if (pos is None and eviction is None) else float(values[i])
            engine.observe(inserted, eviction, pos)
            start = time.perf_counter()
            inc_breaks = engine.break_indices()
            t_inc += time.perf_counter() - start
            engine.consume_stats(inc_breaks)
            start = time.perf_counter()
            full_breaks = exhaustive_break_indices(records)
            t_full += time.perf_counter() - start
            assert inc_breaks == full_breaks, (
                f"incremental/full break divergence at update {i}"
            )
        best_full = min(best_full, t_full / decisions)
        best_inc = min(best_inc, t_inc / decisions)
    return best_full, best_inc


def bench_streaming_decision(
    algorithm: str, n: int, decisions: int, repeats: int, incremental: bool
) -> float:
    """Seconds per allocation decision (state rebuild + one allocation).

    Streaming regime: each decision is preceded by one (untimed) record
    update, as in the simulator's update->predict alternation; timed is
    the dirty-state rebuild plus the allocation draw.
    """
    from repro.core.exhaustive import ExhaustiveBucketing
    from repro.core.greedy import GreedyBucketing

    makers: Dict[str, Callable] = {
        "exhaustive_bucketing": lambda rng: ExhaustiveBucketing(
            rng=rng, incremental=incremental
        ),
        "greedy_bucketing": lambda rng: GreedyBucketing(
            rng=rng, incremental=incremental
        ),
    }
    best = float("inf")
    for rep in range(repeats):
        records, values, sigs = _make_streaming_fixture(n, decisions, seed=rep)
        algo = makers[algorithm](np.random.default_rng(rep))
        algo._records = records
        algo._partition_engine = algo._make_partition_engine()
        algo._dirty = True
        # Warm-up decision outside the timed region: it pays the
        # engines' one-off resync (for incremental greedy, a full
        # search) that later decisions amortize away.
        algo.predict()
        total = 0.0
        for i in range(decisions):
            algo.update(float(values[i]), float(sigs[i]), task_id=n + i)
            start = time.perf_counter()
            algo.predict()
            total += time.perf_counter() - start
        best = min(best, total / decisions)
    return best


def peak_rss_mb() -> float:
    """Process peak resident set size in MiB (Linux ru_maxrss is KiB)."""
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss is bytes there
        return peak_kb / 2**20
    return peak_kb / 1024.0


def bench_grid(n_tasks: int, jobs: int = 1) -> float:
    """Wall seconds for a small end-to-end (workflow x algorithm) sweep."""
    config = ExperimentConfig(n_tasks=n_tasks, n_workers=8)
    start = time.perf_counter()
    run_grid(
        workflows=("uniform", "bimodal"),
        algorithms=("max_seen", "greedy_bucketing", "exhaustive_bucketing"),
        config=config,
        jobs=jobs,
    )
    return time.perf_counter() - start


def run_suite(quick: bool = False, repeats: Optional[int] = None) -> Dict[str, object]:
    """Execute every benchmark; return the BENCH_core.json document."""
    repeats = repeats if repeats is not None else (1 if quick else 3)
    ingest_sizes = [1000, 5000] if quick else [1000, 5000, 20000]
    # The 5000-record legacy baseline is the acceptance anchor (>=5x);
    # it costs ~1.5 s, cheap enough to keep even in --quick mode.
    legacy_sizes = [1000, 5000]
    latency_sizes = [200, 1000] if quick else [1000, 5000]
    grid_tasks = 60 if quick else 150

    metrics: Dict[str, float] = {}

    for n in ingest_sizes:
        metrics[f"record_ingest_new_n{n}_s"] = bench_record_ingest(
            RecordList, n, repeats
        )
    for n in legacy_sizes:
        metrics[f"record_ingest_legacy_n{n}_s"] = bench_record_ingest(
            LegacyRecordList, n, repeats
        )
        new = metrics[f"record_ingest_new_n{n}_s"]
        metrics[f"record_ingest_speedup_n{n}_x"] = (
            metrics[f"record_ingest_legacy_n{n}_s"] / new if new > 0 else float("inf")
        )

    for algorithm in ("greedy_bucketing", "exhaustive_bucketing"):
        for n in latency_sizes:
            metrics[f"allocation_latency_{algorithm}_n{n}_s"] = bench_allocation_latency(
                algorithm, n, repeats
            )

    if not quick:
        n = 1_000_000
        metrics[f"record_ingest_new_n{n}_s"] = bench_streaming_ingest(
            n, tail=1000, repeats=repeats
        )
        full_s, inc_s = bench_partition_search(n, decisions=200, repeats=repeats)
        metrics[f"partition_search_full_n{n}_s"] = full_s
        metrics[f"partition_search_incremental_n{n}_s"] = inc_s
        metrics[f"partition_search_speedup_n{n}_x"] = (
            full_s / inc_s if inc_s > 0 else float("inf")
        )
        metrics[f"allocation_latency_exhaustive_bucketing_n{n}_s"] = (
            bench_streaming_decision(
                "exhaustive_bucketing", n, decisions=200, repeats=repeats,
                incremental=True,
            )
        )
        metrics[f"allocation_latency_exhaustive_bucketing_full_n{n}_s"] = (
            bench_streaming_decision(
                "exhaustive_bucketing", n, decisions=100, repeats=repeats,
                incremental=False,
            )
        )
        metrics[f"allocation_latency_greedy_bucketing_n{n}_s"] = (
            bench_streaming_decision(
                "greedy_bucketing", n, decisions=30, repeats=repeats,
                incremental=True,
            )
        )
        metrics[f"allocation_latency_greedy_bucketing_full_n{n}_s"] = (
            bench_streaming_decision(
                "greedy_bucketing", n, decisions=3, repeats=min(repeats, 2),
                incremental=False,
            )
        )
        fixture, _, _ = _make_streaming_fixture(n, 0)
        metrics[f"record_store_bytes_n{n}_mb"] = fixture.nbytes / 2**20
        del fixture

    metrics["grid_serial_s"] = bench_grid(grid_tasks, jobs=1)
    metrics["peak_rss_mb"] = peak_rss_mb()

    return {
        "schema": SCHEMA_VERSION,
        "quick": quick,
        "repeats": repeats,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "metrics": metrics,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=os.path.join(_REPO_ROOT, "BENCH_core.json"),
        help="output JSON path (default: BENCH_core.json at the repo root)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="seconds-scale smoke pass (CI): smaller sizes, one repeat",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats (best-of)"
    )
    args = parser.parse_args(argv)

    doc = run_suite(quick=args.quick, repeats=args.repeats)
    # Atomic replace: a benchmark run killed mid-write must not leave a
    # torn BENCH_core.json for the regression checker to trip over.
    from repro.checkpoint import write_text_atomic

    write_text_atomic(args.out, json.dumps(doc, indent=2, sort_keys=True) + "\n")

    width = max(len(k) for k in doc["metrics"])
    for key in sorted(doc["metrics"]):
        value = doc["metrics"][key]
        unit = "x" if key.endswith("_x") else ("MB" if key.endswith("_mb") else "s")
        print(f"{key:<{width}}  {value:12.6f} {unit}")
    print(f"\nwrote {args.out}")

    speedup_keys = [k for k in doc["metrics"] if k.startswith("record_ingest_speedup")]
    worst = min(doc["metrics"][k] for k in speedup_keys)
    print(f"worst ingest speedup vs seed implementation: {worst:.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
