"""Allocation-service stress benchmark -> BENCH_service.json.

Drives an in-process :class:`repro.service.AllocationService` the way a
workflow manager would under load: many concurrent clients, thousands
of task categories, seeded Poisson dispatch failures forcing
``allocate_retry`` escalations, and a feedback ``record`` for every
completed task.  Everything is seeded, so two runs issue the identical
operation population; only the timings differ.

Measured families:

* **sustained request throughput** — saturated concurrent clients
  awaiting one operation at a time (the worst case for the coalescing
  writer: every queue drain is small).  Reported as
  ``service_throughput_kops_x`` (thousand operations per second,
  higher is better) so the regression gate treats drops as failures.
* **allocation latency** — per-``allocate`` wall latency percentiles
  across the sustained run: ``service_alloc_p50_s`` / ``p95_s`` /
  ``p99_s``.
* **batched throughput** — the same population submitted through
  ``allocate_batch`` in fixed-size chunks; one queue item per chunk,
  one WAL group commit per drain.
* **durable throughput** (full runs only) — the sustained scenario with
  the write-ahead log on (``durability="batch"``), the deployment
  configuration of the daemon.
* **wire overhead** — the same operation stream round-tripped over a
  UNIX socket, once through a raw NDJSON connection
  (``service_raw_socket_kops_x``) and once through the resilient
  client SDK with auto-keying on (``service_sdk_kops_x``), so the
  regression gate prices the SDK's idempotency/retry bookkeeping
  against the bare wire.

Usage::

    python benchmarks/perf/bench_service.py [--quick] [--out PATH] [--repeats N]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional, Tuple

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np  # noqa: E402

from repro.core.allocator import AllocatorConfig, ExploratoryConfig  # noqa: E402
from repro.service import AllocationService, ServiceConfig  # noqa: E402

#: Bump when metric names or semantics change incompatibly.
SCHEMA_VERSION = 1

#: Mean dispatch failures per task (Poisson): each failure costs one
#: ``allocate_retry`` round trip before the task completes.
DISPATCH_FAILURE_RATE = 0.08


def _service_config(n_shards: int, data_dir: Optional[str] = None) -> ServiceConfig:
    return ServiceConfig(
        allocator=AllocatorConfig(
            algorithm="greedy_bucketing",
            # The incremental partition engine keeps hot categories (the
            # Zipf head accumulates thousands of records) off the O(n*k)
            # full re-bucketing path on every allocate.
            algorithm_kwargs={"incremental": True},
            seed=5,
            exploratory=ExploratoryConfig(min_records=5),
        ),
        n_shards=n_shards,
        data_dir=data_dir,
        durability="batch",
    )


def make_task_stream(
    n_tasks: int, n_categories: int, seed: int = 0
) -> List[List[Dict[str, Any]]]:
    """Per-task operation programs: allocate, Poisson retries, record.

    Categories are drawn from a Zipf-flavoured distribution (a few hot
    categories, a long tail) over ``n_categories`` names; peaks follow
    the paper's running N(8 GB, 2 GB) example.  Seeded: the same
    ``(n_tasks, n_categories, seed)`` produce the identical stream.
    """
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.arange(1, n_categories + 1) ** 0.9
    weights /= weights.sum()
    cats = rng.choice(n_categories, size=n_tasks, p=weights)
    retries = rng.poisson(DISPATCH_FAILURE_RATE, size=n_tasks)
    peaks = np.clip(rng.normal(8000.0, 2000.0, n_tasks), 50.0, None)
    programs: List[List[Dict[str, Any]]] = []
    for task_id in range(n_tasks):
        category = f"category-{cats[task_id]:05d}"
        program: List[Dict[str, Any]] = [
            {"op": "allocate", "category": category, "task_id": task_id}
        ]
        previous = {"cores": 1.0, "memory": 1000.0, "disk": 1000.0}
        for _ in range(int(retries[task_id])):
            program.append(
                {
                    "op": "allocate_retry",
                    "category": category,
                    "task_id": task_id,
                    "previous": previous,
                    "observed": previous,
                    "exhausted": ["memory"],
                }
            )
        program.append(
            {
                "op": "record",
                "category": category,
                "task_id": task_id,
                "peaks": {
                    "cores": 1,
                    "memory": float(peaks[task_id]),
                    "disk": float(peaks[task_id]) / 16.0,
                },
            }
        )
        programs.append(program)
    return programs


async def _drive_sustained(
    service: AllocationService,
    programs: List[List[Dict[str, Any]]],
    n_clients: int,
) -> Tuple[float, np.ndarray, int]:
    """Saturated clients, one awaited op at a time.

    Returns (wall seconds, per-allocate latencies, total ops applied).
    """
    alloc_latencies: List[float] = []
    total_ops = 0

    async def client(worker: int) -> None:
        nonlocal total_ops
        for index in range(worker, len(programs), n_clients):
            for op in programs[index]:
                start = time.perf_counter()
                await service.submit(op)
                if op["op"] == "allocate":
                    alloc_latencies.append(time.perf_counter() - start)
                total_ops += 1

    start = time.perf_counter()
    await asyncio.gather(*(client(w) for w in range(n_clients)))
    wall = time.perf_counter() - start
    return wall, np.asarray(alloc_latencies), total_ops


async def _drive_batched(
    service: AllocationService,
    programs: List[List[Dict[str, Any]]],
    chunk: int,
) -> Tuple[float, int]:
    """The same population as one flat stream of fixed-size batches."""
    flat = [op for program in programs for op in program]
    start = time.perf_counter()
    for begin in range(0, len(flat), chunk):
        await service.submit_batch(flat[begin : begin + chunk])
    return time.perf_counter() - start, len(flat)


def bench_sustained(
    programs: List[List[Dict[str, Any]]],
    n_shards: int,
    n_clients: int,
    repeats: int,
    data_dir: Optional[str] = None,
) -> Tuple[float, np.ndarray]:
    """(best kops, latencies from the best repeat) for the client mode."""
    best_kops = 0.0
    best_latencies = np.asarray([0.0])

    async def one_run() -> Tuple[float, np.ndarray]:
        service = AllocationService(_service_config(n_shards, data_dir))
        await service.start()
        wall, latencies, ops = await _drive_sustained(service, programs, n_clients)
        await service.stop()
        return ops / wall / 1000.0, latencies

    for rep in range(repeats):
        if data_dir is not None:
            # Fresh state per repeat: recovery is not what is measured.
            for name in os.listdir(data_dir):
                os.unlink(os.path.join(data_dir, name))
        kops, latencies = asyncio.run(one_run())
        if kops > best_kops:
            best_kops, best_latencies = kops, latencies
    return best_kops, best_latencies


def bench_batched(
    programs: List[List[Dict[str, Any]]],
    n_shards: int,
    chunk: int,
    repeats: int,
) -> float:
    async def one_run() -> float:
        service = AllocationService(_service_config(n_shards))
        await service.start()
        wall, ops = await _drive_batched(service, programs, chunk)
        await service.stop()
        return ops / wall / 1000.0

    return max(asyncio.run(one_run()) for _ in range(repeats))


async def _drive_raw_socket(socket_path: str, flat: List[Dict[str, Any]]) -> float:
    """Sequential NDJSON round trips on one bare connection."""
    reader, writer = await asyncio.open_unix_connection(socket_path)
    start = time.perf_counter()
    for op in flat:
        writer.write(json.dumps(op).encode() + b"\n")
        await writer.drain()
        await reader.readline()
    wall = time.perf_counter() - start
    writer.close()
    return wall


async def _drive_sdk(socket_path: str, flat: List[Dict[str, Any]]) -> float:
    """The same round trips through AsyncServiceClient (auto-keyed)."""
    from repro.service import AsyncServiceClient

    client = AsyncServiceClient(socket_path=socket_path, client_id="bench")
    start = time.perf_counter()
    for op in flat:
        await client.call(dict(op))
    wall = time.perf_counter() - start
    await client.close()
    return wall


def bench_wire(
    programs: List[List[Dict[str, Any]]],
    n_shards: int,
    n_wire_ops: int,
    repeats: int,
) -> Tuple[float, float]:
    """(raw-socket kops, SDK kops) over a UNIX socket, best of repeats."""
    from repro.service import AllocationServer

    flat = [op for program in programs for op in program][:n_wire_ops]

    async def one_run() -> Tuple[float, float]:
        with tempfile.TemporaryDirectory(prefix="bench-service-wire-") as workdir:
            socket_path = os.path.join(workdir, "bench.sock")
            service = AllocationService(_service_config(n_shards))
            await service.start()
            server = AllocationServer(service, socket_path=socket_path)
            await server.start()
            try:
                raw_wall = await _drive_raw_socket(socket_path, flat)
                sdk_wall = await _drive_sdk(socket_path, flat)
            finally:
                await server.stop()
                await service.stop()
        return len(flat) / raw_wall / 1000.0, len(flat) / sdk_wall / 1000.0

    best_raw = best_sdk = 0.0
    for _ in range(repeats):
        raw_kops, sdk_kops = asyncio.run(one_run())
        best_raw = max(best_raw, raw_kops)
        best_sdk = max(best_sdk, sdk_kops)
    return best_raw, best_sdk


def run_suite(quick: bool = False, repeats: Optional[int] = None) -> Dict[str, object]:
    """Execute the stress scenarios; return the BENCH_service.json document."""
    repeats = repeats if repeats is not None else (1 if quick else 3)
    n_tasks = 2_000 if quick else 20_000
    n_categories = 400 if quick else 4_000
    n_shards = 8
    n_clients = 32

    programs = make_task_stream(n_tasks, n_categories, seed=0)
    n_ops = sum(len(p) for p in programs)

    metrics: Dict[str, float] = {}

    kops, latencies = bench_sustained(programs, n_shards, n_clients, repeats)
    metrics["service_throughput_kops_x"] = kops
    metrics["service_alloc_p50_s"] = float(np.percentile(latencies, 50))
    metrics["service_alloc_p95_s"] = float(np.percentile(latencies, 95))
    metrics["service_alloc_p99_s"] = float(np.percentile(latencies, 99))

    metrics["service_batch_throughput_kops_x"] = bench_batched(
        programs, n_shards, chunk=64, repeats=repeats
    )

    n_wire_ops = 2_000 if quick else 6_000
    raw_kops, sdk_kops = bench_wire(programs, n_shards, n_wire_ops, repeats)
    metrics["service_raw_socket_kops_x"] = raw_kops
    metrics["service_sdk_kops_x"] = sdk_kops

    if not quick:
        with tempfile.TemporaryDirectory(prefix="bench-service-") as data_dir:
            wal_kops, _ = bench_sustained(
                programs, n_shards, n_clients, repeats, data_dir=data_dir
            )
        metrics["service_wal_throughput_kops_x"] = wal_kops

    return {
        "schema": SCHEMA_VERSION,
        "quick": quick,
        "repeats": repeats,
        "n_tasks": n_tasks,
        "n_categories": n_categories,
        "n_ops": n_ops,
        "n_shards": n_shards,
        "n_clients": n_clients,
        "dispatch_failure_rate": DISPATCH_FAILURE_RATE,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "metrics": metrics,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=os.path.join(_REPO_ROOT, "BENCH_service.json"),
        help="output JSON path (default: BENCH_service.json at the repo root)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="seconds-scale smoke pass (CI): smaller population, one repeat",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats (best-of)"
    )
    args = parser.parse_args(argv)

    doc = run_suite(quick=args.quick, repeats=args.repeats)
    from repro.checkpoint import write_text_atomic

    write_text_atomic(args.out, json.dumps(doc, indent=2, sort_keys=True) + "\n")

    width = max(len(k) for k in doc["metrics"])
    for key in sorted(doc["metrics"]):
        value = doc["metrics"][key]
        unit = "kops/s" if key.endswith("_x") else "s"
        print(f"{key:<{width}}  {value:12.6f} {unit}")
    print(f"\nwrote {args.out}")

    throughput = doc["metrics"]["service_throughput_kops_x"]
    print(f"sustained allocation service throughput: {throughput * 1000:,.0f} ops/s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
