"""Bench E-X1: the >10k-task scaling hypothesis (Section VII)."""

from repro.experiments import scaling


def test_scaling_convergence(benchmark, bench_config):
    result = benchmark.pedantic(
        scaling.run,
        kwargs={
            "workflow": "normal",
            "algorithm": "exhaustive_bucketing",
            "task_counts": (250, 1000, 4000),
            "config": bench_config,
        },
        rounds=1,
        iterations=1,
    )
    # The hypothesis: the overall AWE closes in on the steady state as
    # transients amortize over more tasks.
    assert result.overall_gap(-1) <= result.overall_gap(0) + 0.05
    assert result.overall_awe[-1] >= result.overall_awe[0] - 0.05
    print()
    print(scaling.render(result))
