"""Bench E-F5: regenerate Figure 5 (the AWE grid).

The full paper grid is 3 resources x 7 workflows x 7 algorithms over
1000-task workflows; the benchmark runs a reduced-scale version of the
complete grid (every workflow, every algorithm) once and checks the
headline shape claims, printing the reproduced tables.
"""

import pytest

from repro.experiments import figure5


@pytest.fixture(scope="module")
def result(bench_config):
    return figure5.run(config=bench_config)


def test_figure5_full_grid(benchmark, bench_config, result):
    # Benchmark one representative cell rather than re-running the whole
    # 49-simulation grid per timing round.
    from repro.experiments.runner import run_cell

    benchmark.pedantic(
        run_cell,
        args=("normal", "exhaustive_bucketing", bench_config),
        rounds=1,
        iterations=1,
    )

    grid = result.grid
    # Shape claims (see EXPERIMENTS.md for the full paper-vs-measured log):
    # 1. Whole Machine is the floor on memory for every workflow.
    for workflow in grid.workflows:
        floor = grid.awe(workflow, "whole_machine", "memory")
        for algorithm in grid.algorithms:
            assert grid.awe(workflow, algorithm, "memory") >= floor - 1e-9
    # 2. A bucketing algorithm beats Max Seen on Normal memory.
    assert max(
        grid.awe("normal", "greedy_bucketing", "memory"),
        grid.awe("normal", "exhaustive_bucketing", "memory"),
    ) > grid.awe("normal", "max_seen", "memory")
    # 3. Exponential is the hardest workflow for the bucketing algorithms.
    eb = {wf: grid.awe(wf, "exhaustive_bucketing", "memory") for wf in grid.workflows}
    synthetic = ("normal", "uniform", "exponential", "bimodal", "trimodal")
    assert min((eb[wf] for wf in synthetic)) == eb["exponential"]
    # 4. TopEFT disk: bucketing near-perfect, Max Seen capped by rounding.
    assert grid.awe("topeft", "exhaustive_bucketing", "disk") > 0.85
    assert grid.awe("topeft", "max_seen", "disk") < 0.65

    print()
    print(figure5.render(result))
