"""Bench E-F3: regenerate Figure 3b/3c (the running example's buckets)."""

from repro.experiments import figure3


def test_figure3_running_example(benchmark):
    """Time bucketing the 2000-record N(8 GB, 2 GB) example."""
    result = benchmark(figure3.run, 2000, 0)
    # Both algorithms must discover structure cheaper than one bucket.
    for algorithm in ("greedy_bucketing", "exhaustive_bucketing"):
        assert result.expected_waste(algorithm) <= result.single_bucket_cost + 1e-6
        assert 1 <= result.n_buckets(algorithm) <= 10
    print()
    print(figure3.render(result))
