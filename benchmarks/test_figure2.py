"""Bench E-F2: regenerate Figure 2 (production trace consumption)."""

from repro.experiments import figure2


def test_figure2_trace_generation(benchmark):
    """Time the trace generation + per-category statistics."""
    result = benchmark(figure2.run, 0)
    # The paper's headline quantities must hold on every regeneration.
    mpnn = result.stats_of("colmena_xtb", "evaluate_mpnn")
    lo, _, _, hi = mpnn.stats["memory_mb"]
    assert 1000 <= lo and hi <= 1200
    energy = result.stats_of("colmena_xtb", "compute_atomization_energy")
    c_lo, _, _, c_hi = energy.stats["cores"]
    assert c_lo >= 0.9 and c_hi <= 3.6
    disk = result.stats_of("topeft", "processing").stats["disk_mb"]
    assert disk[0] == disk[3] == 306.0
    print()
    print(figure2.render(result))
