"""Local process executor: the allocator on *real* tasks.

The simulator (`repro.sim`) reproduces the paper's evaluation; this
package is the piece a downstream user adopts to run actual Python
functions under adaptive allocations on one machine, with the same
semantics the paper assumes (Section II-B):

1. every attempt runs in its own forked process with its **memory
   allocation enforced** via ``RLIMIT_AS`` — over-consumption raises
   ``MemoryError`` in the child, which reports its peak RSS and exits
   with the exhaustion marker;
2. the **wall-time allocation** (when managed) is enforced by the
   parent, which terminates the child at the limit;
3. killed attempts are retried through the
   :class:`~repro.core.allocator.TaskOrientedAllocator` — bucket-ladder
   climb or doubling — exactly as in the simulator;
4. successful attempts report measured peak RSS and runtime, which feed
   the allocator's records and the efficiency accounting.

Cores are *advisory* on a single machine (the OS scheduler shares them;
there is no per-process hard cap short of cgroups), so the executor
tracks core allocations for capacity packing but does not enforce them —
the same behaviour Work Queue exhibits without cgroup isolation.

Linux-only (relies on ``fork`` and ``RLIMIT_AS``).
"""

from repro.executor.local import (
    ExecutionReport,
    LocalAttempt,
    LocalExecutor,
    LocalExecutorConfig,
    LocalTask,
    reports_awe,
)

__all__ = [
    "LocalExecutor",
    "LocalExecutorConfig",
    "LocalTask",
    "LocalAttempt",
    "ExecutionReport",
    "reports_awe",
]
