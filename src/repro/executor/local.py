"""The local executor: adaptive allocations on real processes.

See the package docstring for the semantics.  The executor runs a batch
of :class:`LocalTask` items with bounded concurrency; each worker
thread drives one task's attempt loop — allocate, fork, enforce,
observe, retry — against a shared
:class:`~repro.core.allocator.TaskOrientedAllocator`.  A
:class:`_CapacityGate` packs concurrent attempts into the machine's
capacity the way the simulator's workers do, so over-allocation has the
same real cost: fewer tasks fit at once.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.allocator import AllocatorConfig, TaskOrientedAllocator
from repro.core.resources import (
    CORES,
    MEMORY,
    TIME,
    Resource,
    ResourceVector,
)
from repro.executor import child as _child

__all__ = [
    "LocalTask",
    "LocalAttempt",
    "ExecutionReport",
    "LocalExecutorConfig",
    "LocalExecutor",
    "reports_awe",
]


@dataclass(frozen=True)
class LocalTask:
    """One real unit of work: a callable plus its category."""

    category: str
    fn: Callable[..., Any]
    args: Tuple = ()
    kwargs: Mapping = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not callable(self.fn):
            raise TypeError("LocalTask.fn must be callable")
        if not self.category:
            raise ValueError("category must be non-empty")


@dataclass(frozen=True)
class LocalAttempt:
    """One real placement: allocation, wall time, outcome, observed peak."""

    index: int
    allocation: ResourceVector
    runtime_s: float
    outcome: str                 # "success" | "memory_exhausted" | "time_exhausted" | "error"
    peak_memory_mb: float
    #: Measured cores (CPU seconds / wall seconds); 0.0 when unknown.
    cores_used: float = 0.0

    @property
    def succeeded(self) -> bool:
        return self.outcome == "success"


@dataclass
class ExecutionReport:
    """Everything the executor learned about one task."""

    task_id: int
    category: str
    attempts: List[LocalAttempt]
    result: Any = None
    error: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        return bool(self.attempts) and self.attempts[-1].succeeded

    @property
    def n_retries(self) -> int:
        return max(0, len(self.attempts) - 1)


@dataclass(frozen=True)
class LocalExecutorConfig:
    """Executor shape.

    Attributes
    ----------
    capacity:
        The machine's resources for packing (defaults to 4 cores / 4 GB
        — deliberately conservative; measure your host and set it).
    max_concurrency:
        Upper bound on simultaneously running attempts, independent of
        capacity packing.
    manage_time:
        Enforce wall-time allocations (adds TIME to the managed
        resources).
    max_attempts:
        Safety bound per task; exceeded -> the task is reported failed
        (a real system must not retry forever on a genuinely impossible
        limit).
    attempt_timeout_s:
        Hard wall-clock ceiling per attempt, independent of the managed
        TIME allocation.  A hung task (deadlock, endless IO wait) is
        killed — whole process group — and reported as an error rather
        than wedging an executor thread forever.  ``None`` disables it.
    """

    capacity: ResourceVector = field(
        default_factory=lambda: ResourceVector.of(cores=4, memory=4_096)
    )
    max_concurrency: int = 4
    manage_time: bool = False
    max_attempts: int = 12
    attempt_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.attempt_timeout_s is not None and self.attempt_timeout_s <= 0:
            raise ValueError("attempt_timeout_s must be positive (or None)")


def _kill_process_tree(process) -> None:
    """SIGKILL an attempt process and everything in its process group.

    The child called ``os.setsid()`` at entry, so its group id equals
    its pid and ``killpg`` reaps any grandchildren it spawned.  If the
    group is already gone (or was never created), fall back to killing
    the process alone.  Always joins, so no zombie is left behind.
    """
    import os as _os
    import signal as _signal

    pid = process.pid
    try:
        pgid = _os.getpgid(pid)
        if pgid != _os.getpgid(0):
            _os.killpg(pgid, _signal.SIGKILL)
        else:  # pragma: no cover - setsid failed; never kill our own group
            process.kill()
    except (ProcessLookupError, PermissionError, OSError):
        try:
            process.kill()
        except Exception:
            pass
    process.join(timeout=5.0)
    if process.is_alive():  # pragma: no cover - unkillable (D-state) child
        process.terminate()
        process.join(timeout=1.0)


class _CapacityGate:
    """Blocks attempt starts until their allocation fits the capacity."""

    def __init__(self, capacity: ResourceVector) -> None:
        self._capacity = capacity
        self._used: Dict[Resource, float] = {}
        self._condition = threading.Condition()

    def _fits(self, allocation: ResourceVector) -> bool:
        for res, requested in allocation.raw.items():
            if res is TIME:
                continue
            cap = self._capacity[res]
            if cap <= 0:
                continue  # untracked dimension
            if self._used.get(res, 0.0) + requested > cap * (1 + 1e-9):
                return False
        return True

    def acquire(self, allocation: ResourceVector) -> None:
        with self._condition:
            while not self._fits(allocation):
                self._condition.wait()
            for res, requested in allocation.raw.items():
                if res is not TIME:
                    self._used[res] = self._used.get(res, 0.0) + requested

    def release(self, allocation: ResourceVector) -> None:
        with self._condition:
            for res, requested in allocation.raw.items():
                if res is not TIME:
                    self._used[res] = max(0.0, self._used.get(res, 0.0) - requested)
            self._condition.notify_all()


class LocalExecutor:
    """Run real tasks under adaptive allocations (see package doc).

    Examples
    --------
    >>> from repro.executor import LocalExecutor, LocalTask   # doctest: +SKIP
    >>> ex = LocalExecutor()                                   # doctest: +SKIP
    >>> reports = ex.run([LocalTask("square", lambda x: x * x, (3,))])  # doctest: +SKIP
    >>> reports[0].result                                      # doctest: +SKIP
    9
    """

    def __init__(
        self,
        config: Optional[LocalExecutorConfig] = None,
        allocator: Optional[TaskOrientedAllocator] = None,
    ) -> None:
        self._config = config if config is not None else LocalExecutorConfig()
        if allocator is None:
            resources = (CORES, MEMORY) + ((TIME,) if self._config.manage_time else ())
            allocator = TaskOrientedAllocator(
                AllocatorConfig(
                    algorithm="exhaustive_bucketing",
                    resources=resources,
                    machine_capacity=self._config.capacity,
                )
            )
        self._allocator = allocator
        self._gate = _CapacityGate(self._config.capacity)
        self._mp = multiprocessing.get_context("fork")
        self._lock = threading.Lock()
        self._task_counter = 0
        #: Attempt processes currently alive, for orphan reaping: if a
        #: batch unwinds abnormally (exception, interpreter shutdown),
        #: ``run()`` force-kills whatever is still registered here.
        self._active: Dict[int, Any] = {}

    @property
    def allocator(self) -> TaskOrientedAllocator:
        return self._allocator

    # -- public API ----------------------------------------------------------------

    def run(self, tasks: Sequence[LocalTask]) -> List[ExecutionReport]:
        """Execute a batch; returns reports in input order.

        On any exit — normal or exceptional — every attempt process
        that is still alive is killed (by process group), so no child
        outlives the batch that spawned it.
        """
        if not tasks:
            return []
        try:
            with ThreadPoolExecutor(max_workers=self._config.max_concurrency) as pool:
                futures = [pool.submit(self._run_task, task) for task in tasks]
                return [future.result() for future in futures]
        finally:
            self._reap_orphans()

    def _reap_orphans(self) -> None:
        with self._lock:
            leftovers = list(self._active.values())
            self._active.clear()
        for process in leftovers:
            if process.is_alive():
                _kill_process_tree(process)

    def map(self, category: str, fn: Callable, items: Sequence) -> List[ExecutionReport]:
        """Convenience: one task per item, ``fn(item)`` each."""
        return self.run([LocalTask(category, fn, (item,)) for item in items])

    # -- per-task attempt loop ---------------------------------------------------------

    def _next_task_id(self) -> int:
        with self._lock:
            task_id = self._task_counter
            self._task_counter += 1
            return task_id

    def _run_task(self, task: LocalTask) -> ExecutionReport:
        task_id = self._next_task_id()
        report = ExecutionReport(task_id=task_id, category=task.category, attempts=[])
        with self._lock:
            allocation = self._allocator.allocate(task.category, task_id)
        observed_floor = ResourceVector()

        while len(report.attempts) < self._config.max_attempts:
            self._gate.acquire(allocation)
            try:
                attempt = self._execute_attempt(task, allocation, len(report.attempts))
            finally:
                self._gate.release(allocation)
            report.attempts.append(attempt)

            if attempt.outcome == "success":
                report.result = getattr(attempt, "_result", None)
                observed = ResourceVector.of(
                    cores=max(attempt.cores_used, 0.01),
                    memory=max(attempt.peak_memory_mb, 1.0),
                    time=attempt.runtime_s if self._config.manage_time else 0.0,
                )
                with self._lock:
                    self._allocator.observe(task.category, observed, task_id=task_id)
                return report
            if attempt.outcome == "error":
                report.error = getattr(attempt, "_error", "task raised")
                return report

            # Exhaustion: grow the failed dimension and retry.
            if attempt.outcome == "memory_exhausted":
                exhausted: Tuple[Resource, ...] = (MEMORY,)
                observed_now = ResourceVector.of(
                    memory=max(attempt.peak_memory_mb, allocation[MEMORY])
                )
            else:  # time_exhausted
                exhausted = (TIME,)
                observed_now = ResourceVector({TIME: attempt.runtime_s})
            observed_floor = observed_floor.componentwise_max(observed_now)
            with self._lock:
                allocation = self._allocator.allocate_retry(
                    task.category,
                    task_id,
                    previous=allocation,
                    observed=observed_floor,
                    exhausted=exhausted,
                )

        report.error = (
            f"gave up after {self._config.max_attempts} attempts "
            f"(last allocation {allocation!r})"
        )
        return report

    def _execute_attempt(
        self, task: LocalTask, allocation: ResourceVector, index: int
    ) -> LocalAttempt:
        parent_conn, child_conn = self._mp.Pipe(duplex=False)
        process = self._mp.Process(
            target=_child.run_attempt_in_child,
            args=(
                child_conn,
                task.fn,
                tuple(task.args),
                dict(task.kwargs),
                allocation[MEMORY],
            ),
            daemon=True,
        )
        started = time.perf_counter()
        process.start()
        child_conn.close()
        with self._lock:
            self._active[process.pid] = process

        time_limit = allocation[TIME] if self._config.manage_time else None
        hard_limit = self._config.attempt_timeout_s
        deadline = min(
            (lim for lim in (time_limit, hard_limit) if lim is not None),
            default=None,
        )
        try:
            process.join(timeout=deadline)
            if process.is_alive():
                # The child (and anything it spawned) is killed by
                # process group; a survivor here is a hung or runaway
                # task, so SIGKILL, not a polite terminate.
                _kill_process_tree(process)
                runtime = time.perf_counter() - started
                parent_conn.close()
                if time_limit is not None and deadline == time_limit:
                    # Wall-time exhaustion: the parent enforces the
                    # managed TIME allocation; the task may retry with a
                    # larger one.
                    return LocalAttempt(
                        index=index,
                        allocation=allocation,
                        runtime_s=runtime,
                        outcome="time_exhausted",
                        peak_memory_mb=0.0,
                    )
                attempt = LocalAttempt(
                    index=index,
                    allocation=allocation,
                    runtime_s=runtime,
                    outcome="error",
                    peak_memory_mb=0.0,
                )
                object.__setattr__(
                    attempt,
                    "_error",
                    f"attempt exceeded the {hard_limit}s wall-clock timeout",
                )
                return attempt
        finally:
            with self._lock:
                self._active.pop(process.pid, None)
        runtime = time.perf_counter() - started

        status, peak_mb, cpu_s, payload = "error", 0.0, 0.0, "child died without reporting"
        try:
            if parent_conn.poll(5.0):
                status, peak_mb, cpu_s, payload = parent_conn.recv()
        except (EOFError, OSError):
            pass
        finally:
            parent_conn.close()
        if status == "error" and process.exitcode not in (0, None):
            # A hard kill (e.g. the kernel OOM path) looks like memory
            # exhaustion when we had a memory limit in force.
            if allocation[MEMORY] > 0 and process.exitcode < 0:
                status = "memory_exhausted"

        cores_used = max(float(cpu_s) / max(runtime, 1e-6), 0.01)
        if status == "ok":
            attempt = LocalAttempt(
                index=index,
                allocation=allocation,
                runtime_s=runtime,
                outcome="success",
                peak_memory_mb=float(peak_mb),
                cores_used=cores_used,
            )
            object.__setattr__(attempt, "_result", payload)
            return attempt
        if status == "memory_exhausted":
            return LocalAttempt(
                index=index,
                allocation=allocation,
                runtime_s=runtime,
                outcome="memory_exhausted",
                peak_memory_mb=float(peak_mb),
                cores_used=cores_used,
            )
        attempt = LocalAttempt(
            index=index,
            allocation=allocation,
            runtime_s=runtime,
            outcome="error",
            peak_memory_mb=float(peak_mb),
            cores_used=cores_used,
        )
        object.__setattr__(attempt, "_error", payload)
        return attempt


def reports_awe(reports: Sequence[ExecutionReport], resource: Resource) -> float:
    """AWE over completed reports, Section II-C applied to real runs.

    Consumption uses the measured peak (memory) or the final runtime
    (time); allocation sums every attempt's allocation x runtime.
    Reports that never succeeded are skipped (their waste has no
    consumption to normalize against).
    """
    consumed = 0.0
    allocated = 0.0
    for report in reports:
        if not report.succeeded:
            continue
        final = report.attempts[-1]
        if resource is MEMORY:
            peak = final.peak_memory_mb
        elif resource is TIME:
            peak = final.runtime_s
        elif resource is CORES:
            peak = final.cores_used
        else:
            peak = final.allocation[resource]
        consumed += peak * final.runtime_s
        for attempt in report.attempts:
            allocated += attempt.allocation[resource] * attempt.runtime_s
    if allocated <= 0:
        return 1.0 if consumed <= 0 else 0.0
    return consumed / allocated
