"""Child-process harness: run one attempt under resource limits.

Executed inside the forked child.  Applies the memory limit, runs the
user callable, measures peak RSS, and reports the outcome over a pipe.
Kept in its own module (no sim/experiment imports) so the child's
footprint stays small.
"""

from __future__ import annotations

import os
import resource
import traceback
from typing import Any, Callable, Tuple

__all__ = ["run_attempt_in_child", "MB"]

MB = 1024 * 1024

#: Pipe message statuses.
STATUS_OK = "ok"
STATUS_MEMORY = "memory_exhausted"
STATUS_ERROR = "error"


def _usage() -> Tuple[float, float]:
    """(peak RSS in MB, CPU seconds) of this process.

    ``ru_maxrss`` is kilobytes on Linux (bytes on macOS; this executor
    is Linux-only, see package docstring).  CPU seconds combine user and
    system time; the parent divides by wall time to estimate cores used.
    """
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return usage.ru_maxrss / 1024.0, usage.ru_utime + usage.ru_stime


def run_attempt_in_child(
    connection,
    fn: Callable[..., Any],
    args: Tuple,
    kwargs: dict,
    memory_limit_mb: float,
) -> None:
    """Entry point of the forked attempt process.

    Applies ``RLIMIT_AS`` (address space) at ``memory_limit_mb``, runs
    ``fn(*args, **kwargs)``, and sends exactly one message:

    ``(status, peak_rss_mb, cpu_seconds, payload)`` where payload is the
    return value (``ok``), ``None`` (``memory_exhausted``) or a
    traceback string (``error``).
    """
    try:
        # Lead a fresh session/process group so the parent can kill the
        # whole tree (``os.killpg``) — a task that spawned its own
        # subprocesses must not leave orphans when its attempt is
        # terminated.  Refused only when already a group leader.
        try:
            os.setsid()
        except OSError:
            pass
        if memory_limit_mb > 0:
            limit_bytes = int(memory_limit_mb * MB)
            # Soft and hard both set: a malloc beyond this raises
            # MemoryError inside the interpreter rather than letting the
            # kernel OOM-kill silently.
            resource.setrlimit(resource.RLIMIT_AS, (limit_bytes, limit_bytes))
        try:
            result = fn(*args, **kwargs)
        except MemoryError:
            # The enforcement path of assumption 4 (Section II-B): the
            # task over-consumed and is terminated.  Lift the limit so
            # reporting itself cannot die of it.
            try:
                resource.setrlimit(
                    resource.RLIMIT_AS, (resource.RLIM_INFINITY, resource.RLIM_INFINITY)
                )
            except (ValueError, OSError):
                pass
            peak, cpu = _usage()
            connection.send((STATUS_MEMORY, peak, cpu, None))
            return
        except BaseException:
            peak, cpu = _usage()
            connection.send((STATUS_ERROR, peak, cpu, traceback.format_exc()))
            return
        peak, cpu = _usage()
        try:
            connection.send((STATUS_OK, peak, cpu, result))
        except Exception:
            # Unpicklable result: report success without the payload.
            connection.send((STATUS_ERROR, peak, cpu, "result could not be pickled"))
    finally:
        connection.close()
