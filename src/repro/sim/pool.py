"""Opportunistic worker pool with join/leave churn.

The paper's workers are deployed opportunistically — "workers joining
and leaving the worker pool over time" (Section II-C) as the HTCondor
cluster backfills and reclaims.  The pool models that as a stochastic
process: an initial cohort of workers, optional Poisson arrivals, and
optional exponential lifetimes bounded to keep the population between a
floor and a ceiling (the paper's runs saw 20-50 workers).

Churn defaults to *off* for the paper-reproduction experiments: AWE is
deliberately worker-count independent, and a churn-free pool makes the
grid deterministic.  Examples and robustness tests switch it on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.resources import PAPER_WORKER_CAPACITY, ResourceVector
from repro.sim.engine import SimulationEngine
from repro.sim.worker import Worker

__all__ = ["ChurnConfig", "PoolConfig", "WorkerPool"]


@dataclass(frozen=True)
class ChurnConfig:
    """Stochastic join/leave behaviour of opportunistic workers.

    Attributes
    ----------
    mean_lifetime:
        Mean seconds a worker stays before being reclaimed (exponential);
        ``None`` disables departures.
    mean_interarrival:
        Mean seconds between replacement worker arrivals (exponential);
        ``None`` disables arrivals.
    min_workers, max_workers:
        Population bounds; departures that would drop the pool below the
        floor are suppressed, arrivals beyond the ceiling are dropped.
    """

    mean_lifetime: Optional[float] = None
    mean_interarrival: Optional[float] = None
    min_workers: int = 1
    max_workers: int = 1_000_000

    def __post_init__(self) -> None:
        if self.mean_lifetime is not None and self.mean_lifetime <= 0:
            raise ValueError("mean_lifetime must be positive")
        if self.mean_interarrival is not None and self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        if self.min_workers < 0 or self.max_workers < self.min_workers:
            raise ValueError("need 0 <= min_workers <= max_workers")

    @property
    def enabled(self) -> bool:
        return self.mean_lifetime is not None or self.mean_interarrival is not None


@dataclass(frozen=True)
class PoolConfig:
    """Initial shape of the worker pool.

    The defaults mirror the paper's testbed: 16-core / 64 GB memory /
    64 GB disk workers (Section V-A).
    """

    n_workers: int = 20
    capacity: ResourceVector = PAPER_WORKER_CAPACITY
    churn: ChurnConfig = field(default_factory=ChurnConfig)
    #: Seconds over which the initial cohort joins.  Opportunistic pools
    #: do not materialize instantly — pilot jobs are granted by the batch
    #: system over minutes — so with ``ramp_up_seconds > 0`` the first
    #: worker joins at t=0 and the rest at uniform times in the window.
    ramp_up_seconds: float = 0.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.ramp_up_seconds < 0:
            raise ValueError(
                f"ramp_up_seconds must be >= 0, got {self.ramp_up_seconds}"
            )


class WorkerPool:
    """The live set of workers, wired into the simulation engine.

    The manager registers two callbacks:

    * ``on_worker_joined(worker)`` — capacity became available;
    * ``on_worker_leaving(worker, evicted)`` — the worker vanished with
      ``evicted`` = {task_id: allocation} still on it.
    """

    def __init__(self, engine: SimulationEngine, config: Optional[PoolConfig] = None) -> None:
        self._engine = engine
        self._config = config if config is not None else PoolConfig()
        self._rng = np.random.default_rng(self._config.seed)
        self._workers: Dict[int, Worker] = {}
        self._next_worker_id = 0
        self._total_joined = 0
        self._total_left = 0
        self._stopped = False
        self.on_worker_joined: Optional[Callable[[Worker], None]] = None
        self.on_worker_leaving: Optional[
            Callable[[Worker, Dict[int, ResourceVector]], None]
        ] = None
        #: Fired when a worker's capacity shrinks in place with
        #: ``evicted`` = {task_id: allocation} for tasks that no longer fit.
        self.on_worker_degraded: Optional[
            Callable[[Worker, Dict[int, ResourceVector]], None]
        ] = None

        ramp = self._config.ramp_up_seconds
        if ramp <= 0:
            for _ in range(self._config.n_workers):
                self._spawn_worker(initial=True)
        else:
            # First worker at t=0 so the run can always start; the rest
            # arrive at uniform offsets within the ramp-up window.
            self._spawn_worker(initial=True)
            offsets = sorted(
                float(self._rng.uniform(0.0, ramp))
                for _ in range(self._config.n_workers - 1)
            )
            for offset in offsets:
                engine.schedule_at(offset, self._ramp_arrival)
        if self._config.churn.mean_interarrival is not None:
            self._schedule_arrival()

    # -- queries ------------------------------------------------------------------

    @property
    def config(self) -> PoolConfig:
        return self._config

    def rng_state(self) -> dict:
        """JSON-safe snapshot of the churn/lifetime RNG (checkpointing)."""
        from repro.checkpoint import generator_state

        return generator_state(self._rng)

    def alive_workers(self) -> Tuple[Worker, ...]:
        return tuple(self._workers.values())

    @property
    def n_alive(self) -> int:
        return len(self._workers)

    @property
    def total_joined(self) -> int:
        return self._total_joined

    @property
    def total_left(self) -> int:
        return self._total_left

    def worker(self, worker_id: int) -> Worker:
        return self._workers[worker_id]

    def has_headroom(self) -> bool:
        """True if any alive worker has slack in every dimension."""
        return any(worker.has_headroom() for worker in self._workers.values())

    def largest_alive_capacity(self) -> Optional[ResourceVector]:
        """Componentwise max capacity over alive workers (clamp ceiling).

        ``None`` when the pool is momentarily empty (churn trough) — the
        caller should skip clamping rather than clamp to zero.
        """
        capacity: Optional[ResourceVector] = None
        for worker in self._workers.values():
            cap = worker.capacity
            capacity = cap if capacity is None else capacity.componentwise_max(cap)
        return capacity

    def find_fit(self, allocation: ResourceVector) -> Optional[Worker]:
        """First alive worker with room for ``allocation`` (first-fit).

        Workers are scanned in join order, which concentrates load on
        long-lived workers — the same bias Work Queue's eager dispatch
        exhibits.
        """
        for worker in self._workers.values():
            if worker.can_fit(allocation):
                return worker
        return None

    # -- churn machinery ---------------------------------------------------------------

    def stop(self) -> None:
        """Stop generating churn events so the event queue can drain.

        Called by the manager once the workflow completes; already
        scheduled arrival/departure events become no-ops.
        """
        self._stopped = True

    def _ramp_arrival(self) -> None:
        if not self._stopped:
            self._spawn_worker()

    def _spawn_worker(self, initial: bool = False) -> Worker:
        worker = Worker(
            worker_id=self._next_worker_id,
            capacity=self._config.capacity,
            joined_at=self._engine.now,
        )
        self._next_worker_id += 1
        self._workers[worker.worker_id] = worker
        self._total_joined += 1
        churn = self._config.churn
        if churn.mean_lifetime is not None and not self._pinned_at_floor():
            lifetime = float(self._rng.exponential(churn.mean_lifetime))
            self._engine.schedule(lifetime, lambda w=worker: self._depart(w))
        if not initial and self.on_worker_joined is not None:
            self.on_worker_joined(worker)
        return worker

    def _pinned_at_floor(self) -> bool:
        """True when no departure can ever legally fire again.

        With arrivals disabled, the population can never grow past the
        initial cohort; once it cannot exceed the churn floor, drawing
        lifetimes would only produce suppressed departures that re-arm
        forever and keep the event queue alive.  (This was a real bug:
        a 1-worker pool with ``min_workers=1`` and no arrivals drew a
        lifetime for its last worker and the engine never drained.)
        """
        churn = self._config.churn
        return (
            churn.mean_interarrival is None
            and self._config.n_workers <= churn.min_workers
        )

    def _depart(self, worker: Worker) -> None:
        if self._stopped or not worker.alive or worker.worker_id not in self._workers:
            return
        if len(self._workers) <= self._config.churn.min_workers:
            # Suppressed departure: the batch system kept the lease.
            # Re-arm so the worker can still leave later — but only if a
            # replacement can ever arrive; otherwise the pool is pinned
            # at the floor and re-arming would livelock the event loop.
            if (
                self._config.churn.mean_lifetime is not None
                and self._config.churn.mean_interarrival is not None
            ):
                delay = float(self._rng.exponential(self._config.churn.mean_lifetime))
                self._engine.schedule(delay, lambda w=worker: self._depart(w))
            return
        del self._workers[worker.worker_id]
        evicted = worker.evict_all(self._engine.now)
        self._total_left += 1
        if self.on_worker_leaving is not None:
            self.on_worker_leaving(worker, evicted)

    # -- fault-injection hooks (repro.sim.faults) ---------------------------------

    def preempt_worker(self, worker_id: int) -> bool:
        """Forcibly remove a worker *now* (preemption fault).

        Unlike churn departures this bypasses the population floor — the
        fault injector owns its own survivor policy.  Fires
        ``on_worker_leaving`` with the evicted tasks; returns ``False``
        if the worker is unknown or already gone.
        """
        worker = self._workers.pop(worker_id, None)
        if worker is None:
            return False
        evicted = worker.evict_all(self._engine.now)
        self._total_left += 1
        if self.on_worker_leaving is not None:
            self.on_worker_leaving(worker, evicted)
        return True

    def degrade_worker(self, worker_id: int, new_capacity: ResourceVector) -> bool:
        """Shrink one worker's capacity in place (degradation fault).

        Tasks that no longer fit are evicted by the worker and handed to
        ``on_worker_degraded``; returns ``False`` for unknown workers.
        """
        worker = self._workers.get(worker_id)
        if worker is None:
            return False
        evicted = worker.degrade(new_capacity)
        if self.on_worker_degraded is not None:
            self.on_worker_degraded(worker, evicted)
        return True

    def _schedule_arrival(self) -> None:
        churn = self._config.churn
        assert churn.mean_interarrival is not None
        delay = float(self._rng.exponential(churn.mean_interarrival))

        def arrive() -> None:
            if self._stopped:
                return
            if len(self._workers) < churn.max_workers:
                self._spawn_worker()
            self._schedule_arrival()

        self._engine.schedule(delay, arrive)

    def __repr__(self) -> str:
        return (
            f"WorkerPool(alive={len(self._workers)}, joined={self._total_joined}, "
            f"left={self._total_left})"
        )
