"""Ready-queue scheduling: match allocated tasks to workers.

The scheduler owns the queue of ready tasks and the dispatch scan.  It
deliberately knows nothing about allocation policy or attempt outcomes:
the manager hands it an ``allocation_of`` callback (ask the allocator at
dispatch time, Figure 3a arrows 1-4), an ``allocation_version``
callback (has the allocator learned anything since this prediction was
made?), and a ``start_attempt`` callback (place the task and schedule
its fate).

Two properties matter for fidelity and speed:

* **Allocation at dispatch time.**  A queued task's predicted
  allocation is refreshed whenever its category's allocator state has
  changed since the prediction was cached, so a task that waited
  through the end of the exploratory phase is dispatched with a current
  prediction, not a stale bootstrap one.  Retry allocations (set
  explicitly by the manager after an exhaustion) are sticky: the
  escalation ladder must not be re-rolled, or progress is lost.
* **Scan cost.**  Dispatch is FIFO with backfilling — the scan walks
  the whole queue so small tasks behind a large head are not starved —
  and memoizes allocations that failed to fit within the scan: queues
  full of identically allocated tasks (the common case) cost one
  placement probe instead of one per task.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Hashable, Optional, Set

from repro.core.resources import ResourceVector
from repro.sim.pool import WorkerPool
from repro.sim.task import SimTask, TaskState
from repro.sim.worker import Worker

__all__ = ["Scheduler"]


class Scheduler:
    """FIFO-with-backfill dispatcher over a worker pool."""

    def __init__(
        self,
        pool: WorkerPool,
        allocation_of: Callable[[SimTask], ResourceVector],
        allocation_version: Callable[[SimTask], Hashable],
        start_attempt: Callable[[SimTask, Worker], None],
        may_dispatch: Optional[Callable[[SimTask], bool]] = None,
    ) -> None:
        self._pool = pool
        self._allocation_of = allocation_of
        self._allocation_version = allocation_version
        self._start_attempt = start_attempt
        #: Policy gate evaluated before placement (e.g. the exploratory
        #: concurrency bound); gated tasks stay queued.
        self._may_dispatch = may_dispatch
        self._ready: Deque[SimTask] = deque()
        #: task_id -> version of the allocator state the cached first-
        #: attempt prediction was computed against.
        self._cached_version: dict = {}
        #: tasks whose current_allocation was set by a retry escalation
        #: (or survives an eviction) and must not be re-predicted.
        self._sticky: Set[int] = set()
        self._dispatching = False
        self._total_dispatches = 0

    # -- queue management -----------------------------------------------------------

    def enqueue(self, task: SimTask) -> None:
        """Add a freshly ready task at the back of the queue."""
        if task.state is not TaskState.READY:
            raise ValueError(f"cannot enqueue task {task.task_id} in state {task.state}")
        self._ready.append(task)

    def enqueue_retry(self, task: SimTask) -> None:
        """Re-admit a killed/evicted task at the front of the queue.

        Its ``current_allocation`` (the escalated retry allocation, or
        the unchanged one after an eviction) is pinned.
        """
        if task.state is not TaskState.READY:
            raise ValueError(f"cannot requeue task {task.task_id} in state {task.state}")
        if task.current_allocation is None:
            raise ValueError(f"retry of task {task.task_id} has no allocation")
        self._sticky.add(task.task_id)
        self._ready.appendleft(task)

    @property
    def n_ready(self) -> int:
        return len(self._ready)

    @property
    def total_dispatches(self) -> int:
        return self._total_dispatches

    # -- dispatch -----------------------------------------------------------------------

    def _probe_allocation(self, task: SimTask) -> ResourceVector:
        """The allocation used to *probe* worker fit — possibly stale.

        Queued tasks keep their last prediction while waiting; computing
        a fresh draw for every queued task on every allocator update
        would dominate the run without changing what gets dispatched.
        The prediction is re-validated at placement time instead
        (:meth:`_fresh_allocation`).
        """
        if task.current_allocation is None:
            task.current_allocation = self._allocation_of(task)
            self._cached_version[task.task_id] = self._allocation_version(task)
        return task.current_allocation

    def _fresh_allocation(self, task: SimTask) -> ResourceVector:
        """Dispatch-time allocation: re-predicted if the state moved."""
        if task.task_id in self._sticky:
            assert task.current_allocation is not None
            return task.current_allocation
        version = self._allocation_version(task)
        if (
            task.current_allocation is None
            or self._cached_version.get(task.task_id) != version
        ):
            task.current_allocation = self._allocation_of(task)
            self._cached_version[task.task_id] = version
        return task.current_allocation

    def try_dispatch(self) -> int:
        """Place every queued task that fits a worker; returns the count."""
        if self._dispatching:
            return 0
        self._dispatching = True
        dispatched = 0
        try:
            made_progress = True
            while made_progress:
                made_progress = False
                if not self._ready or not self._pool.has_headroom():
                    # Saturated pool: nothing can be placed, skip the scan.
                    break
                # Allocations that failed to fit anywhere in this pass:
                # identical requests behind them cannot fit either.
                unfit: Set[ResourceVector] = set()
                still_waiting: Deque[SimTask] = deque()
                while self._ready:
                    task = self._ready.popleft()
                    if self._may_dispatch is not None and not self._may_dispatch(task):
                        still_waiting.append(task)
                        continue
                    allocation = self._probe_allocation(task)
                    if allocation in unfit:
                        still_waiting.append(task)
                        continue
                    worker = self._pool.find_fit(allocation)
                    if worker is None:
                        unfit.add(allocation)
                        still_waiting.append(task)
                        continue
                    # A worker can host the (possibly stale) probe: now
                    # take the dispatch-time prediction and re-validate.
                    fresh = self._fresh_allocation(task)
                    if fresh is not allocation:
                        worker = self._pool.find_fit(fresh)
                        if worker is None:
                            unfit.add(fresh)
                            still_waiting.append(task)
                            continue
                    task.state = TaskState.RUNNING
                    self._sticky.discard(task.task_id)
                    self._cached_version.pop(task.task_id, None)
                    self._total_dispatches += 1
                    dispatched += 1
                    made_progress = True
                    self._start_attempt(task, worker)
                    if not self._pool.has_headroom():
                        # The placement saturated the pool; the rest of
                        # the queue cannot possibly be placed this scan.
                        still_waiting.extend(self._ready)
                        self._ready.clear()
                        made_progress = False
                        break
                self._ready = still_waiting
        finally:
            self._dispatching = False
        return dispatched

    def __repr__(self) -> str:
        return f"Scheduler(ready={len(self._ready)}, dispatched={self._total_dispatches})"
