"""Machine-checked simulation invariants (always on, opt-out).

The accounting identities of Section II-C are only trustworthy if they
hold *under adversity* — retries, evictions, mid-task kills, shrinking
workers.  This module wires a :class:`InvariantChecker` into the
manager, the worker pool and the ledger, and audits the conservation
laws continuously instead of only in tests:

* **Monotone clock** — simulation time never runs backwards (checked
  after every processed event).
* **Capacity conservation** — on every alive worker, the committed sum
  of hosted allocations never exceeds the worker's capacity in any
  resource (checked after every processed event, so a capacity
  degradation that failed to evict enough tasks is caught at the exact
  event that broke it).
* **Ledger identity** — ``allocation = consumption + fragmentation +
  failed`` per resource over the whole run (checked after every event,
  and again at completion).
* **Attempt accounting** — every attempt ends in exactly one of
  {success, kill, eviction}; a successful attempt's allocation covers
  the observed peaks (fragmentation is non-negative); a killed
  attempt's observed consumption never exceeds the limit that was
  enforced; per attempt the identity
  ``consumed + internal_frag + failed_alloc == allocated * runtime``
  holds for the managed resources.
* **Completion shape** — at the end of the run every task has exactly
  one successful attempt, it is the final one, and AWE lands in
  (0, 1] for every managed resource.

A violation raises :class:`InvariantViolation` (an ``AssertionError``
subclass) at the first event that broke the law, with enough context to
debug the run.  The checker is enabled by default through
:class:`~repro.sim.manager.SimulationConfig`; large perf sweeps can opt
out with ``check_invariants=False``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.core.resources import TIME, Resource
from repro.sim.task import Attempt, AttemptOutcome, SimTask, TaskState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.sim.manager import WorkflowManager

__all__ = ["InvariantViolation", "InvariantChecker"]

#: Relative tolerance for float comparisons; identities are exact up to
#: accumulation order.
_RTOL = 1e-6


class InvariantViolation(AssertionError):
    """A simulation conservation law was broken."""


class InvariantChecker:
    """Continuous auditor for one :class:`WorkflowManager` run."""

    def __init__(self, manager: "WorkflowManager") -> None:
        self._manager = manager
        self._last_now = manager.engine.now
        self._events_checked = 0
        self._attempts_checked = 0
        manager.engine.add_listener(self.check_event)

    @property
    def events_checked(self) -> int:
        return self._events_checked

    @property
    def attempts_checked(self) -> int:
        return self._attempts_checked

    # -- per-event checks (engine listener) -----------------------------------------

    def check_event(self) -> None:
        """Audit clock, worker capacities and the ledger after an event."""
        self._events_checked += 1
        engine = self._manager.engine
        now = engine.now
        if now < self._last_now or now < engine.last_event_time:
            raise InvariantViolation(
                f"clock ran backwards: now={now} after "
                f"last_now={self._last_now}, event_time={engine.last_event_time}"
            )
        self._last_now = now
        for worker in self._manager.pool.alive_workers():
            committed = worker.committed_values()
            for res, cap in worker.capacity.raw.items():
                value = committed[res]
                if value > cap * (1.0 + _RTOL) + 1e-9:
                    raise InvariantViolation(
                        f"worker {worker.worker_id} overcommitted at t={now}: "
                        f"{res.key} committed={value} > capacity={cap} "
                        f"(running={worker.running_task_ids})"
                    )
        if not self._manager.ledger.identity_holds():
            raise InvariantViolation(
                f"ledger identity broken at t={now}: allocation != "
                "consumption + fragmentation + failed (per-resource totals "
                "diverged after an ingest)"
            )
        # Task conservation: nothing ever disappears.  Every revealed
        # (submitted) task is either done, dead-lettered, or still in
        # flight; quarantined-but-unrevealed descendants are excluded
        # because the submission window has not surfaced them yet.
        manager = self._manager
        submitted = manager.submitted_tasks
        accounted = (
            manager.completed_tasks
            + (manager.quarantined_tasks - manager.quarantined_unrevealed)
            + manager.outstanding_tasks
        )
        if submitted != accounted:
            raise InvariantViolation(
                f"task conservation broken at t={now}: submitted={submitted} "
                f"!= completed({manager.completed_tasks}) + quarantined("
                f"{manager.quarantined_tasks} - "
                f"{manager.quarantined_unrevealed} unrevealed) + "
                f"outstanding({manager.outstanding_tasks})"
            )

    # -- per-attempt checks (called by the manager) ----------------------------------

    def check_attempt(self, task: SimTask, attempt: Attempt) -> None:
        """Audit one finished attempt the moment it is recorded."""
        self._attempts_checked += 1
        if attempt.outcome not in (
            AttemptOutcome.SUCCESS,
            AttemptOutcome.EXHAUSTED,
            AttemptOutcome.EVICTED,
        ):  # pragma: no cover - enum is closed, guards future outcomes
            raise InvariantViolation(
                f"task {task.task_id} attempt {attempt.index} has unknown "
                f"outcome {attempt.outcome!r}"
            )
        n_success = sum(
            1 for a in task.attempts if a.outcome is AttemptOutcome.SUCCESS
        )
        if n_success > 1 or (
            n_success == 1 and task.attempts[-1].outcome is not AttemptOutcome.SUCCESS
        ):
            raise InvariantViolation(
                f"task {task.task_id} succeeded more than once or kept running "
                f"after success (outcomes: {[a.outcome.value for a in task.attempts]})"
            )
        if attempt.runtime < 0:
            raise InvariantViolation(
                f"task {task.task_id} attempt {attempt.index} has negative "
                f"runtime {attempt.runtime}"
            )
        for res in self._resources():
            if res is TIME:
                continue
            allocated_rt = attempt.allocation[res] * attempt.runtime
            if attempt.outcome is AttemptOutcome.SUCCESS:
                # consumed + frag must reconstruct the held allocation.
                consumed = task.spec.consumption[res] * attempt.runtime
                frag = (attempt.allocation[res] - task.spec.consumption[res]) * attempt.runtime
                if frag < -self._tol(allocated_rt):
                    raise InvariantViolation(
                        f"task {task.task_id} succeeded with {res.key} allocation "
                        f"{attempt.allocation[res]} below its true peak "
                        f"{task.spec.consumption[res]} (negative fragmentation)"
                    )
                if abs(consumed + frag - allocated_rt) > self._tol(allocated_rt):
                    raise InvariantViolation(
                        f"task {task.task_id} {res.key} attempt identity broken: "
                        f"consumed({consumed}) + frag({frag}) != "
                        f"allocated*runtime({allocated_rt})"
                    )
            elif attempt.outcome is AttemptOutcome.EXHAUSTED:
                # The whole holding is failed-allocation waste; the
                # monitor can never have observed more than it enforced.
                if res in attempt.exhausted and attempt.observed[res] > attempt.allocation[
                    res
                ] * (1.0 + _RTOL):
                    raise InvariantViolation(
                        f"task {task.task_id} was killed for {res.key} yet "
                        f"observed {attempt.observed[res]} above its limit "
                        f"{attempt.allocation[res]}"
                    )

    # -- end-of-run checks -------------------------------------------------------------

    def check_complete(self) -> None:
        """Audit the finished run: outcomes, ledger identity, AWE range."""
        manager = self._manager
        ledger = manager.ledger
        if not ledger.identity_holds():
            raise InvariantViolation("ledger identity broken at completion")
        n_completed = 0
        n_quarantined = 0
        for task in manager.tasks():
            successes = [
                a for a in task.attempts if a.outcome is AttemptOutcome.SUCCESS
            ]
            if task.state is TaskState.QUARANTINED:
                n_quarantined += 1
                if successes:
                    raise InvariantViolation(
                        f"task {task.task_id} is quarantined yet has a "
                        f"successful attempt (outcomes: "
                        f"{[a.outcome.value for a in task.attempts]})"
                    )
                continue
            n_completed += 1
            if len(successes) != 1 or task.attempts[-1] is not successes[0]:
                raise InvariantViolation(
                    f"task {task.task_id} must end in exactly one success "
                    f"(outcomes: {[a.outcome.value for a in task.attempts]})"
                )
        if n_completed + n_quarantined != len(list(manager.tasks())):
            raise InvariantViolation(  # pragma: no cover - defensive
                "completed + quarantined does not cover the workflow"
            )
        for res in self._resources():
            awe = ledger.awe(res)
            if awe == 0.0 and ledger.total_consumption(res) <= 0.0:
                # Every task of the run was dead-lettered: zero
                # consumption against burned allocation is honest.
                continue
            if not (0.0 < awe <= 1.0 + _RTOL):
                raise InvariantViolation(
                    f"AWE({res.key}) = {awe} outside (0, 1]"
                )

    # -- helpers ------------------------------------------------------------------------

    def _resources(self) -> Tuple[Resource, ...]:
        return self._manager.ledger.resources

    @staticmethod
    def _tol(scale: float) -> float:
        return _RTOL * max(abs(scale), 1.0)

    def __repr__(self) -> str:
        return (
            f"InvariantChecker(events={self._events_checked}, "
            f"attempts={self._attempts_checked})"
        )
