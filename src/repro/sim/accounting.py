"""Waste and efficiency accounting (Section II-C, implemented exactly).

The ledger ingests every finished attempt and folds them into the
paper's two metrics:

* **Resource waste** per task and resource:
  ``t * (a - c)`` internal fragmentation on the successful attempt plus
  ``sum_i a_i * t_i`` over the failed (exhausted) attempts.
* **Absolute Workflow Efficiency (AWE)** per resource:
  total consumption ``sum_i c_i * t_i`` over total allocation
  ``sum_i (a_i * t_i + sum_j a_ij * t_ij)``.

Attempts lost to worker eviction are *not* part of the paper's model —
its metrics are defined to be independent of the worker pool — so their
held allocation is accumulated in a separate ``eviction`` bucket that
never enters AWE.  Per-category breakdowns and a running AWE series
(used by the convergence studies) are kept alongside the totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.core.resources import RESOURCES, TIME, Resource
from repro.sim.task import AttemptOutcome, SimTask

__all__ = ["WasteBreakdown", "TaskUsage", "Ledger"]


@dataclass
class WasteBreakdown:
    """Accumulated waste of one resource, split by cause.

    All figures are resource-seconds (e.g. MB*s for memory).
    """

    internal_fragmentation: float = 0.0
    failed_allocation: float = 0.0
    eviction: float = 0.0

    @property
    def total(self) -> float:
        """The paper's ResourceWaste: fragmentation + failed allocation.

        Eviction holdings are excluded by definition (see module doc).
        """
        return self.internal_fragmentation + self.failed_allocation

    def fraction_failed(self) -> float:
        """Share of the (paper-defined) waste due to failed allocations."""
        if self.total <= 0:
            return 0.0
        return self.failed_allocation / self.total

    def __add__(self, other: "WasteBreakdown") -> "WasteBreakdown":
        return WasteBreakdown(
            internal_fragmentation=self.internal_fragmentation + other.internal_fragmentation,
            failed_allocation=self.failed_allocation + other.failed_allocation,
            eviction=self.eviction + other.eviction,
        )


@dataclass(frozen=True)
class TaskUsage:
    """One completed task's contribution to the metrics."""

    task_id: int
    category: str
    consumption: Mapping[Resource, float]   # c * t per resource
    allocation: Mapping[Resource, float]    # all attempts' a * t per resource
    n_failed_attempts: int
    n_evicted_attempts: int


class Ledger:
    """Accumulates attempts; answers waste and AWE queries."""

    def __init__(self, resources: Tuple[Resource, ...]) -> None:
        if not resources:
            raise ValueError("ledger needs at least one resource to track")
        self._resources = resources
        self._consumption: Dict[Resource, float] = {r: 0.0 for r in resources}
        self._allocation: Dict[Resource, float] = {r: 0.0 for r in resources}
        self._waste: Dict[Resource, WasteBreakdown] = {r: WasteBreakdown() for r in resources}
        self._by_category: Dict[str, Dict[Resource, WasteBreakdown]] = {}
        self._category_consumption: Dict[str, Dict[Resource, float]] = {}
        self._category_allocation: Dict[str, Dict[Resource, float]] = {}
        self._tasks: List[TaskUsage] = []
        self._n_attempts = 0
        self._n_failed = 0
        self._n_evicted = 0
        self._n_quarantined = 0

    # -- ingestion ---------------------------------------------------------------

    def record_task(self, task: SimTask) -> TaskUsage:
        """Fold a *completed* task's attempt history into the totals."""
        if not task.attempts or task.attempts[-1].outcome is not AttemptOutcome.SUCCESS:
            raise ValueError(
                f"task {task.task_id} has no successful final attempt to account"
            )
        final = task.attempts[-1]
        true_peaks = task.spec.consumption
        duration = task.spec.duration

        cat = task.category
        cat_waste = self._by_category.setdefault(
            cat, {r: WasteBreakdown() for r in self._resources}
        )
        cat_cons = self._category_consumption.setdefault(
            cat, {r: 0.0 for r in self._resources}
        )
        cat_alloc = self._category_allocation.setdefault(
            cat, {r: 0.0 for r in self._resources}
        )

        consumption_rt: Dict[Resource, float] = {}
        allocation_rt: Dict[Resource, float] = {}
        n_failed = 0
        n_evicted = 0
        for res in self._resources:
            # Wall time's "peak consumption" is the duration itself.
            peak = duration if res is TIME else true_peaks[res]
            consumed = peak * duration
            consumption_rt[res] = consumed
            self._consumption[res] += consumed
            cat_cons[res] += consumed

            allocated = 0.0
            for attempt in task.attempts:
                held = attempt.allocation[res] * attempt.runtime
                if attempt.outcome is AttemptOutcome.EVICTED:
                    self._waste[res].eviction += held
                    cat_waste[res].eviction += held
                    continue
                allocated += held
                if attempt.outcome is AttemptOutcome.EXHAUSTED:
                    self._waste[res].failed_allocation += held
                    cat_waste[res].failed_allocation += held
            # Internal fragmentation of the successful attempt: t*(a - c).
            frag = (final.allocation[res] - peak) * final.runtime
            # Numerical guard: the success condition guarantees a >= c.
            frag = max(0.0, frag)
            self._waste[res].internal_fragmentation += frag
            cat_waste[res].internal_fragmentation += frag

            allocation_rt[res] = allocated
            self._allocation[res] += allocated
            cat_alloc[res] += allocated

        for attempt in task.attempts:
            self._n_attempts += 1
            if attempt.outcome is AttemptOutcome.EXHAUSTED:
                self._n_failed += 1
                n_failed += 1
            elif attempt.outcome is AttemptOutcome.EVICTED:
                self._n_evicted += 1
                n_evicted += 1

        usage = TaskUsage(
            task_id=task.task_id,
            category=cat,
            consumption=consumption_rt,
            allocation=allocation_rt,
            n_failed_attempts=n_failed,
            n_evicted_attempts=n_evicted,
        )
        self._tasks.append(usage)
        return usage

    def record_quarantined(self, task: SimTask) -> None:
        """Fold a *quarantined* task's burned attempts into the totals.

        A quarantined task never completes, so it contributes no
        consumption — every exhausted attempt it burned is pure
        failed-allocation waste (charged to total allocation so AWE
        honestly reflects the burn), and evicted attempts land in the
        eviction bucket exactly as for completed tasks.  Cascade-
        quarantined descendants arrive with zero attempts and only bump
        the counter.
        """
        if task.attempts and task.attempts[-1].outcome is AttemptOutcome.SUCCESS:
            raise ValueError(
                f"task {task.task_id} succeeded; account it with record_task"
            )
        cat = task.category
        if task.attempts:
            cat_waste = self._by_category.setdefault(
                cat, {r: WasteBreakdown() for r in self._resources}
            )
            cat_alloc = self._category_allocation.setdefault(
                cat, {r: 0.0 for r in self._resources}
            )
            self._category_consumption.setdefault(
                cat, {r: 0.0 for r in self._resources}
            )
            for res in self._resources:
                for attempt in task.attempts:
                    held = attempt.allocation[res] * attempt.runtime
                    if attempt.outcome is AttemptOutcome.EVICTED:
                        self._waste[res].eviction += held
                        cat_waste[res].eviction += held
                        continue
                    self._allocation[res] += held
                    cat_alloc[res] += held
                    self._waste[res].failed_allocation += held
                    cat_waste[res].failed_allocation += held
            for attempt in task.attempts:
                self._n_attempts += 1
                if attempt.outcome is AttemptOutcome.EXHAUSTED:
                    self._n_failed += 1
                elif attempt.outcome is AttemptOutcome.EVICTED:
                    self._n_evicted += 1
        self._n_quarantined += 1

    # -- queries --------------------------------------------------------------------

    @property
    def resources(self) -> Tuple[Resource, ...]:
        return self._resources

    @property
    def n_tasks(self) -> int:
        return len(self._tasks)

    @property
    def n_attempts(self) -> int:
        return self._n_attempts

    @property
    def n_failed_attempts(self) -> int:
        return self._n_failed

    @property
    def n_evicted_attempts(self) -> int:
        return self._n_evicted

    @property
    def n_quarantined(self) -> int:
        """Tasks accounted as dead-lettered (never completed)."""
        return self._n_quarantined

    def awe(self, resource: Resource) -> float:
        """Absolute Workflow Efficiency for one resource, in [0, 1]."""
        allocated = self._allocation[resource]
        if allocated <= 0.0:
            return 1.0 if self._consumption[resource] <= 0.0 else 0.0
        return self._consumption[resource] / allocated

    def awe_all(self) -> Dict[Resource, float]:
        return {r: self.awe(r) for r in self._resources}

    def waste(self, resource: Resource) -> WasteBreakdown:
        return self._waste[resource]

    def total_consumption(self, resource: Resource) -> float:
        return self._consumption[resource]

    def total_allocation(self, resource: Resource) -> float:
        return self._allocation[resource]

    def categories(self) -> Tuple[str, ...]:
        return tuple(self._by_category)

    def awe_of_category(self, category: str, resource: Resource) -> float:
        allocated = self._category_allocation[category][resource]
        consumed = self._category_consumption[category][resource]
        if allocated <= 0.0:
            return 1.0 if consumed <= 0.0 else 0.0
        return consumed / allocated

    def waste_of_category(self, category: str, resource: Resource) -> WasteBreakdown:
        return self._by_category[category][resource]

    def task_usages(self) -> Tuple[TaskUsage, ...]:
        return tuple(self._tasks)

    def awe_series(self, resource: Resource) -> List[float]:
        """Running AWE after each completed task (convergence studies)."""
        series: List[float] = []
        consumed = 0.0
        allocated = 0.0
        for usage in self._tasks:
            consumed += usage.consumption[resource]
            allocated += usage.allocation[resource]
            series.append(consumed / allocated if allocated > 0 else 0.0)
        return series

    # -- checkpointing ----------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-safe snapshot of every accumulator (exact floats).

        Resources are stored by key; :meth:`from_state` resolves them
        back through the registry, so restored ledgers answer every
        query (AWE, waste, per-category, series) bit-identically.
        """
        def by_key(mapping: Mapping[Resource, float]) -> Dict[str, float]:
            return {res.key: value for res, value in mapping.items()}

        def waste_by_key(mapping: Mapping[Resource, WasteBreakdown]) -> Dict[str, list]:
            return {
                res.key: [w.internal_fragmentation, w.failed_allocation, w.eviction]
                for res, w in mapping.items()
            }

        return {
            "resources": [res.key for res in self._resources],
            "consumption": by_key(self._consumption),
            "allocation": by_key(self._allocation),
            "waste": waste_by_key(self._waste),
            "by_category": {
                cat: waste_by_key(per_res) for cat, per_res in self._by_category.items()
            },
            "category_consumption": {
                cat: by_key(m) for cat, m in self._category_consumption.items()
            },
            "category_allocation": {
                cat: by_key(m) for cat, m in self._category_allocation.items()
            },
            "tasks": [
                {
                    "task_id": usage.task_id,
                    "category": usage.category,
                    "consumption": by_key(usage.consumption),
                    "allocation": by_key(usage.allocation),
                    "n_failed_attempts": usage.n_failed_attempts,
                    "n_evicted_attempts": usage.n_evicted_attempts,
                }
                for usage in self._tasks
            ],
            "n_attempts": self._n_attempts,
            "n_failed": self._n_failed,
            "n_evicted": self._n_evicted,
            "n_quarantined": self._n_quarantined,
        }

    @classmethod
    def from_state(cls, state: dict) -> "Ledger":
        """Rebuild a ledger captured by :meth:`state_dict`."""
        def by_res(mapping: Mapping[str, float]) -> Dict[Resource, float]:
            return {RESOURCES.get(key): float(value) for key, value in mapping.items()}

        def waste_by_res(mapping: Mapping[str, list]) -> Dict[Resource, WasteBreakdown]:
            return {
                RESOURCES.get(key): WasteBreakdown(
                    internal_fragmentation=float(frag),
                    failed_allocation=float(failed),
                    eviction=float(evicted),
                )
                for key, (frag, failed, evicted) in mapping.items()
            }

        new = cls(tuple(RESOURCES.get(key) for key in state["resources"]))
        new._consumption = by_res(state["consumption"])
        new._allocation = by_res(state["allocation"])
        new._waste = waste_by_res(state["waste"])
        new._by_category = {
            cat: waste_by_res(per_res) for cat, per_res in state["by_category"].items()
        }
        new._category_consumption = {
            cat: by_res(m) for cat, m in state["category_consumption"].items()
        }
        new._category_allocation = {
            cat: by_res(m) for cat, m in state["category_allocation"].items()
        }
        new._tasks = [
            TaskUsage(
                task_id=int(doc["task_id"]),
                category=doc["category"],
                consumption=by_res(doc["consumption"]),
                allocation=by_res(doc["allocation"]),
                n_failed_attempts=int(doc["n_failed_attempts"]),
                n_evicted_attempts=int(doc["n_evicted_attempts"]),
            )
            for doc in state["tasks"]
        ]
        new._n_attempts = int(state["n_attempts"])
        new._n_failed = int(state["n_failed"])
        new._n_evicted = int(state["n_evicted"])
        new._n_quarantined = int(state.get("n_quarantined", 0))
        return new

    def identity_holds(self) -> bool:
        """Sanity identity: allocation = consumption + waste, per resource.

        ``sum a*t = sum c*t + fragmentation + failed`` — exact up to
        float rounding; tests assert it after every simulation.
        """
        for res in self._resources:
            lhs = self._allocation[res]
            rhs = (
                self._consumption[res]
                + self._waste[res].internal_fragmentation
                + self._waste[res].failed_allocation
            )
            scale = max(abs(lhs), abs(rhs), 1.0)
            if abs(lhs - rhs) > 1e-6 * scale:
                return False
        return True
