"""The workflow manager: glue between workflow, allocator and simulator.

:class:`WorkflowManager` drives one workflow run end to end, mirroring
Figure 1/3a:

1. submit every task (dependency-free tasks are ready immediately;
   others wait for their parents);
2. at dispatch time, ask the :class:`TaskOrientedAllocator` for the
   task's allocation — first attempt through :meth:`allocate`, retries
   through :meth:`allocate_retry`;
3. decide each attempt's fate up front with the consumption profile
   (the simulator knows the hidden truth; the allocator never sees it)
   and schedule the completion or kill event;
4. on success, feed the resource record back to the allocator and the
   ledger; on exhaustion, grow the allocation and requeue; on eviction,
   requeue with the same allocation.

``run()`` returns a :class:`SimulationResult` bundling the ledger and
run-level statistics — the unit every experiment module consumes.
"""

from __future__ import annotations

import dataclasses
import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.allocator import AllocatorConfig, TaskOrientedAllocator
from repro.core.resources import TIME, Resource, ResourceVector
from repro.sim.accounting import Ledger, WasteBreakdown
from repro.sim.engine import SimulationEngine
from repro.sim.faults import FaultConfig, FaultInjector, FaultStats
from repro.sim.invariants import InvariantChecker
from repro.sim.pool import PoolConfig, WorkerPool
from repro.sim.profiles import ConsumptionProfile, LinearRampProfile
from repro.sim.resilience import (
    DeadLetterEntry,
    ResilienceConfig,
    ResilienceEngine,
    ResilienceStats,
)
from repro.sim.scheduler import Scheduler
from repro.sim.task import Attempt, AttemptOutcome, SimTask, TaskState
from repro.sim.trace import SimEvent
from repro.sim.worker import Worker
from repro.workflows.spec import WorkflowSpec

__all__ = ["SimulationConfig", "SimulationResult", "WorkflowManager"]


@dataclass(frozen=True)
class SimulationConfig:
    """Everything configurable about one simulated run."""

    allocator: AllocatorConfig = field(default_factory=AllocatorConfig)
    pool: PoolConfig = field(default_factory=PoolConfig)
    profile: ConsumptionProfile = field(default_factory=LinearRampProfile)
    #: Maximum tasks revealed to the scheduler but not yet completed.
    #: Dynamic applications (Colmena's batched molecule campaigns,
    #: Coffea's chunked submission) keep a bounded number of tasks in
    #: flight rather than dumping the whole run at t=0; ``None`` models
    #: the dump-everything extreme.
    max_outstanding: Optional[int] = None
    #: Allocate every task exactly its true peak consumption (and true
    #: duration, when TIME is managed).  The oracle of Section II-C:
    #: zero waste, AWE = 1 by construction.  Not realizable online — it
    #: exists as the reference ceiling for experiments and tests.
    oracle: bool = False
    #: Hard bound on processed events; a livelocked run raises instead of
    #: spinning (attempts per task are bounded by doubling, so legitimate
    #: runs stay far below ~20 events/task).
    max_events: Optional[int] = None
    #: Fault-injection schedule (see :mod:`repro.sim.faults`); ``None``
    #: runs fault-free.  Faults are seeded independently of the pool's
    #: churn and the allocator, so the same ``faults.seed`` replays the
    #: same adversity bit for bit.
    faults: Optional[FaultConfig] = None
    #: Continuous invariant auditing (see :mod:`repro.sim.invariants`).
    #: On by default — the conservation laws are cheap relative to the
    #: dispatch scan; very large perf sweeps may opt out.
    check_invariants: bool = True
    #: Task-level resilience policy (retry budgets, deadlines, backoff,
    #: quarantine, circuit breaker, watchdog; see
    #: :mod:`repro.sim.resilience`).  ``None`` — and a default-valued
    #: config — reproduce the paper's unbounded retry behaviour exactly.
    resilience: Optional[ResilienceConfig] = None

    def __post_init__(self) -> None:
        if self.max_outstanding is not None and self.max_outstanding < 1:
            raise ValueError(
                f"max_outstanding must be >= 1, got {self.max_outstanding}"
            )

    def effective_max_events(self, n_tasks: int) -> int:
        if self.max_events is not None:
            return self.max_events
        return max(10_000, 200 * n_tasks)


@dataclass
class SimulationResult:
    """Outcome of one (workflow, algorithm) simulated run."""

    workflow_name: str
    algorithm: str
    ledger: Ledger
    makespan: float
    n_tasks: int
    n_attempts: int
    n_failed_attempts: int
    n_evicted_attempts: int
    workers_joined: int
    workers_left: int
    wall_clock_seconds: float
    #: Injected-fault tallies; all zero on a fault-free run.
    fault_stats: FaultStats = field(default_factory=FaultStats)
    #: Tasks moved to the dead-letter ledger instead of completing.
    n_quarantined: int = 0
    #: The dead-letter entries themselves, in quarantine order.
    dead_letters: Tuple[DeadLetterEntry, ...] = ()
    #: Resilience-layer tallies; ``None`` when no policy was configured.
    resilience_stats: Optional[ResilienceStats] = None

    def awe(self, resource: Resource) -> float:
        return self.ledger.awe(resource)

    def waste(self, resource: Resource) -> WasteBreakdown:
        return self.ledger.waste(resource)

    def summary(self) -> Dict[str, object]:
        """Flat dict for tabular reporting."""
        row: Dict[str, object] = {
            "workflow": self.workflow_name,
            "algorithm": self.algorithm,
            "tasks": self.n_tasks,
            "attempts": self.n_attempts,
            "failed_attempts": self.n_failed_attempts,
            "evicted_attempts": self.n_evicted_attempts,
            "quarantined": self.n_quarantined,
            "makespan_s": round(self.makespan, 3),
        }
        for res in self.ledger.resources:
            row[f"awe_{res.key}"] = round(self.ledger.awe(res), 4)
        return row

    # -- checkpointing ----------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-safe snapshot (exact floats) for the grid-result journal.

        ``wall_clock_seconds`` rides along for reporting but is the one
        field that is *not* reproducible across runs; bit-identity
        comparisons must exclude it.
        """
        return {
            "workflow_name": self.workflow_name,
            "algorithm": self.algorithm,
            "ledger": self.ledger.state_dict(),
            "makespan": self.makespan,
            "n_tasks": self.n_tasks,
            "n_attempts": self.n_attempts,
            "n_failed_attempts": self.n_failed_attempts,
            "n_evicted_attempts": self.n_evicted_attempts,
            "workers_joined": self.workers_joined,
            "workers_left": self.workers_left,
            "wall_clock_seconds": self.wall_clock_seconds,
            "fault_stats": dataclasses.asdict(self.fault_stats),
            "n_quarantined": self.n_quarantined,
            "dead_letters": [entry.state_dict() for entry in self.dead_letters],
            "resilience_stats": (
                dataclasses.asdict(self.resilience_stats)
                if self.resilience_stats is not None
                else None
            ),
        }

    @classmethod
    def from_state(cls, state: dict) -> "SimulationResult":
        """Rebuild a result journaled by :meth:`state_dict`.

        The resilience keys are read with defaults so journals written
        before the resilience layer existed still load.
        """
        stats_doc = state.get("resilience_stats")
        return cls(
            workflow_name=state["workflow_name"],
            algorithm=state["algorithm"],
            ledger=Ledger.from_state(state["ledger"]),
            makespan=float(state["makespan"]),
            n_tasks=int(state["n_tasks"]),
            n_attempts=int(state["n_attempts"]),
            n_failed_attempts=int(state["n_failed_attempts"]),
            n_evicted_attempts=int(state["n_evicted_attempts"]),
            workers_joined=int(state["workers_joined"]),
            workers_left=int(state["workers_left"]),
            wall_clock_seconds=float(state["wall_clock_seconds"]),
            fault_stats=FaultStats(**state["fault_stats"]),
            n_quarantined=int(state.get("n_quarantined", 0)),
            dead_letters=tuple(
                DeadLetterEntry.from_state(doc)
                for doc in state.get("dead_letters", ())
            ),
            resilience_stats=(
                ResilienceStats(**stats_doc) if stats_doc is not None else None
            ),
        )


class WorkflowManager:
    """Run one workflow against one allocator configuration."""

    def __init__(self, workflow: WorkflowSpec, config: Optional[SimulationConfig] = None) -> None:
        self._workflow = workflow
        self._config = config if config is not None else SimulationConfig()
        resilience_config = self._config.resilience
        self._resilience: Optional[ResilienceEngine] = (
            ResilienceEngine(resilience_config)
            if resilience_config is not None and resilience_config.enabled
            else None
        )
        if self._resilience is None or not resilience_config.quarantine_enabled:
            # With quarantine off an oversized (poison) task would retry
            # forever, so it is rejected up front; with a budget or
            # deadline configured it is admitted and dead-lettered.
            workflow.validate_fits(self._config.pool.capacity)

        self._engine = SimulationEngine()
        self._pool = WorkerPool(self._engine, self._config.pool)
        # The allocator's notion of "a whole machine" must be the pool's
        # actual worker shape — Whole Machine allocations, the
        # whole-machine exploratory policy and the capacity clamp all
        # depend on it.
        allocator_config = self._config.allocator
        if allocator_config.machine_capacity != self._config.pool.capacity:
            allocator_config = dataclasses.replace(
                allocator_config, machine_capacity=self._config.pool.capacity
            )
        self._allocator = TaskOrientedAllocator(allocator_config)
        if self._resilience is not None:
            # Satellite of the retry policy: retry doublings are clamped
            # to the largest *alive* worker, so a degraded pool never
            # receives an unsatisfiable escalation.
            self._allocator.set_capacity_provider(self._pool.largest_alive_capacity)
        self._ledger = Ledger(self._config.allocator.resources)
        self._manage_time = TIME in self._config.allocator.resources

        self._tasks: Dict[int, SimTask] = {
            spec.task_id: SimTask(spec) for spec in workflow
        }
        #: task_id -> position in the workflow's submission order; used
        #: to tell whether a cascade-quarantined task was ever revealed.
        self._spec_index: Dict[int, int] = {
            spec.task_id: i for i, spec in enumerate(workflow.tasks)
        }
        # Reverse dependency index: parent -> children waiting on it.
        self._children: Dict[int, List[int]] = {}
        for spec in workflow:
            for dep in spec.dependencies:
                self._children.setdefault(dep, []).append(spec.task_id)

        self._scheduler = Scheduler(
            self._pool,
            allocation_of=self._allocation_of,
            allocation_version=self._allocation_version,
            start_attempt=self._start_attempt,
            may_dispatch=self._may_dispatch,
        )
        self._running_per_category: Dict[str, int] = {}
        self._explore_concurrency = (
            self._config.allocator.exploratory.effective_explore_concurrency
        )
        self._pool.on_worker_joined = self._on_worker_joined
        self._pool.on_worker_leaving = self._on_worker_leaving
        self._pool.on_worker_degraded = self._on_worker_degraded

        #: Subscribers to the manager's event stream (trace recorders).
        self._event_listeners: List[Callable[[SimEvent], None]] = []
        self._invariants: Optional[InvariantChecker] = (
            InvariantChecker(self) if self._config.check_invariants else None
        )
        self._faults: Optional[FaultInjector] = None
        if self._config.faults is not None and self._config.faults.enabled:
            self._faults = FaultInjector(
                self._engine,
                self._pool,
                self._config.faults,
                running_tasks=lambda: tuple(self._attempt_worker),
                kill_task=self._fault_kill,
            )

        #: attempt validity tokens: an eviction invalidates the pending
        #: end-of-attempt event of the evicted task.
        self._attempt_token: Dict[int, int] = {t: 0 for t in self._tasks}
        self._attempt_start: Dict[int, float] = {}
        self._attempt_worker: Dict[int, int] = {}
        self._completed = 0
        self._quarantined = 0
        #: Cascade-quarantined tasks the submission window has not yet
        #: revealed; needed to state the conservation law exactly.
        self._quarantined_unrevealed = 0
        self._next_to_submit = 0
        self._outstanding = 0
        self._ran = False
        self._started_wall = 0.0
        if self._resilience is not None and self._resilience.watchdog is not None:
            self._engine.add_listener(self._watchdog_check)

    # -- public API --------------------------------------------------------------

    @property
    def workflow(self) -> WorkflowSpec:
        return self._workflow

    @property
    def allocator(self) -> TaskOrientedAllocator:
        return self._allocator

    @property
    def engine(self) -> SimulationEngine:
        return self._engine

    @property
    def pool(self) -> WorkerPool:
        return self._pool

    @property
    def ledger(self) -> Ledger:
        return self._ledger

    @property
    def invariants(self) -> Optional[InvariantChecker]:
        return self._invariants

    @property
    def faults(self) -> Optional[FaultInjector]:
        return self._faults

    def tasks(self) -> Tuple[SimTask, ...]:
        return tuple(self._tasks.values())

    def add_event_listener(self, listener: Callable[[SimEvent], None]) -> None:
        """Subscribe to the manager's event stream (trace recording)."""
        self._event_listeners.append(listener)

    def _emit(self, kind: str, **fields) -> None:
        if self._event_listeners:
            event = SimEvent(time=self._engine.now, kind=kind, fields=fields)
            for listener in self._event_listeners:
                listener(event)

    @property
    def algorithm_label(self) -> str:
        """The algorithm name reported in results ("oracle" in oracle mode)."""
        return "oracle" if self._config.oracle else self._config.allocator.algorithm

    @property
    def completed_tasks(self) -> int:
        return self._completed

    @property
    def resilience(self) -> Optional[ResilienceEngine]:
        return self._resilience

    @property
    def quarantined_tasks(self) -> int:
        """Tasks moved to the dead-letter ledger (0 without a policy)."""
        return self._quarantined

    @property
    def quarantined_unrevealed(self) -> int:
        """Quarantined tasks the submission window never revealed."""
        return self._quarantined_unrevealed

    @property
    def submitted_tasks(self) -> int:
        """Tasks revealed to the scheduler so far."""
        return self._next_to_submit

    @property
    def outstanding_tasks(self) -> int:
        """Revealed tasks that are neither completed nor quarantined."""
        return self._outstanding

    @property
    def terminal_tasks(self) -> int:
        """Tasks that reached a final state (completed or quarantined)."""
        return self._completed + self._quarantined

    def run(self) -> SimulationResult:
        """Execute the workflow to completion and return the result."""
        self.begin()
        self.advance()
        return self.finish()

    def begin(self) -> None:
        """Arm the simulation: submit the first tasks, schedule dispatch.

        ``run()`` is ``begin(); advance(); finish()`` — the split exists
        for the checkpoint/resume machinery, which needs to pause after a
        bounded number of events (:meth:`advance` with
        ``stop_after_events``) and to attach listeners before the first
        event fires.
        """
        if self._ran:
            raise RuntimeError("a WorkflowManager instance runs exactly once")
        self._ran = True
        # reprolint: disable=R1,F3  # feeds reporting-only wall_clock_seconds, never the sim
        self._started_wall = _time.perf_counter()
        self._submit_more()
        self._engine.schedule(0.0, self._dispatch)

    def advance(self, stop_after_events: Optional[int] = None) -> bool:
        """Process events; returns True once the workflow has completed.

        ``stop_after_events`` pauses the engine cleanly once its lifetime
        event count reaches that value (checkpoint replay); ``None``
        drains the queue.
        """
        if not self._ran:
            raise RuntimeError("call begin() before advance()")
        self._engine.run(
            max_events=self._config.effective_max_events(len(self._workflow)),
            stop_after_total=stop_after_events,
        )
        return self.terminal_tasks == len(self._workflow)

    def finish(self) -> SimulationResult:
        """Validate the completed run and bundle the result."""
        if self.terminal_tasks != len(self._workflow):
            raise RuntimeError(
                f"simulation drained with {self._completed}/{len(self._workflow)} "
                f"tasks completed and {self._quarantined} quarantined — the pool "
                "can no longer host the remaining tasks"
            )
        if self._invariants is not None:
            self._invariants.check_complete()
        assert self._ledger.identity_holds(), "accounting identity violated"

        terminal_times = [
            t.completion_time
            for t in self._tasks.values()
            if t.completion_time is not None
        ]
        dead_letters: Tuple[DeadLetterEntry, ...] = ()
        resilience_stats: Optional[ResilienceStats] = None
        if self._resilience is not None:
            dead_letters = self._resilience.dead_letters.entries()
            terminal_times.extend(entry.time for entry in dead_letters)
            resilience_stats = self._resilience.stats(
                capacity_clamps=self._allocator.capacity_clamps_total
            )
        makespan = max(terminal_times, default=0.0)
        self._emit("complete", tasks=self._completed, attempts=self._ledger.n_attempts)
        return SimulationResult(
            workflow_name=self._workflow.name,
            algorithm=self.algorithm_label,
            ledger=self._ledger,
            makespan=makespan,
            n_tasks=len(self._workflow),
            n_attempts=self._ledger.n_attempts,
            n_failed_attempts=self._ledger.n_failed_attempts,
            n_evicted_attempts=self._ledger.n_evicted_attempts,
            workers_joined=self._pool.total_joined,
            workers_left=self._pool.total_left,
            # reprolint: disable=R1,F3  # reporting-only diagnostic, excluded from digests
            wall_clock_seconds=_time.perf_counter() - self._started_wall,
            fault_stats=self._faults.stats if self._faults is not None else FaultStats(),
            n_quarantined=self._quarantined,
            dead_letters=dead_letters,
            resilience_stats=resilience_stats,
        )

    # -- allocation hooks ---------------------------------------------------------------

    def _allocation_of(self, task: SimTask) -> ResourceVector:
        if self._config.oracle:
            values = {
                res: task.spec.consumption[res]
                for res in self._config.allocator.resources
                if res is not TIME
            }
            if self._manage_time:
                values[TIME] = task.spec.duration
            return ResourceVector(values)
        if self._resilience is not None and self._resilience.conservative_mode(
            self._engine.now
        ):
            # Breaker open (degraded mode): bypass the algorithm and
            # allocate a whole machine — fragmentation over livelock.
            return self._allocator.conservative_allocation()
        return self._allocator.allocate(task.category, task.task_id)

    def _allocation_version(self, task: SimTask):
        if self._resilience is not None:
            # Mix in the breaker epoch so every queued prediction goes
            # stale the moment the degraded-mode state flips.
            return (
                self._allocator.version(task.category),
                self._resilience.allocation_epoch(self._engine.now),
            )
        return self._allocator.version(task.category)

    def _may_dispatch(self, task: SimTask) -> bool:
        """Exploratory concurrency gate (see ExploratoryConfig).

        While a category is still collecting its bootstrap records, only
        a bounded number of its tasks may run at once; the rest wait in
        the queue so their dispatch-time predictions can use the records
        the explorers produce.
        """
        if not self._allocator.in_exploration(task.category):
            return True
        running = self._running_per_category.get(task.category, 0)
        return running < self._explore_concurrency

    # -- submission pacing -----------------------------------------------------------------

    def _submit_more(self) -> None:
        """Reveal tasks to the scheduler up to the outstanding window."""
        limit = self._config.max_outstanding
        specs = self._workflow.tasks
        while self._next_to_submit < len(specs) and (
            limit is None or self._outstanding < limit
        ):
            task = self._tasks[specs[self._next_to_submit].task_id]
            self._next_to_submit += 1
            if task.state is TaskState.QUARANTINED:
                # Already dead-lettered through a quarantined parent
                # before the window reached it; it is now revealed.
                self._quarantined_unrevealed -= 1
                continue
            self._outstanding += 1
            if task.state is TaskState.READY:
                self._enqueue_new(task)
            # PENDING tasks are submitted but wait for their parents; the
            # dependency-completion hook enqueues them.

    def _enqueue_new(self, task: SimTask) -> None:
        """First enqueue of a task (starts its deadline clock)."""
        if self._resilience is not None:
            self._resilience.note_enqueued(task.task_id, self._engine.now)
        self._scheduler.enqueue(task)

    # -- attempt lifecycle ----------------------------------------------------------------

    def _start_attempt(self, task: SimTask, worker: Worker) -> None:
        allocation = task.current_allocation
        assert allocation is not None
        if self._faults is not None:
            retry_in = self._faults.dispatch_fault_delay(task.task_id)
            if retry_in is not None:
                # Transient dispatch failure: the placement never
                # happened (no attempt record, no capacity held); the
                # task re-queues after exponential backoff with its
                # allocation pinned — a lost submission says nothing
                # about the allocation's adequacy.
                task.state = TaskState.READY
                self._emit(
                    "dispatch_fault",
                    task=task.task_id,
                    worker=worker.worker_id,
                    retry_in=retry_in,
                )
                if self._resilience is not None and self._resilience.deadline_exceeded(
                    task.task_id, self._engine.now
                ):
                    # Past its wall-clock deadline: stop burning
                    # dispatch retries on it and dead-letter it now.
                    self._quarantine_task(task, "deadline_exceeded")
                    return
                self._engine.schedule(retry_in, lambda: self._redispatch(task))
                return
        worker.place(task.task_id, allocation)
        self._emit(
            "dispatch", task=task.task_id, worker=worker.worker_id, alloc=allocation
        )
        now = self._engine.now
        self._attempt_start[task.task_id] = now
        self._attempt_worker[task.task_id] = worker.worker_id
        self._running_per_category[task.category] = (
            self._running_per_category.get(task.category, 0) + 1
        )

        time_limit = allocation[TIME] if self._manage_time else None
        verdict = self._config.profile.check(
            allocation, task.spec.consumption, task.spec.duration, time_limit
        )
        runtime = task.spec.duration * verdict.fraction
        token = self._attempt_token[task.task_id]
        self._engine.schedule(
            runtime,
            lambda: self._end_attempt(task, worker, verdict, runtime, token),
        )

    def _redispatch(self, task: SimTask) -> None:
        """Re-queue a task whose dispatch failed transiently."""
        if task.state is not TaskState.READY:  # pragma: no cover - defensive
            return
        self._scheduler.enqueue_retry(task)
        self._dispatch()

    def _record_attempt(self, task: SimTask, attempt: Attempt) -> None:
        """Single chokepoint for attempt history: record, then audit."""
        task.record_attempt(attempt)
        if self._invariants is not None:
            self._invariants.check_attempt(task, attempt)

    def _end_attempt(self, task, worker, verdict, runtime: float, token: int) -> None:
        if self._attempt_token[task.task_id] != token:
            return  # the attempt was evicted; this event is stale
        self._attempt_token[task.task_id] += 1
        worker.release(task.task_id, held_for=runtime)
        start = self._attempt_start.pop(task.task_id)
        self._attempt_worker.pop(task.task_id, None)
        self._running_per_category[task.category] -= 1

        allocation = task.current_allocation
        assert allocation is not None
        if verdict.success:
            attempt = Attempt(
                index=task.n_attempts,
                worker_id=worker.worker_id,
                allocation=allocation,
                start_time=start,
                runtime=task.spec.duration,
                outcome=AttemptOutcome.SUCCESS,
                observed=task.spec.consumption,
            )
            self._record_attempt(task, attempt)
            self._emit("success", task=task.task_id, worker=worker.worker_id)
            task.state = TaskState.COMPLETED
            task.completion_time = self._engine.now
            self._completed += 1
            peaks = task.spec.consumption
            if self._manage_time:
                # The TIME record is the task's true duration — the peak
                # "consumption" of wall time.
                peaks = peaks.replace(TIME, task.spec.duration)
            self._allocator.observe(task.category, peaks, task_id=task.task_id)
            self._ledger.record_task(task)
            self._outstanding -= 1
            self._note_outcome(success=True)
            self._submit_more()
            self._notify_children(task)
            if self.terminal_tasks == len(self._workflow):
                self._stop_generators()
                return
        else:
            attempt = Attempt(
                index=task.n_attempts,
                worker_id=worker.worker_id,
                allocation=allocation,
                start_time=start,
                runtime=runtime,
                outcome=AttemptOutcome.EXHAUSTED,
                observed=verdict.observed,
                exhausted=verdict.exhausted,
            )
            self._record_attempt(task, attempt)
            self._emit(
                "exhausted",
                task=task.task_id,
                worker=worker.worker_id,
                resources=tuple(r.key for r in verdict.exhausted),
            )
            task.state = TaskState.READY
            self._note_outcome(success=False)
            if self._resilience is not None:
                self._resilient_retry(task, allocation, verdict)
            else:
                task.current_allocation = self._allocator.allocate_retry(
                    task.category,
                    task.task_id,
                    previous=allocation,
                    observed=verdict.observed,
                    exhausted=verdict.exhausted,
                )
                self._scheduler.enqueue_retry(task)
        self._dispatch()

    def _notify_children(self, task: SimTask) -> None:
        for child_id in self._children.get(task.task_id, ()):  # dynamic DAG fan-out
            child = self._tasks[child_id]
            if child.dependency_completed(task.task_id, self._engine.now):
                self._enqueue_new(child)

    # -- pool callbacks ----------------------------------------------------------------------

    def _on_worker_joined(self, worker: Worker) -> None:
        self._emit("worker_join", worker=worker.worker_id)
        self._dispatch()

    def _on_worker_leaving(self, worker: Worker, evicted: Dict[int, ResourceVector]) -> None:
        self._emit(
            "worker_leave", worker=worker.worker_id, evicted=tuple(evicted)
        )
        for task_id, allocation in evicted.items():
            self._evict_attempt(task_id, allocation, worker.worker_id, cause="worker_lost")
        if evicted:
            self._dispatch()

    def _on_worker_degraded(self, worker: Worker, evicted: Dict[int, ResourceVector]) -> None:
        """A worker shrank under its tasks; requeue the ones pushed off."""
        self._emit(
            "worker_degraded",
            worker=worker.worker_id,
            capacity=worker.capacity,
            evicted=tuple(evicted),
        )
        for task_id, allocation in evicted.items():
            self._evict_attempt(task_id, allocation, worker.worker_id, cause="degraded")
        if evicted:
            self._dispatch()

    def _fault_kill(self, task_id: int) -> bool:
        """Kill one running attempt as an injected fault.

        The worker survives — only the task's process dies — so its
        reservation is released and the attempt is accounted exactly
        like an eviction: requeued with the same allocation, held
        resources charged to the eviction bucket.
        """
        worker_id = self._attempt_worker.get(task_id)
        if worker_id is None:
            return False
        start = self._attempt_start[task_id]
        worker = self._pool.worker(worker_id)
        allocation = worker.release(task_id, held_for=self._engine.now - start)
        self._evict_attempt(task_id, allocation, worker_id, cause="fault_kill")
        self._dispatch()
        return True

    def _evict_attempt(
        self, task_id: int, allocation: ResourceVector, worker_id: int, cause: str
    ) -> None:
        """Common bookkeeping for an attempt lost to external causes.

        Used for worker departures (churn and preemption faults),
        capacity degradations and mid-task kills: invalidate the
        pending end-of-attempt event, record an EVICTED attempt with
        the consumption observed so far, and requeue the task with its
        allocation unchanged — eviction says nothing about the
        allocation's adequacy.
        """
        now = self._engine.now
        task = self._tasks[task_id]
        self._attempt_token[task_id] += 1  # invalidate the pending end event
        start = self._attempt_start.pop(task_id, now)
        self._attempt_worker.pop(task_id, None)
        self._running_per_category[task.category] -= 1
        elapsed = now - start
        fraction = min(1.0, elapsed / task.spec.duration) if task.spec.duration > 0 else 0.0
        observed = ResourceVector(
            {
                res: min(
                    self._config.profile.consumed_at(
                        task.spec.consumption[res], fraction
                    ),
                    task.spec.consumption[res],
                )
                for res in task.spec.consumption
                if res is not TIME
            }
        )
        attempt = Attempt(
            index=task.n_attempts,
            worker_id=worker_id,
            allocation=allocation,
            start_time=start,
            runtime=elapsed,
            outcome=AttemptOutcome.EVICTED,
            observed=observed,
        )
        self._record_attempt(task, attempt)
        self._emit("evicted", task=task_id, worker=worker_id, cause=cause)
        task.state = TaskState.READY
        if self._resilience is not None:
            decision = self._resilience.on_requeue(task_id, cause, now)
            if not decision.retry:
                self._quarantine_task(task, decision.reason)
                return
            if decision.delay > 0:
                self._emit("backoff", task=task_id, delay=decision.delay)
                self._engine.schedule(
                    decision.delay, lambda: self._requeue_after_backoff(task)
                )
                return
        self._scheduler.enqueue_retry(task)

    # -- resilience policy ---------------------------------------------------------------------

    def _note_outcome(self, success: bool) -> None:
        """Feed one success/exhaustion into the breaker and watchdog."""
        if self._resilience is None:
            return
        now = self._engine.now
        breaker = self._resilience.breaker
        epoch_before = breaker.epoch if breaker is not None else 0
        self._resilience.record_outcome(success, now)
        if success:
            self._resilience.note_progress(now)
        if breaker is not None and breaker.epoch != epoch_before:
            self._emit(
                "breaker", state=breaker.state(now).value, trips=breaker.trips
            )

    def _resilient_retry(self, task: SimTask, allocation: ResourceVector, verdict) -> None:
        """Exhaustion requeue under a retry policy: escalate, delay, or give up."""
        assert self._resilience is not None
        now = self._engine.now
        decision = self._resilience.on_requeue(task.task_id, "exhausted", now)
        if not decision.retry:
            self._quarantine_task(task, decision.reason)
            return
        if self._resilience.conservative_mode(now):
            # Degraded mode: skip the algorithm's escalation ladder and
            # jump straight to the conservative whole-machine allocation
            # (never shrinking below what already proved insufficient).
            task.current_allocation = allocation.componentwise_max(
                self._allocator.conservative_allocation()
            )
        else:
            task.current_allocation = self._allocator.allocate_retry(
                task.category,
                task.task_id,
                previous=allocation,
                observed=verdict.observed,
                exhausted=verdict.exhausted,
            )
        if decision.delay > 0:
            self._emit("backoff", task=task.task_id, delay=decision.delay)
            self._engine.schedule(
                decision.delay, lambda: self._requeue_after_backoff(task)
            )
        else:
            self._scheduler.enqueue_retry(task)

    def _requeue_after_backoff(self, task: SimTask) -> None:
        """Re-admit a task whose requeue was delayed by backoff."""
        if task.state is not TaskState.READY:  # pragma: no cover - defensive
            return
        self._scheduler.enqueue_retry(task)
        self._dispatch()

    def _quarantine_task(self, task: SimTask, reason: str) -> None:
        """Move one over-budget task to the dead-letter ledger.

        The task's burned attempts are charged to the accounting ledger
        (failed-allocation waste), descendants that can now never run
        are cascade-quarantined, and the freed submission-window slot is
        refilled — the rest of the workflow keeps going.
        """
        assert self._resilience is not None
        now = self._engine.now
        task.state = TaskState.QUARANTINED
        self._resilience.quarantine(
            task.task_id,
            task.category,
            reason,
            now,
            n_attempts=task.n_attempts,
            n_exhausted=task.n_exhausted_attempts,
            n_evicted=task.n_evicted_attempts,
        )
        self._ledger.record_quarantined(task)
        self._quarantined += 1
        self._outstanding -= 1
        self._emit(
            "quarantine", task=task.task_id, reason=reason, attempts=task.n_attempts
        )
        self._cascade_quarantine(task)
        self._submit_more()
        if self.terminal_tasks == len(self._workflow):
            self._stop_generators()

    def _cascade_quarantine(self, root: SimTask) -> None:
        """Dead-letter every descendant waiting on a quarantined parent."""
        assert self._resilience is not None
        now = self._engine.now
        stack = list(self._children.get(root.task_id, ()))
        while stack:
            child = self._tasks[stack.pop()]
            if child.state is not TaskState.PENDING:
                continue
            child.state = TaskState.QUARANTINED
            self._resilience.quarantine(
                child.task_id,
                child.category,
                "parent_quarantined",
                now,
                n_attempts=child.n_attempts,
                n_exhausted=child.n_exhausted_attempts,
                n_evicted=child.n_evicted_attempts,
            )
            self._ledger.record_quarantined(child)
            self._quarantined += 1
            if self._spec_index[child.task_id] < self._next_to_submit:
                self._outstanding -= 1
            else:
                self._quarantined_unrevealed += 1
            self._emit(
                "quarantine",
                task=child.task_id,
                reason="parent_quarantined",
                attempts=child.n_attempts,
            )
            stack.extend(self._children.get(child.task_id, ()))

    def _watchdog_check(self) -> None:
        """Engine post-event hook: detect no-forward-progress windows."""
        assert self._resilience is not None
        work_outstanding = self.terminal_tasks < len(self._workflow)
        if self._resilience.check_stall(self._engine.now, work_outstanding):
            watchdog = self._resilience.watchdog
            assert watchdog is not None
            self._emit(
                "stall",
                stalls=watchdog.stalls,
                degraded=self._resilience.breaker is not None,
            )

    def _stop_generators(self) -> None:
        """Terminal state reached: let the event queue drain."""
        self._pool.stop()
        if self._faults is not None:
            self._faults.stop()

    # -- dispatch trampoline -------------------------------------------------------------------

    def _dispatch(self) -> None:
        self._scheduler.try_dispatch()
