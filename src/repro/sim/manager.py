"""The workflow manager: glue between workflow, allocator and simulator.

:class:`WorkflowManager` drives one workflow run end to end, mirroring
Figure 1/3a:

1. submit every task (dependency-free tasks are ready immediately;
   others wait for their parents);
2. at dispatch time, ask the :class:`TaskOrientedAllocator` for the
   task's allocation — first attempt through :meth:`allocate`, retries
   through :meth:`allocate_retry`;
3. decide each attempt's fate up front with the consumption profile
   (the simulator knows the hidden truth; the allocator never sees it)
   and schedule the completion or kill event;
4. on success, feed the resource record back to the allocator and the
   ledger; on exhaustion, grow the allocation and requeue; on eviction,
   requeue with the same allocation.

``run()`` returns a :class:`SimulationResult` bundling the ledger and
run-level statistics — the unit every experiment module consumes.
"""

from __future__ import annotations

import dataclasses
import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.allocator import AllocatorConfig, TaskOrientedAllocator
from repro.core.resources import Resource, ResourceVector, TIME
from repro.sim.accounting import Ledger, WasteBreakdown
from repro.sim.engine import SimulationEngine
from repro.sim.pool import PoolConfig, WorkerPool
from repro.sim.profiles import ConsumptionProfile, LinearRampProfile
from repro.sim.scheduler import Scheduler
from repro.sim.task import Attempt, AttemptOutcome, SimTask, TaskState
from repro.sim.worker import Worker
from repro.workflows.spec import WorkflowSpec

__all__ = ["SimulationConfig", "SimulationResult", "WorkflowManager"]


@dataclass(frozen=True)
class SimulationConfig:
    """Everything configurable about one simulated run."""

    allocator: AllocatorConfig = field(default_factory=AllocatorConfig)
    pool: PoolConfig = field(default_factory=PoolConfig)
    profile: ConsumptionProfile = field(default_factory=LinearRampProfile)
    #: Maximum tasks revealed to the scheduler but not yet completed.
    #: Dynamic applications (Colmena's batched molecule campaigns,
    #: Coffea's chunked submission) keep a bounded number of tasks in
    #: flight rather than dumping the whole run at t=0; ``None`` models
    #: the dump-everything extreme.
    max_outstanding: Optional[int] = None
    #: Allocate every task exactly its true peak consumption (and true
    #: duration, when TIME is managed).  The oracle of Section II-C:
    #: zero waste, AWE = 1 by construction.  Not realizable online — it
    #: exists as the reference ceiling for experiments and tests.
    oracle: bool = False
    #: Hard bound on processed events; a livelocked run raises instead of
    #: spinning (attempts per task are bounded by doubling, so legitimate
    #: runs stay far below ~20 events/task).
    max_events: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_outstanding is not None and self.max_outstanding < 1:
            raise ValueError(
                f"max_outstanding must be >= 1, got {self.max_outstanding}"
            )

    def effective_max_events(self, n_tasks: int) -> int:
        if self.max_events is not None:
            return self.max_events
        return max(10_000, 200 * n_tasks)


@dataclass
class SimulationResult:
    """Outcome of one (workflow, algorithm) simulated run."""

    workflow_name: str
    algorithm: str
    ledger: Ledger
    makespan: float
    n_tasks: int
    n_attempts: int
    n_failed_attempts: int
    n_evicted_attempts: int
    workers_joined: int
    workers_left: int
    wall_clock_seconds: float

    def awe(self, resource: Resource) -> float:
        return self.ledger.awe(resource)

    def waste(self, resource: Resource) -> WasteBreakdown:
        return self.ledger.waste(resource)

    def summary(self) -> Dict[str, object]:
        """Flat dict for tabular reporting."""
        row: Dict[str, object] = {
            "workflow": self.workflow_name,
            "algorithm": self.algorithm,
            "tasks": self.n_tasks,
            "attempts": self.n_attempts,
            "failed_attempts": self.n_failed_attempts,
            "evicted_attempts": self.n_evicted_attempts,
            "makespan_s": round(self.makespan, 3),
        }
        for res in self.ledger.resources:
            row[f"awe_{res.key}"] = round(self.ledger.awe(res), 4)
        return row


class WorkflowManager:
    """Run one workflow against one allocator configuration."""

    def __init__(self, workflow: WorkflowSpec, config: Optional[SimulationConfig] = None) -> None:
        self._workflow = workflow
        self._config = config if config is not None else SimulationConfig()
        workflow.validate_fits(self._config.pool.capacity)

        self._engine = SimulationEngine()
        self._pool = WorkerPool(self._engine, self._config.pool)
        # The allocator's notion of "a whole machine" must be the pool's
        # actual worker shape — Whole Machine allocations, the
        # whole-machine exploratory policy and the capacity clamp all
        # depend on it.
        allocator_config = self._config.allocator
        if allocator_config.machine_capacity != self._config.pool.capacity:
            allocator_config = dataclasses.replace(
                allocator_config, machine_capacity=self._config.pool.capacity
            )
        self._allocator = TaskOrientedAllocator(allocator_config)
        self._ledger = Ledger(self._config.allocator.resources)
        self._manage_time = TIME in self._config.allocator.resources

        self._tasks: Dict[int, SimTask] = {
            spec.task_id: SimTask(spec) for spec in workflow
        }
        # Reverse dependency index: parent -> children waiting on it.
        self._children: Dict[int, List[int]] = {}
        for spec in workflow:
            for dep in spec.dependencies:
                self._children.setdefault(dep, []).append(spec.task_id)

        self._scheduler = Scheduler(
            self._pool,
            allocation_of=self._allocation_of,
            allocation_version=self._allocation_version,
            start_attempt=self._start_attempt,
            may_dispatch=self._may_dispatch,
        )
        self._running_per_category: Dict[str, int] = {}
        self._explore_concurrency = (
            self._config.allocator.exploratory.effective_explore_concurrency
        )
        self._pool.on_worker_joined = self._on_worker_joined
        self._pool.on_worker_leaving = self._on_worker_leaving

        #: attempt validity tokens: an eviction invalidates the pending
        #: end-of-attempt event of the evicted task.
        self._attempt_token: Dict[int, int] = {t: 0 for t in self._tasks}
        self._attempt_start: Dict[int, float] = {}
        self._attempt_worker: Dict[int, int] = {}
        self._completed = 0
        self._next_to_submit = 0
        self._outstanding = 0
        self._ran = False

    # -- public API --------------------------------------------------------------

    @property
    def workflow(self) -> WorkflowSpec:
        return self._workflow

    @property
    def allocator(self) -> TaskOrientedAllocator:
        return self._allocator

    @property
    def engine(self) -> SimulationEngine:
        return self._engine

    def run(self) -> SimulationResult:
        """Execute the workflow to completion and return the result."""
        if self._ran:
            raise RuntimeError("a WorkflowManager instance runs exactly once")
        self._ran = True
        started = _time.perf_counter()

        self._submit_more()
        self._engine.schedule(0.0, self._dispatch)
        self._engine.run(
            max_events=self._config.effective_max_events(len(self._workflow))
        )

        if self._completed != len(self._workflow):
            raise RuntimeError(
                f"simulation drained with {self._completed}/{len(self._workflow)} "
                "tasks completed — the pool can no longer host the remaining tasks"
            )
        assert self._ledger.identity_holds(), "accounting identity violated"

        makespan = max(
            (t.completion_time for t in self._tasks.values() if t.completion_time is not None),
            default=0.0,
        )
        return SimulationResult(
            workflow_name=self._workflow.name,
            algorithm="oracle" if self._config.oracle else self._config.allocator.algorithm,
            ledger=self._ledger,
            makespan=makespan,
            n_tasks=len(self._workflow),
            n_attempts=self._ledger.n_attempts,
            n_failed_attempts=self._ledger.n_failed_attempts,
            n_evicted_attempts=self._ledger.n_evicted_attempts,
            workers_joined=self._pool.total_joined,
            workers_left=self._pool.total_left,
            wall_clock_seconds=_time.perf_counter() - started,
        )

    # -- allocation hooks ---------------------------------------------------------------

    def _allocation_of(self, task: SimTask) -> ResourceVector:
        if self._config.oracle:
            values = {
                res: task.spec.consumption[res]
                for res in self._config.allocator.resources
                if res is not TIME
            }
            if self._manage_time:
                values[TIME] = task.spec.duration
            return ResourceVector(values)
        return self._allocator.allocate(task.category, task.task_id)

    def _allocation_version(self, task: SimTask) -> int:
        return self._allocator.version(task.category)

    def _may_dispatch(self, task: SimTask) -> bool:
        """Exploratory concurrency gate (see ExploratoryConfig).

        While a category is still collecting its bootstrap records, only
        a bounded number of its tasks may run at once; the rest wait in
        the queue so their dispatch-time predictions can use the records
        the explorers produce.
        """
        if not self._allocator.in_exploration(task.category):
            return True
        running = self._running_per_category.get(task.category, 0)
        return running < self._explore_concurrency

    # -- submission pacing -----------------------------------------------------------------

    def _submit_more(self) -> None:
        """Reveal tasks to the scheduler up to the outstanding window."""
        limit = self._config.max_outstanding
        specs = self._workflow.tasks
        while self._next_to_submit < len(specs) and (
            limit is None or self._outstanding < limit
        ):
            task = self._tasks[specs[self._next_to_submit].task_id]
            self._next_to_submit += 1
            self._outstanding += 1
            if task.state is TaskState.READY:
                self._scheduler.enqueue(task)
            # PENDING tasks are submitted but wait for their parents; the
            # dependency-completion hook enqueues them.

    # -- attempt lifecycle ----------------------------------------------------------------

    def _start_attempt(self, task: SimTask, worker: Worker) -> None:
        allocation = task.current_allocation
        assert allocation is not None
        worker.place(task.task_id, allocation)
        now = self._engine.now
        self._attempt_start[task.task_id] = now
        self._attempt_worker[task.task_id] = worker.worker_id
        self._running_per_category[task.category] = (
            self._running_per_category.get(task.category, 0) + 1
        )

        time_limit = allocation[TIME] if self._manage_time else None
        verdict = self._config.profile.check(
            allocation, task.spec.consumption, task.spec.duration, time_limit
        )
        runtime = task.spec.duration * verdict.fraction
        token = self._attempt_token[task.task_id]
        self._engine.schedule(
            runtime,
            lambda: self._end_attempt(task, worker, verdict, runtime, token),
        )

    def _end_attempt(self, task, worker, verdict, runtime: float, token: int) -> None:
        if self._attempt_token[task.task_id] != token:
            return  # the attempt was evicted; this event is stale
        self._attempt_token[task.task_id] += 1
        worker.release(task.task_id, held_for=runtime)
        start = self._attempt_start.pop(task.task_id)
        self._attempt_worker.pop(task.task_id, None)
        self._running_per_category[task.category] -= 1

        allocation = task.current_allocation
        assert allocation is not None
        if verdict.success:
            attempt = Attempt(
                index=task.n_attempts,
                worker_id=worker.worker_id,
                allocation=allocation,
                start_time=start,
                runtime=task.spec.duration,
                outcome=AttemptOutcome.SUCCESS,
                observed=task.spec.consumption,
            )
            task.record_attempt(attempt)
            task.state = TaskState.COMPLETED
            task.completion_time = self._engine.now
            self._completed += 1
            peaks = task.spec.consumption
            if self._manage_time:
                # The TIME record is the task's true duration — the peak
                # "consumption" of wall time.
                peaks = peaks.replace(TIME, task.spec.duration)
            self._allocator.observe(task.category, peaks, task_id=task.task_id)
            self._ledger.record_task(task)
            self._outstanding -= 1
            self._submit_more()
            self._notify_children(task)
            if self._completed == len(self._workflow):
                self._pool.stop()
                return
        else:
            attempt = Attempt(
                index=task.n_attempts,
                worker_id=worker.worker_id,
                allocation=allocation,
                start_time=start,
                runtime=runtime,
                outcome=AttemptOutcome.EXHAUSTED,
                observed=verdict.observed,
                exhausted=verdict.exhausted,
            )
            task.record_attempt(attempt)
            task.state = TaskState.READY
            task.current_allocation = self._allocator.allocate_retry(
                task.category,
                task.task_id,
                previous=allocation,
                observed=verdict.observed,
                exhausted=verdict.exhausted,
            )
            self._scheduler.enqueue_retry(task)
        self._dispatch()

    def _notify_children(self, task: SimTask) -> None:
        for child_id in self._children.get(task.task_id, ()):  # dynamic DAG fan-out
            child = self._tasks[child_id]
            if child.dependency_completed(task.task_id, self._engine.now):
                self._scheduler.enqueue(child)

    # -- pool callbacks ----------------------------------------------------------------------

    def _on_worker_joined(self, worker: Worker) -> None:
        self._dispatch()

    def _on_worker_leaving(self, worker: Worker, evicted: Dict[int, ResourceVector]) -> None:
        now = self._engine.now
        for task_id, allocation in evicted.items():
            task = self._tasks[task_id]
            self._attempt_token[task_id] += 1  # invalidate the pending end event
            start = self._attempt_start.pop(task_id, now)
            self._attempt_worker.pop(task_id, None)
            self._running_per_category[task.category] -= 1
            elapsed = now - start
            fraction = min(1.0, elapsed / task.spec.duration) if task.spec.duration > 0 else 0.0
            observed = ResourceVector(
                {
                    res: min(
                        self._config.profile.consumed_at(
                            task.spec.consumption[res], fraction
                        ),
                        task.spec.consumption[res],
                    )
                    for res in task.spec.consumption
                    if res is not TIME
                }
            )
            attempt = Attempt(
                index=task.n_attempts,
                worker_id=worker.worker_id,
                allocation=allocation,
                start_time=start,
                runtime=elapsed,
                outcome=AttemptOutcome.EVICTED,
                observed=observed,
            )
            task.record_attempt(attempt)
            task.state = TaskState.READY
            # Eviction says nothing about the allocation's adequacy:
            # retry with the same allocation.
            self._scheduler.enqueue_retry(task)
        if evicted:
            self._dispatch()

    # -- dispatch trampoline -------------------------------------------------------------------

    def _dispatch(self) -> None:
        self._scheduler.try_dispatch()
