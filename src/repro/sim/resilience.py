"""Task-level resilience: retry policies, quarantine, breaker, watchdog.

The paper's only recovery rule — retry with the next-larger bucket,
then double past the largest (Section III) — is *unbounded*: a
pathological task that exhausts memory at every allocation retries
forever, and the whole workflow livelocks behind it.  Sizey
(arXiv:2407.16353) and Ponder (arXiv:2408.00047) both treat
failure-handling as a first-class, tunable dimension of the allocator;
this module gives the reproduction the same dimension, as four
cooperating pieces consulted by the
:class:`~repro.sim.manager.WorkflowManager` on every requeue path:

* :class:`RetryPolicyConfig` — per-task retry budgets, wall-clock
  deadlines and exponential backoff with jitter drawn from the policy's
  *own* named RNG stream (never the fault injector's, so enabling
  backoff cannot perturb a fault schedule).
* **Poison-task quarantine** — a task that exceeds its budget or
  deadline is moved to the :class:`DeadLetterLedger` instead of being
  requeued; its failed attempts are charged to the accounting ledger's
  failed-allocation waste so AWE stays honest about the burned
  resources.
* :class:`CircuitBreaker` — a closed/open/half-open state machine over
  the recent failed-allocation rate.  While *open*, the manager
  abandons the algorithm's predictions and allocates conservatively
  (whole machine), trading fragmentation for forward progress; after a
  cooldown it *half-opens* and probes with normal predictions again.
* :class:`StallWatchdog` — rides the engine's post-event hook and
  detects no-forward-progress windows (all workers idle with a
  non-empty queue, or retry loops with zero completions); a stall
  forces the breaker open (degraded mode) and is counted, never
  silently absorbed.

Everything here is deterministic given its config: the breaker and the
watchdog are pure functions of the event stream, and the only
randomness (backoff jitter) comes from a seeded generator captured by
:meth:`ResilienceEngine.state_dict`, so checkpoint/resume replay stays
bit-exact and two runs with the same seeds produce identical traces.

All knobs default *off*: a ``ResilienceConfig()`` (or ``None``) adds no
behaviour — golden traces and benchmark numbers are unchanged until a
budget, deadline, backoff, breaker or watchdog is explicitly enabled.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.checkpoint import generator_state, restore_generator

__all__ = [
    "RetryPolicyConfig",
    "CircuitBreakerConfig",
    "WatchdogConfig",
    "ResilienceConfig",
    "RetryAction",
    "RetryDecision",
    "DeadLetterEntry",
    "DeadLetterLedger",
    "BreakerState",
    "CircuitBreaker",
    "StallWatchdog",
    "ResilienceStats",
    "ResilienceEngine",
]


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicyConfig:
    """When to keep retrying a failed attempt, and how long to wait.

    Attributes
    ----------
    budget:
        Maximum *exhausted* attempts a task may accumulate before it is
        quarantined (``None`` = unbounded, the paper's behaviour).
        Evictions and fault kills do not count by default — they say
        nothing about the allocation's adequacy — unless
        ``count_evictions`` is set.
    deadline:
        Simulation-clock seconds a task may spend between its first
        enqueue and its completion; exceeded at requeue time, the task
        is quarantined (``None`` = no deadline).
    count_evictions:
        Charge evicted/fault-killed attempts against ``budget`` too
        (an aggressive policy for pools where eviction storms should
        shed load rather than retry forever).
    backoff_base:
        Seconds before the k-th retry is re-enqueued, growing as
        ``backoff_base * backoff_factor**(k-1)`` capped at
        ``backoff_max``; ``0`` (default) requeues synchronously —
        byte-identical to the pre-resilience scheduler.
    backoff_factor, backoff_max:
        Growth factor and cap of the backoff ladder.
    jitter:
        Fractional +/- jitter applied to each backoff delay, drawn from
        the policy's own seeded stream (see ``seed``).  ``0`` disables.
    seed:
        Seed of the named ``numpy.random.Generator`` jitter stream —
        deliberately separate from the fault injector's stream so the
        same fault seed replays identically with or without backoff.
    """

    budget: Optional[int] = None
    deadline: Optional[float] = None
    count_evictions: bool = False
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    backoff_max: float = 300.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.budget is not None and self.budget < 1:
            raise ValueError(f"retry budget must be >= 1, got {self.budget}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"task deadline must be > 0, got {self.deadline}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_base > 0 and self.backoff_max < self.backoff_base:
            raise ValueError("need backoff_base <= backoff_max")
        if not (0.0 <= self.jitter < 1.0):
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    @property
    def bounded(self) -> bool:
        """True when some rule can ever quarantine a task."""
        return self.budget is not None or self.deadline is not None


@dataclass(frozen=True)
class CircuitBreakerConfig:
    """Degraded-mode fallback over the recent failed-allocation rate.

    Attributes
    ----------
    enabled:
        Off by default; the breaker adds no behaviour when disabled.
    window:
        Number of recent attempt outcomes (success / exhausted) the
        failure rate is computed over; the breaker only trips once the
        window is full, so a single early failure cannot open it.
    failure_threshold:
        Failed fraction of the window at or above which the breaker
        opens.
    cooldown:
        Simulation-clock seconds the breaker stays open before
        half-opening to probe.
    half_open_probes:
        Consecutive successful attempts required in half-open state to
        close again; one failure re-opens immediately.
    """

    enabled: bool = False
    window: int = 20
    failure_threshold: float = 0.5
    cooldown: float = 600.0
    half_open_probes: int = 3

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"breaker window must be >= 1, got {self.window}")
        if not (0.0 < self.failure_threshold <= 1.0):
            raise ValueError(
                f"failure_threshold must be in (0, 1], got {self.failure_threshold}"
            )
        if self.cooldown <= 0:
            raise ValueError(f"cooldown must be > 0, got {self.cooldown}")
        if self.half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}"
            )


@dataclass(frozen=True)
class WatchdogConfig:
    """No-forward-progress detection.

    ``window`` is the simulation-clock grace period: if that much time
    passes with unfinished tasks outstanding and not a single completion
    or quarantine, the watchdog declares a stall.  Each stall is counted
    and (when a breaker is configured) forces it open — degraded mode —
    so the run sheds its misbehaving predictions instead of spinning.
    """

    enabled: bool = False
    window: float = 3600.0

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError(f"watchdog window must be > 0, got {self.window}")


@dataclass(frozen=True)
class ResilienceConfig:
    """The full task-resilience policy of one simulated run."""

    retry: RetryPolicyConfig = field(default_factory=RetryPolicyConfig)
    breaker: CircuitBreakerConfig = field(default_factory=CircuitBreakerConfig)
    watchdog: WatchdogConfig = field(default_factory=WatchdogConfig)

    @property
    def quarantine_enabled(self) -> bool:
        return self.retry.bounded

    @property
    def enabled(self) -> bool:
        """False for the default config: a no-op engine is never built."""
        return (
            self.retry.bounded
            or self.retry.backoff_base > 0
            or self.breaker.enabled
            or self.watchdog.enabled
        )


# ---------------------------------------------------------------------------
# Retry decisions
# ---------------------------------------------------------------------------


class RetryAction(enum.Enum):
    """What the policy engine tells the manager to do with a failure."""

    RETRY = "retry"
    QUARANTINE = "quarantine"


@dataclass(frozen=True)
class RetryDecision:
    """One policy verdict: retry (after ``delay`` seconds) or give up."""

    action: RetryAction
    delay: float = 0.0
    reason: str = ""

    @property
    def retry(self) -> bool:
        return self.action is RetryAction.RETRY


# ---------------------------------------------------------------------------
# Dead-letter ledger
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DeadLetterEntry:
    """One quarantined task: who, when, why, and what it burned."""

    task_id: int
    category: str
    reason: str
    time: float
    n_attempts: int
    n_exhausted: int
    n_evicted: int

    def state_dict(self) -> dict:
        return {
            "task_id": self.task_id,
            "category": self.category,
            "reason": self.reason,
            "time": self.time,
            "n_attempts": self.n_attempts,
            "n_exhausted": self.n_exhausted,
            "n_evicted": self.n_evicted,
        }

    @classmethod
    def from_state(cls, state: dict) -> "DeadLetterEntry":
        return cls(
            task_id=int(state["task_id"]),
            category=str(state["category"]),
            reason=str(state["reason"]),
            time=float(state["time"]),
            n_attempts=int(state["n_attempts"]),
            n_exhausted=int(state["n_exhausted"]),
            n_evicted=int(state["n_evicted"]),
        )


class DeadLetterLedger:
    """Append-only record of quarantined tasks, in quarantine order."""

    def __init__(self) -> None:
        self._entries: List[DeadLetterEntry] = []

    def append(self, entry: DeadLetterEntry) -> None:
        self._entries.append(entry)

    def entries(self) -> Tuple[DeadLetterEntry, ...]:
        return tuple(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, task_id: int) -> bool:
        return any(e.task_id == task_id for e in self._entries)

    def by_reason(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for entry in self._entries:
            counts[entry.reason] = counts.get(entry.reason, 0) + 1
        return counts

    def state_dict(self) -> dict:
        return {"entries": [e.state_dict() for e in self._entries]}

    def load_state(self, state: dict) -> None:
        self._entries = [DeadLetterEntry.from_state(doc) for doc in state["entries"]]

    def __repr__(self) -> str:
        return f"DeadLetterLedger(n={len(self._entries)})"


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------


class BreakerState(enum.Enum):
    """The classic three-state breaker."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure-rate breaker switching the allocator into degraded mode.

    *Closed* — normal operation; a sliding window of recent attempt
    outcomes is maintained, and when the window is full with a failed
    fraction at or above the threshold the breaker *opens*.

    *Open* — the manager allocates conservatively (whole machine)
    instead of consulting the algorithm.  After ``cooldown`` simulated
    seconds the breaker *half-opens*.

    *Half-open* — normal predictions are probed; ``half_open_probes``
    consecutive successes close the breaker (window cleared for a fresh
    start), a single failure re-opens it (a new cooldown begins).

    Every transition bumps :attr:`epoch`, which the manager mixes into
    the scheduler's allocation-version cookie so queued predictions go
    stale the moment the mode flips.
    """

    def __init__(self, config: CircuitBreakerConfig) -> None:
        self._config = config
        self._state = BreakerState.CLOSED
        #: 1 = failed (exhausted), 0 = success; newest last.
        self._window: List[int] = []
        self._opened_at = 0.0
        self._probe_successes = 0
        self.trips = 0
        self.epoch = 0

    @property
    def config(self) -> CircuitBreakerConfig:
        return self._config

    def state(self, now: float) -> BreakerState:
        """Current state, applying a due open -> half-open transition."""
        if (
            self._state is BreakerState.OPEN
            and now - self._opened_at >= self._config.cooldown
        ):
            self._state = BreakerState.HALF_OPEN
            self._probe_successes = 0
            self.epoch += 1
        return self._state

    def conservative(self, now: float) -> bool:
        """Whether allocations should bypass the algorithm right now."""
        return self.state(now) is BreakerState.OPEN

    def record_outcome(self, success: bool, now: float) -> None:
        """Feed one attempt outcome (success or exhaustion) in."""
        state = self.state(now)
        if state is BreakerState.HALF_OPEN:
            if success:
                self._probe_successes += 1
                if self._probe_successes >= self._config.half_open_probes:
                    self._state = BreakerState.CLOSED
                    self._window.clear()
                    self.epoch += 1
            else:
                self._trip(now)
            return
        self._window.append(0 if success else 1)
        if len(self._window) > self._config.window:
            self._window.pop(0)
        if (
            state is BreakerState.CLOSED
            and len(self._window) >= self._config.window
            and sum(self._window) / len(self._window) >= self._config.failure_threshold
        ):
            self._trip(now)

    def force_open(self, now: float) -> None:
        """Degraded-mode trigger (the watchdog's stall response)."""
        if self.state(now) is not BreakerState.OPEN:
            self._trip(now)

    def _trip(self, now: float) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = now
        self._probe_successes = 0
        self.trips += 1
        self.epoch += 1

    def state_dict(self) -> dict:
        return {
            "state": self._state.value,
            "window": list(self._window),
            "opened_at": self._opened_at,
            "probe_successes": self._probe_successes,
            "trips": self.trips,
            "epoch": self.epoch,
        }

    def load_state(self, state: dict) -> None:
        self._state = BreakerState(state["state"])
        self._window = [int(v) for v in state["window"]]
        self._opened_at = float(state["opened_at"])
        self._probe_successes = int(state["probe_successes"])
        self.trips = int(state["trips"])
        self.epoch = int(state["epoch"])

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self._state.value}, trips={self.trips}, "
            f"window={sum(self._window)}/{len(self._window)})"
        )


# ---------------------------------------------------------------------------
# Stall watchdog
# ---------------------------------------------------------------------------


class StallWatchdog:
    """Detects no-forward-progress windows from the post-event hook.

    Progress is a completion or a quarantine; ``check`` is called after
    every engine event with whether unfinished work remains.  When the
    grace window elapses without progress while work is outstanding —
    which covers both stall shapes, all-workers-idle-with-a-queue and
    retry-loops-with-zero-completions — the stall is latched (counted
    once per episode) until progress resumes.
    """

    def __init__(self, config: WatchdogConfig) -> None:
        self._config = config
        self._last_progress = 0.0
        self._stalled = False
        self.stalls = 0

    @property
    def config(self) -> WatchdogConfig:
        return self._config

    @property
    def stalled(self) -> bool:
        return self._stalled

    def progress(self, now: float) -> None:
        """A task completed or was quarantined: the run is moving."""
        self._last_progress = now
        self._stalled = False

    def check(self, now: float, work_outstanding: bool) -> bool:
        """Returns True exactly when a new stall episode is detected."""
        if not work_outstanding:
            self._last_progress = now
            self._stalled = False
            return False
        if self._stalled:
            return False
        if now - self._last_progress >= self._config.window:
            self._stalled = True
            self.stalls += 1
            return True
        return False

    def state_dict(self) -> dict:
        return {
            "last_progress": self._last_progress,
            "stalled": self._stalled,
            "stalls": self.stalls,
        }

    def load_state(self, state: dict) -> None:
        self._last_progress = float(state["last_progress"])
        self._stalled = bool(state["stalled"])
        self.stalls = int(state["stalls"])

    def __repr__(self) -> str:
        return f"StallWatchdog(stalls={self.stalls}, stalled={self._stalled})"


# ---------------------------------------------------------------------------
# Stats & engine
# ---------------------------------------------------------------------------


@dataclass
class ResilienceStats:
    """What the resilience layer actually did during one run."""

    quarantined: int = 0
    breaker_trips: int = 0
    watchdog_stalls: int = 0
    backoff_requeues: int = 0
    capacity_clamps: int = 0

    def total_interventions(self) -> int:
        return (
            self.quarantined
            + self.breaker_trips
            + self.watchdog_stalls
            + self.backoff_requeues
        )


class ResilienceEngine:
    """The policy engine the manager consults on every requeue.

    Owns the retry bookkeeping (exhaustion counts, first-seen times),
    the jitter RNG, the dead-letter ledger, and — when enabled — the
    breaker and the watchdog.  Deliberately workflow- and
    simulator-agnostic: the manager passes plain facts (task id,
    category, cause, clock) and acts on the returned decision.
    """

    def __init__(self, config: ResilienceConfig) -> None:
        self._config = config
        self._rng = np.random.default_rng(config.retry.seed)
        self._exhaustions: Dict[int, int] = {}
        self._failures: Dict[int, int] = {}
        self._first_seen: Dict[int, float] = {}
        self._requeues: Dict[int, int] = {}
        self.dead_letters = DeadLetterLedger()
        self.breaker: Optional[CircuitBreaker] = (
            CircuitBreaker(config.breaker) if config.breaker.enabled else None
        )
        self.watchdog: Optional[StallWatchdog] = (
            StallWatchdog(config.watchdog) if config.watchdog.enabled else None
        )
        self._backoff_requeues = 0

    @property
    def config(self) -> ResilienceConfig:
        return self._config

    # -- lifecycle facts from the manager ---------------------------------------

    def note_enqueued(self, task_id: int, now: float) -> None:
        """First time a task becomes ready (starts its deadline clock)."""
        self._first_seen.setdefault(task_id, now)

    def exhaustions_of(self, task_id: int) -> int:
        return self._exhaustions.get(task_id, 0)

    def deadline_exceeded(self, task_id: int, now: float) -> bool:
        """Deadline-only probe for paths with their own retry machinery.

        The transient dispatch-fault path keeps the fault injector's
        backoff (a lost submission says nothing about the allocation's
        adequacy and must not charge the budget or draw jitter), but a
        task past its deadline is still quarantined there.
        """
        deadline = self._config.retry.deadline
        if deadline is None:
            return False
        return now - self._first_seen.get(task_id, now) >= deadline

    # -- the decision -----------------------------------------------------------

    def on_requeue(self, task_id: int, cause: str, now: float) -> RetryDecision:
        """Decide one failed attempt's fate: retry (+delay) or quarantine.

        ``cause`` is the manager's requeue path: ``"exhausted"``,
        ``"worker_lost"``, ``"degraded"`` or ``"fault_kill"``.  The
        budget compares against the task's exhausted-attempt count
        (every failure when ``count_evictions`` is set); the deadline
        compares the clock against the task's first-ready time.
        """
        retry = self._config.retry
        if cause == "exhausted":
            self._exhaustions[task_id] = self._exhaustions.get(task_id, 0) + 1
        self._failures[task_id] = self._failures.get(task_id, 0) + 1
        if retry.budget is not None:
            charged = (
                self._failures if retry.count_evictions else self._exhaustions
            ).get(task_id, 0)
            if charged >= retry.budget:
                return RetryDecision(
                    RetryAction.QUARANTINE, reason="retry_budget_exceeded"
                )
        if retry.deadline is not None:
            first = self._first_seen.get(task_id, now)
            if now - first >= retry.deadline:
                return RetryDecision(RetryAction.QUARANTINE, reason="deadline_exceeded")
        self._requeues[task_id] = self._requeues.get(task_id, 0) + 1
        return RetryDecision(RetryAction.RETRY, delay=self._backoff(task_id))

    def _backoff(self, task_id: int) -> float:
        retry = self._config.retry
        if retry.backoff_base <= 0:
            return 0.0
        k = self._requeues.get(task_id, 1)
        delay = min(retry.backoff_max, retry.backoff_base * retry.backoff_factor ** (k - 1))
        if retry.jitter > 0:
            delay *= 1.0 + retry.jitter * float(self._rng.uniform(-1.0, 1.0))
        self._backoff_requeues += 1
        return delay

    # -- quarantine bookkeeping --------------------------------------------------

    def quarantine(
        self,
        task_id: int,
        category: str,
        reason: str,
        now: float,
        n_attempts: int,
        n_exhausted: int,
        n_evicted: int,
    ) -> DeadLetterEntry:
        entry = DeadLetterEntry(
            task_id=task_id,
            category=category,
            reason=reason,
            time=now,
            n_attempts=n_attempts,
            n_exhausted=n_exhausted,
            n_evicted=n_evicted,
        )
        self.dead_letters.append(entry)
        if self.watchdog is not None:
            self.watchdog.progress(now)
        return entry

    # -- breaker / watchdog passthroughs -----------------------------------------

    def record_outcome(self, success: bool, now: float) -> None:
        if self.breaker is not None:
            self.breaker.record_outcome(success, now)

    def conservative_mode(self, now: float) -> bool:
        return self.breaker is not None and self.breaker.conservative(now)

    def allocation_epoch(self, now: float) -> int:
        """Cookie mixed into the scheduler's allocation version."""
        if self.breaker is None:
            return 0
        self.breaker.state(now)  # apply a due open -> half-open flip
        return self.breaker.epoch

    def note_progress(self, now: float) -> None:
        if self.watchdog is not None:
            self.watchdog.progress(now)

    def check_stall(self, now: float, work_outstanding: bool) -> bool:
        """Post-event stall probe; forces the breaker open on a stall."""
        if self.watchdog is None:
            return False
        stalled = self.watchdog.check(now, work_outstanding)
        if stalled and self.breaker is not None:
            self.breaker.force_open(now)
        return stalled

    # -- stats & checkpointing ----------------------------------------------------

    def stats(self, capacity_clamps: int = 0) -> ResilienceStats:
        return ResilienceStats(
            quarantined=len(self.dead_letters),
            breaker_trips=self.breaker.trips if self.breaker is not None else 0,
            watchdog_stalls=self.watchdog.stalls if self.watchdog is not None else 0,
            backoff_requeues=self._backoff_requeues,
            capacity_clamps=capacity_clamps,
        )

    def state_dict(self) -> dict:
        """JSON-safe snapshot of all mutable policy state (bit-exact).

        Replay-based resume rebuilds this state by re-running events,
        so the snapshot's role is *verification*: the checkpointer
        digests it on save and after replay, refusing any divergence —
        including in quarantine decisions and jitter-stream position.
        """
        return {
            "rng": generator_state(self._rng),
            "exhaustions": {str(k): v for k, v in self._exhaustions.items()},
            "failures": {str(k): v for k, v in self._failures.items()},
            "first_seen": {str(k): v for k, v in self._first_seen.items()},
            "requeues": {str(k): v for k, v in self._requeues.items()},
            "backoff_requeues": self._backoff_requeues,
            "dead_letters": self.dead_letters.state_dict(),
            "breaker": self.breaker.state_dict() if self.breaker is not None else None,
            "watchdog": (
                self.watchdog.state_dict() if self.watchdog is not None else None
            ),
        }

    def load_state(self, state: dict) -> None:
        restore_generator(self._rng, state["rng"])
        self._exhaustions = {int(k): int(v) for k, v in state["exhaustions"].items()}
        self._failures = {int(k): int(v) for k, v in state["failures"].items()}
        self._first_seen = {int(k): float(v) for k, v in state["first_seen"].items()}
        self._requeues = {int(k): int(v) for k, v in state["requeues"].items()}
        self._backoff_requeues = int(state["backoff_requeues"])
        self.dead_letters.load_state(state["dead_letters"])
        if self.breaker is not None and state["breaker"] is not None:
            self.breaker.load_state(state["breaker"])
        if self.watchdog is not None and state["watchdog"] is not None:
            self.watchdog.load_state(state["watchdog"])

    def __repr__(self) -> str:
        return (
            f"ResilienceEngine(dead_letters={len(self.dead_letters)}, "
            f"breaker={self.breaker!r}, watchdog={self.watchdog!r})"
        )
