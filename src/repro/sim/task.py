"""Simulated task lifecycle and attempt history.

A :class:`SimTask` wraps a :class:`~repro.workflows.spec.TaskSpec` with
everything the manager needs at runtime: its state, the allocation of
the current attempt, and the full attempt history that the accounting
ledger later folds into the waste/AWE metrics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.resources import Resource, ResourceVector
from repro.workflows.spec import TaskSpec

__all__ = ["TaskState", "AttemptOutcome", "Attempt", "SimTask"]


class TaskState(enum.Enum):
    """Lifecycle of a simulated task."""

    PENDING = "pending"        # waiting on dependencies
    READY = "ready"            # dependencies met, waiting for dispatch
    RUNNING = "running"        # placed on a worker
    COMPLETED = "completed"    # final attempt succeeded
    QUARANTINED = "quarantined"  # gave up: moved to the dead-letter ledger


class AttemptOutcome(enum.Enum):
    """How one placement of a task on a worker ended."""

    SUCCESS = "success"
    EXHAUSTED = "exhausted"    # killed for over-consuming its allocation
    EVICTED = "evicted"        # lost with its (opportunistic) worker


@dataclass(frozen=True)
class Attempt:
    """One completed placement of a task on a worker.

    ``runtime`` is the wall time the attempt actually held its
    allocation (the ``t_i`` of the failed-allocation waste term);
    ``observed`` is the peak consumption the monitor recorded.
    """

    index: int
    worker_id: int
    allocation: ResourceVector
    start_time: float
    runtime: float
    outcome: AttemptOutcome
    observed: ResourceVector
    exhausted: Tuple[Resource, ...] = ()

    def __post_init__(self) -> None:
        if self.runtime < 0:
            raise ValueError(f"attempt runtime must be >= 0, got {self.runtime}")
        if self.outcome is AttemptOutcome.EXHAUSTED and not self.exhausted:
            raise ValueError("EXHAUSTED attempts must name the exhausted resources")
        if self.outcome is not AttemptOutcome.EXHAUSTED and self.exhausted:
            raise ValueError(f"{self.outcome} attempts cannot have exhausted resources")

    @property
    def end_time(self) -> float:
        return self.start_time + self.runtime


class SimTask:
    """Runtime wrapper around a task spec."""

    __slots__ = (
        "spec",
        "state",
        "attempts",
        "current_allocation",
        "pending_dependencies",
        "ready_time",
        "completion_time",
    )

    def __init__(self, spec: TaskSpec) -> None:
        self.spec = spec
        self.state = TaskState.PENDING if spec.dependencies else TaskState.READY
        self.attempts: List[Attempt] = []
        #: Allocation to use for the next dispatch (set by the manager on
        #: first dispatch and after every exhaustion retry; preserved
        #: across evictions).
        self.current_allocation: Optional[ResourceVector] = None
        self.pending_dependencies = set(spec.dependencies)
        self.ready_time: Optional[float] = 0.0 if not spec.dependencies else None
        self.completion_time: Optional[float] = None

    # -- identity passthroughs ----------------------------------------------------

    @property
    def task_id(self) -> int:
        return self.spec.task_id

    @property
    def category(self) -> str:
        return self.spec.category

    # -- lifecycle ------------------------------------------------------------------

    def dependency_completed(self, dep_id: int, now: float) -> bool:
        """Mark a dependency done; True if the task just became ready."""
        self.pending_dependencies.discard(dep_id)
        if self.state is TaskState.PENDING and not self.pending_dependencies:
            self.state = TaskState.READY
            self.ready_time = now
            return True
        return False

    def record_attempt(self, attempt: Attempt) -> None:
        if attempt.index != len(self.attempts):
            raise ValueError(
                f"attempt index {attempt.index} out of order "
                f"(expected {len(self.attempts)})"
            )
        self.attempts.append(attempt)

    @property
    def n_attempts(self) -> int:
        return len(self.attempts)

    @property
    def n_exhausted_attempts(self) -> int:
        return sum(1 for a in self.attempts if a.outcome is AttemptOutcome.EXHAUSTED)

    @property
    def n_evicted_attempts(self) -> int:
        return sum(1 for a in self.attempts if a.outcome is AttemptOutcome.EVICTED)

    def final_attempt(self) -> Attempt:
        if self.state is not TaskState.COMPLETED or not self.attempts:
            raise RuntimeError(f"task {self.task_id} has not completed")
        return self.attempts[-1]

    def __repr__(self) -> str:
        return (
            f"SimTask(id={self.task_id}, cat={self.category!r}, "
            f"state={self.state.value}, attempts={len(self.attempts)})"
        )
