"""Deterministic fault injection for the simulator.

The paper's premise is allocation under adversity: workers are
opportunistic ("joining and leaving the worker pool over time",
Section II-C) and tasks are killed the moment they overrun an
allocation (Section II-B, assumption 4).  The stochastic churn model in
:mod:`repro.sim.pool` exercises the benign version of that adversity;
this module injects the hostile version, on purpose and reproducibly:

* **Worker preemption** — the batch system reclaims a pilot outright.
  Three schedules: :class:`FixedPreemptions` (explicit times),
  :class:`PoissonPreemptions` (seeded exponential gaps), and
  :class:`TracePreemptions` (replay a recorded ``(time, worker_id)``
  trace).
* **Mid-task kills** — a running task dies without its worker (node
  flakiness, OOM-killer collateral, operator action).  The attempt is
  accounted exactly like an eviction: it says nothing about the
  allocation's adequacy, so the task retries with the same allocation.
* **Transient dispatch failures** — placing a task on a worker fails
  spuriously (lost message, container start failure); the manager
  re-queues the task and retries after exponential backoff.
* **Capacity degradation** — a worker shrinks *under* the tasks it
  hosts (partial reclaim); tasks that no longer fit are evicted.

Every fault is an event-engine closure drawing from one injector-owned
``numpy`` generator, so the existing determinism guarantee carries
over: the same seeds replay the same faults, byte for byte.  The
injector protects the ``min_survivors`` lowest-numbered alive workers
from preemption and degradation so a fault schedule can be adversarial
without being unwinnable — with pool churn disabled, at least that many
full-capacity workers survive the whole run.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.core.resources import ResourceVector
from repro.sim.engine import SimulationEngine
from repro.sim.pool import WorkerPool

__all__ = [
    "FixedPreemptions",
    "PoissonPreemptions",
    "TracePreemptions",
    "TaskKillConfig",
    "DispatchFaultConfig",
    "DegradationConfig",
    "FaultConfig",
    "FaultStats",
    "FaultInjector",
    "FAULT_PROFILES",
    "make_fault_config",
    "parse_htcondor_eviction_log",
]


@dataclass(frozen=True)
class FixedPreemptions:
    """Preempt one (injector-chosen) worker at each listed time."""

    times: Tuple[float, ...]

    def __post_init__(self) -> None:
        if any(t < 0 for t in self.times):
            raise ValueError("preemption times must be >= 0")


@dataclass(frozen=True)
class PoissonPreemptions:
    """Memoryless preemptions: exponential gaps with the given rate.

    ``rate`` is events per simulated second; ``until`` optionally stops
    the process (``None`` keeps it running until the workflow ends).
    """

    rate: float
    until: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"preemption rate must be positive, got {self.rate}")


@dataclass(frozen=True)
class TracePreemptions:
    """Replay a recorded preemption trace of ``(time, worker_id)``.

    Entries naming a worker that is already gone are counted as
    suppressed, matching what replaying a real batch-system log against
    a diverged simulation would do.
    """

    events: Tuple[Tuple[float, int], ...]

    def __post_init__(self) -> None:
        if any(t < 0 for t, _ in self.events):
            raise ValueError("trace times must be >= 0")


PreemptionSchedule = Union[FixedPreemptions, PoissonPreemptions, TracePreemptions]


@dataclass(frozen=True)
class TaskKillConfig:
    """Poisson process of mid-task kills.

    At each event one running (non-immune) task is killed and requeued
    with its allocation unchanged.  ``max_kills_per_task`` bounds the
    adversary so every workflow still terminates: after that many
    fault kills a task becomes immune.
    """

    rate: float
    until: Optional[float] = None
    max_kills_per_task: int = 5

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"kill rate must be positive, got {self.rate}")
        if self.max_kills_per_task < 1:
            raise ValueError("max_kills_per_task must be >= 1")


@dataclass(frozen=True)
class DispatchFaultConfig:
    """Transient dispatch failures with exponential retry backoff.

    Each dispatch attempt independently fails with ``probability``; the
    manager re-queues the task and waits ``backoff * factor**k`` seconds
    (capped at ``max_backoff``) where ``k`` counts the task's previous
    dispatch faults.  ``max_faults_per_task`` makes a task immune after
    that many failures, bounding the adversary.
    """

    probability: float
    backoff: float = 5.0
    factor: float = 2.0
    max_backoff: float = 300.0
    max_faults_per_task: int = 8

    def __post_init__(self) -> None:
        if not (0.0 < self.probability < 1.0):
            raise ValueError(
                f"dispatch fault probability must be in (0, 1), got {self.probability}"
            )
        if self.backoff <= 0 or self.max_backoff < self.backoff:
            raise ValueError("need 0 < backoff <= max_backoff")
        if self.factor < 1.0:
            raise ValueError(f"backoff factor must be >= 1, got {self.factor}")
        if self.max_faults_per_task < 1:
            raise ValueError("max_faults_per_task must be >= 1")


@dataclass(frozen=True)
class DegradationConfig:
    """Poisson process of in-place capacity reclaims.

    At each event one (non-protected) worker's capacity is multiplied by
    ``factor``; ``floor_fraction`` of the original capacity is the hard
    lower bound, so repeated degradations converge instead of shrinking
    a worker to nothing.
    """

    rate: float
    factor: float = 0.5
    floor_fraction: float = 0.25
    until: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"degradation rate must be positive, got {self.rate}")
        if not (0.0 < self.factor < 1.0):
            raise ValueError(f"degradation factor must be in (0, 1), got {self.factor}")
        if not (0.0 < self.floor_fraction <= 1.0):
            raise ValueError(
                f"floor_fraction must be in (0, 1], got {self.floor_fraction}"
            )


@dataclass(frozen=True)
class FaultConfig:
    """Everything the injector may do to one run, and with which seed."""

    preemption: Optional[PreemptionSchedule] = None
    kills: Optional[TaskKillConfig] = None
    dispatch: Optional[DispatchFaultConfig] = None
    degradation: Optional[DegradationConfig] = None
    seed: int = 0
    #: Number of lowest-id alive workers shielded from preemption and
    #: degradation.  With churn disabled this many full-capacity
    #: workers are guaranteed to survive, so every workflow that fits a
    #: worker still completes under any fault schedule.
    min_survivors: int = 1

    def __post_init__(self) -> None:
        if self.min_survivors < 0:
            raise ValueError(f"min_survivors must be >= 0, got {self.min_survivors}")

    @property
    def enabled(self) -> bool:
        return any(
            f is not None
            for f in (self.preemption, self.kills, self.dispatch, self.degradation)
        )


@dataclass
class FaultStats:
    """What the injector actually did during one run."""

    preemptions: int = 0
    task_kills: int = 0
    dispatch_faults: int = 0
    degradations: int = 0
    #: Events that fired but found no eligible victim.
    suppressed: int = 0

    def total(self) -> int:
        return (
            self.preemptions + self.task_kills + self.dispatch_faults + self.degradations
        )


class FaultInjector:
    """Drives one :class:`FaultConfig` through the event engine.

    The manager constructs the injector alongside the pool and provides
    two hooks: ``running_tasks`` (current killable task ids) and
    ``kill_task`` (terminate one running attempt as a fault).  All
    fault randomness comes from the injector's own generator, separate
    from the pool's churn RNG and the allocator's RNG, so adding or
    removing faults never perturbs the other stochastic processes.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        pool: WorkerPool,
        config: FaultConfig,
        running_tasks: Callable[[], Tuple[int, ...]],
        kill_task: Callable[[int], bool],
    ) -> None:
        self._engine = engine
        self._pool = pool
        self._config = config
        self._running_tasks = running_tasks
        self._kill_task = kill_task
        self._rng = np.random.default_rng(config.seed)
        self._stopped = False
        self._kills_per_task: Dict[int, int] = {}
        self._dispatch_faults_per_task: Dict[int, int] = {}
        self._original_capacity: Dict[int, ResourceVector] = {}
        self.stats = FaultStats()
        self._schedule_all()

    @property
    def config(self) -> FaultConfig:
        return self._config

    def rng_state(self) -> dict:
        """JSON-safe snapshot of the fault RNG (checkpointing)."""
        from repro.checkpoint import generator_state

        return generator_state(self._rng)

    def stop(self) -> None:
        """Stop generating fault events so the queue can drain."""
        self._stopped = True

    # -- scheduling ---------------------------------------------------------------

    def _schedule_all(self) -> None:
        cfg = self._config
        if isinstance(cfg.preemption, FixedPreemptions):
            for time in cfg.preemption.times:
                self._engine.schedule_at(time, self._preempt_random)
        elif isinstance(cfg.preemption, TracePreemptions):
            for time, worker_id in cfg.preemption.events:
                self._engine.schedule_at(
                    time, lambda wid=worker_id: self._preempt_specific(wid)
                )
        elif isinstance(cfg.preemption, PoissonPreemptions):
            self._arm(cfg.preemption.rate, cfg.preemption.until, self._preempt_random)
        if cfg.kills is not None:
            self._arm(cfg.kills.rate, cfg.kills.until, self._kill_random)
        if cfg.degradation is not None:
            self._arm(cfg.degradation.rate, cfg.degradation.until, self._degrade_random)

    def _arm(
        self, rate: float, until: Optional[float], action: Callable[[], None]
    ) -> None:
        """Self-rescheduling Poisson process, stopped by :meth:`stop`."""
        delay = float(self._rng.exponential(1.0 / rate))
        deadline = until

        def fire() -> None:
            if self._stopped:
                return
            if deadline is not None and self._engine.now > deadline:
                return
            action()
            self._arm(rate, deadline, action)

        self._engine.schedule(delay, fire)

    # -- victim selection --------------------------------------------------------------

    def _eligible_workers(self) -> List[int]:
        """Alive worker ids minus the protected survivors (lowest ids)."""
        alive = sorted(w.worker_id for w in self._pool.alive_workers())
        return alive[self._config.min_survivors:]

    # -- fault actions ------------------------------------------------------------------

    def _preempt_random(self) -> None:
        if self._stopped:
            return
        eligible = self._eligible_workers()
        if not eligible:
            self.stats.suppressed += 1
            return
        victim = int(self._rng.choice(eligible))
        if self._pool.preempt_worker(victim):
            self.stats.preemptions += 1
        else:  # pragma: no cover - eligible workers are alive by construction
            self.stats.suppressed += 1

    def _preempt_specific(self, worker_id: int) -> None:
        if self._stopped:
            return
        if self._pool.preempt_worker(worker_id):
            self.stats.preemptions += 1
        else:
            self.stats.suppressed += 1

    def _kill_random(self) -> None:
        assert self._config.kills is not None
        limit = self._config.kills.max_kills_per_task
        killable = [
            t
            for t in sorted(self._running_tasks())
            if self._kills_per_task.get(t, 0) < limit
        ]
        if not killable:
            self.stats.suppressed += 1
            return
        victim = int(self._rng.choice(killable))
        if self._kill_task(victim):
            self._kills_per_task[victim] = self._kills_per_task.get(victim, 0) + 1
            self.stats.task_kills += 1
        else:  # pragma: no cover - victims come from running_tasks()
            self.stats.suppressed += 1

    def _degrade_random(self) -> None:
        cfg = self._config.degradation
        assert cfg is not None
        eligible = self._eligible_workers()
        if not eligible:
            self.stats.suppressed += 1
            return
        victim = int(self._rng.choice(eligible))
        worker = self._pool.worker(victim)
        original = self._original_capacity.setdefault(victim, worker.capacity)
        floor = original * cfg.floor_fraction
        target = (worker.capacity * cfg.factor).componentwise_max(floor)
        if target == worker.capacity:
            self.stats.suppressed += 1
            return
        if self._pool.degrade_worker(victim, target):
            self.stats.degradations += 1

    # -- dispatch-failure hook (called by the manager) ---------------------------------

    def dispatch_fault_delay(self, task_id: int) -> Optional[float]:
        """Whether this dispatch attempt fails; the retry backoff if so.

        Returns ``None`` when the dispatch proceeds normally.  The
        backoff grows exponentially in the task's previous dispatch
        faults and the stats counter is bumped on every failure.
        """
        cfg = self._config.dispatch
        if cfg is None or self._stopped:
            return None
        failures = self._dispatch_faults_per_task.get(task_id, 0)
        if failures >= cfg.max_faults_per_task:
            return None
        if float(self._rng.random()) >= cfg.probability:
            return None
        self._dispatch_faults_per_task[task_id] = failures + 1
        self.stats.dispatch_faults += 1
        return min(cfg.max_backoff, cfg.backoff * cfg.factor**failures)

    def __repr__(self) -> str:
        return f"FaultInjector(stats={self.stats!r}, stopped={self._stopped})"


#: Named presets for the CLI and the robustness experiments.  ``rate``
#: scales the Poisson processes; the per-process rates below are the
#: fractions of it each fault class receives.
FAULT_PROFILES: Tuple[str, ...] = ("none", "fixed", "poisson", "trace", "chaos")

# HTCondor job event log header, e.g.
#   ``004 (7858.000.000) 07/10 14:23:17 Job was evicted.``
# Event code 004 is "Job was evicted"; everything else (submission,
# execution, termination, image-size updates...) is ignored, as are the
# indented detail lines and the ``...`` block terminators.
_CONDOR_EVENT_RE = re.compile(
    r"^(?P<code>\d{3})\s+"
    r"\((?P<cluster>\d+)\.(?P<proc>\d+)\.(?P<sub>\d+)\)\s+"
    r"(?P<month>\d{2})/(?P<day>\d{2})\s+"
    r"(?P<hour>\d{2}):(?P<minute>\d{2}):(?P<second>\d{2})\b"
)

# Cumulative days before each month in a non-leap year; HTCondor user
# logs carry no year, so day-of-year arithmetic is the best available.
_DAYS_BEFORE_MONTH = (0, 0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334)


def parse_htcondor_eviction_log(
    source: Union[str, Path, Iterable[str]],
) -> TracePreemptions:
    """Extract a preemption schedule from an HTCondor job event log.

    Reads a standard HTCondor user log (the ``log = ...`` file of a
    submit description), keeps the eviction events (code ``004``) and
    maps them onto the simulator:

    * **time** — seconds since the *first eviction* in the log (the
      simulation clock starts at 0, not at wall-clock submission time);
    * **worker id** — HTCondor job ids ``cluster.proc`` are assigned
      simulator worker ids 0, 1, 2... in order of first appearance
      among the evictions, matching the pool's spawn-order ids.

    ``source`` is a path or an iterable of lines.  Raises
    ``ValueError`` when the log contains no eviction or its timestamps
    go backwards (a year rollover mid-log — out of scope for fixtures).
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return parse_htcondor_eviction_log(list(handle))

    raw: List[Tuple[float, Tuple[int, int]]] = []
    for line in source:
        match = _CONDOR_EVENT_RE.match(line)
        if match is None or match.group("code") != "004":
            continue
        month = int(match.group("month"))
        if not (1 <= month <= 12):
            raise ValueError(f"bad month in eviction log line: {line.rstrip()!r}")
        stamp = (
            (_DAYS_BEFORE_MONTH[month] + int(match.group("day")) - 1) * 86400.0
            + int(match.group("hour")) * 3600.0
            + int(match.group("minute")) * 60.0
            + int(match.group("second"))
        )
        job = (int(match.group("cluster")), int(match.group("proc")))
        raw.append((stamp, job))

    if not raw:
        raise ValueError("eviction log contains no eviction (004) events")
    origin = raw[0][0]
    worker_ids: Dict[Tuple[int, int], int] = {}
    events: List[Tuple[float, int]] = []
    for stamp, job in raw:
        if stamp < origin:
            raise ValueError(
                "eviction log timestamps go backwards (year rollover?); "
                "split the log at the wrap"
            )
        if job not in worker_ids:
            worker_ids[job] = len(worker_ids)
        events.append((stamp - origin, worker_ids[job]))
    return TracePreemptions(events=tuple(events))


def make_fault_config(
    profile: str,
    rate: float = 1.0 / 600.0,
    seed: int = 0,
    min_survivors: int = 1,
    trace_file: Optional[Union[str, Path]] = None,
) -> Optional[FaultConfig]:
    """Build one of the named fault profiles.

    Parameters
    ----------
    profile:
        ``"none"`` (returns ``None``), ``"fixed"`` (six evenly spaced
        preemptions over the first hour), ``"poisson"`` (memoryless
        preemptions + mid-task kills + transient dispatch failures),
        ``"trace"`` (replay a preemption trace — an HTCondor eviction
        log via ``trace_file``, or a small built-in schedule), or
        ``"chaos"`` (everything, including capacity degradation).
    rate:
        Events per simulated second for the Poisson processes (default:
        one per ten minutes).
    trace_file:
        HTCondor user log parsed with
        :func:`parse_htcondor_eviction_log`; only meaningful with the
        ``"trace"`` profile (rejected elsewhere so a typo'd profile
        cannot silently drop a real trace).
    """
    if trace_file is not None and profile != "trace":
        raise ValueError(
            f"trace_file is only valid with the 'trace' profile, not {profile!r}"
        )
    if profile == "none":
        return None
    if profile == "fixed":
        return FaultConfig(
            preemption=FixedPreemptions(
                times=tuple(600.0 * k for k in range(1, 7))
            ),
            seed=seed,
            min_survivors=min_survivors,
        )
    if profile == "poisson":
        return FaultConfig(
            preemption=PoissonPreemptions(rate=rate),
            kills=TaskKillConfig(rate=rate),
            dispatch=DispatchFaultConfig(probability=0.05),
            seed=seed,
            min_survivors=min_survivors,
        )
    if profile == "trace":
        if trace_file is not None:
            preemption = parse_htcondor_eviction_log(trace_file)
        else:
            preemption = TracePreemptions(
                events=((300.0, 1), (900.0, 2), (1500.0, 3), (2100.0, 1))
            )
        return FaultConfig(
            preemption=preemption,
            seed=seed,
            min_survivors=min_survivors,
        )
    if profile == "chaos":
        return FaultConfig(
            preemption=PoissonPreemptions(rate=rate),
            kills=TaskKillConfig(rate=rate),
            dispatch=DispatchFaultConfig(probability=0.1),
            degradation=DegradationConfig(rate=rate / 2.0),
            seed=seed,
            min_survivors=min_survivors,
        )
    raise KeyError(f"unknown fault profile {profile!r}; choose from {FAULT_PROFILES}")
