"""Simulated workers: capacity accounting and task hosting.

A worker is a vector bin: tasks occupy their *allocation* (not their
true consumption — the execution system reserves what was requested,
which is precisely why over-allocation wastes capacity) and are packed
while the componentwise sum fits the worker's capacity.  Enforcement —
killing a task the moment it over-consumes — is decided by the
consumption profile at dispatch time and realized by the manager; the
worker only owns placement arithmetic.

Fit checks are the single hottest operation in a simulation (every
dispatch scan probes every queued task against every worker), so the
worker maintains a plain float dict of *free* capacity updated
incrementally on place/release, with per-resource absolute tolerances
so float residue from fractional allocations can never make an empty
worker reject a full-capacity request.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.resources import TIME, Resource, ResourceVector

__all__ = ["Worker"]


class Worker:
    """One (possibly opportunistic) execution node."""

    __slots__ = (
        "worker_id",
        "capacity",
        "_running",
        "_free",
        "_tolerance",
        "joined_at",
        "left_at",
        "busy_time",
    )

    def __init__(
        self, worker_id: int, capacity: ResourceVector, joined_at: float = 0.0
    ) -> None:
        if all(capacity[r] <= 0 for r in capacity):
            raise ValueError("worker capacity must be positive in some resource")
        self.worker_id = worker_id
        self.capacity = capacity
        self._running: Dict[int, ResourceVector] = {}
        self._free: Dict[Resource, float] = dict(capacity.raw)
        self._tolerance: Dict[Resource, float] = {
            res: 1e-9 * max(cap, 1.0) for res, cap in capacity.raw.items()
        }
        self.joined_at = joined_at
        self.left_at: Optional[float] = None
        #: Accumulated task-seconds hosted, for utilization reporting.
        self.busy_time = 0.0

    # -- capacity queries -----------------------------------------------------------

    @property
    def committed(self) -> ResourceVector:
        """Sum of allocations of the currently hosted tasks."""
        return self.capacity - ResourceVector(self._free)

    def free_capacity(self) -> ResourceVector:
        return ResourceVector({r: max(0.0, v) for r, v in self._free.items()})

    def committed_values(self) -> Dict[Resource, float]:
        """Raw committed magnitudes per resource, without validation.

        Unlike :attr:`committed` this can represent an *overcommitted*
        state (committed > capacity), which is exactly what the
        invariant checker needs to be able to see.
        """
        return {
            res: self.capacity.raw[res] - free for res, free in self._free.items()
        }

    def can_fit(self, allocation: ResourceVector) -> bool:
        """Whether an additional task with this allocation fits now."""
        free = self._free
        tolerance = self._tolerance
        for res, requested in allocation.raw.items():
            if res is TIME:
                # Wall time is a per-task limit, not worker capacity:
                # hosting a task does not consume "time" from the node.
                continue
            slack = free.get(res)
            if slack is None:
                # The worker has no capacity of this resource at all.
                if requested > 1e-9:
                    return False
            elif requested > slack + tolerance[res]:
                return False
        return True

    def has_headroom(self) -> bool:
        """True if every capacity dimension has strictly positive slack.

        Used by the dispatch scan's saturation short-circuit: a worker
        with any dimension full cannot host a task that needs all
        dimensions.
        """
        for res, slack in self._free.items():
            if slack <= self._tolerance[res]:
                return False
        return True

    @property
    def n_running(self) -> int:
        return len(self._running)

    @property
    def running_task_ids(self) -> Tuple[int, ...]:
        return tuple(self._running)

    @property
    def alive(self) -> bool:
        return self.left_at is None

    # -- placement --------------------------------------------------------------------

    def place(self, task_id: int, allocation: ResourceVector) -> None:
        """Reserve ``allocation`` for ``task_id``; raises if it cannot fit."""
        if task_id in self._running:
            raise ValueError(f"task {task_id} is already on worker {self.worker_id}")
        if not self.can_fit(allocation):
            raise ValueError(
                f"task {task_id} does not fit worker {self.worker_id}: "
                f"free={self.free_capacity()!r}, requested={allocation!r}"
            )
        self._running[task_id] = allocation
        free = self._free
        for res, requested in allocation.raw.items():
            if res in free:
                free[res] -= requested

    def release(self, task_id: int, held_for: float = 0.0) -> ResourceVector:
        """Free a task's reservation; returns the released allocation."""
        try:
            allocation = self._running.pop(task_id)
        except KeyError:
            raise KeyError(
                f"task {task_id} is not running on worker {self.worker_id}"
            ) from None
        if self._running:
            free = self._free
            for res, requested in allocation.raw.items():
                if res in free:
                    free[res] += requested
        else:
            # Snap to exact capacity so float residue never accumulates.
            self._free = dict(self.capacity.raw)
        self.busy_time += held_for
        return allocation

    def degrade(self, new_capacity: ResourceVector) -> Dict[int, ResourceVector]:
        """Shrink the worker's capacity in place (opportunistic reclaim).

        The batch system can claw back part of a pilot's resources while
        tasks are running on it.  ``new_capacity`` must be componentwise
        at most the current capacity and positive in some resource.
        Hosted tasks that no longer fit are evicted newest-first (the
        batch system preserves the oldest leases) until the remaining
        set fits; the evicted ``{task_id: allocation}`` map is returned
        so the caller can requeue them.
        """
        values: Dict[Resource, float] = {}
        for res, cap in self.capacity.raw.items():
            new_value = new_capacity[res]
            if new_value > cap + self._tolerance[res]:
                raise ValueError(
                    f"degrade cannot grow capacity ({res.key}: {cap} -> {new_value})"
                )
            values[res] = min(new_value, cap)
        if all(v <= 0 for v in values.values()):
            raise ValueError("degraded capacity must stay positive in some resource")
        self.capacity = ResourceVector(values)
        self._tolerance = {
            res: 1e-9 * max(cap, 1.0) for res, cap in self.capacity.raw.items()
        }
        evicted: Dict[int, ResourceVector] = {}
        while True:
            free = dict(self.capacity.raw)
            for allocation in self._running.values():
                for res, requested in allocation.raw.items():
                    if res in free:
                        free[res] -= requested
            if all(v >= -self._tolerance[res] for res, v in free.items()):
                self._free = free
                break
            victim_id = next(reversed(self._running))
            evicted[victim_id] = self._running.pop(victim_id)
        if not self._running:
            self._free = dict(self.capacity.raw)
        return evicted

    def evict_all(self, now: float) -> Dict[int, ResourceVector]:
        """Drop every hosted task (the worker is leaving the pool)."""
        evicted = dict(self._running)
        self._running.clear()
        self._free = dict(self.capacity.raw)
        self.left_at = now
        return evicted

    def __repr__(self) -> str:
        status = "alive" if self.alive else f"left@{self.left_at:.0f}s"
        return (
            f"Worker(id={self.worker_id}, running={len(self._running)}, "
            f"{status})"
        )
