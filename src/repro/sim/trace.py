"""Canonical event traces: record what a run *did*, reproducibly.

The simulator's determinism guarantee ("same seeds, same run") is only
enforceable if a run's behaviour can be serialized canonically.  A
:class:`TraceRecorder` subscribes to a manager's event stream and
renders every scheduling decision — dispatches, completions, kills,
evictions, dispatch faults, worker churn and degradations — as one
text line with exact (``repr``-based) float formatting, so two runs are
behaviourally identical exactly when their traces are byte-identical.

Uses:

* **Golden-trace regression tests** (``tests/golden/``): canonical
  seeded runs are committed as text; a refactor that silently changes
  scheduling or retry semantics flips bytes in the replayed trace and
  fails the suite.
* **Replay determinism checks**: the CLI's chaos runs compare traces
  across invocations.
* **Debugging**: a trace diff pinpoints the first divergent decision
  between two runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Mapping

from repro.core.resources import ResourceVector

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.sim.manager import WorkflowManager

__all__ = ["SimEvent", "TraceRecorder", "format_event"]


@dataclass(frozen=True)
class SimEvent:
    """One manager-level event: a kind plus its payload fields."""

    time: float
    kind: str
    fields: Mapping[str, object]


def _format_value(value: object) -> str:
    if isinstance(value, ResourceVector):
        return "|".join(
            f"{res.key}:{value[res]!r}"
            for res in sorted(value, key=lambda r: r.key)
        )
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (tuple, list)):
        return ",".join(_format_value(v) for v in value)
    return str(value)


def format_event(event: SimEvent) -> str:
    """Render one event as its canonical single-line form."""
    parts = [f"t={event.time!r}", event.kind]
    parts.extend(f"{key}={_format_value(value)}" for key, value in event.fields.items())
    return " ".join(parts)


class TraceRecorder:
    """Accumulates a manager's event stream as canonical text lines.

    >>> from repro.sim.trace import TraceRecorder   # doctest: +SKIP
    >>> recorder = TraceRecorder(manager)           # doctest: +SKIP
    >>> manager.run()                               # doctest: +SKIP
    >>> print(recorder.text())                      # doctest: +SKIP
    """

    def __init__(self, manager: "WorkflowManager") -> None:
        self.lines: List[str] = []
        manager.add_event_listener(self._record)

    def _record(self, event: SimEvent) -> None:
        self.lines.append(format_event(event))

    def text(self) -> str:
        """The full trace, one event per line, trailing newline."""
        return "\n".join(self.lines) + ("\n" if self.lines else "")

    def __len__(self) -> int:
        return len(self.lines)
