"""Discrete-event workflow-execution simulator.

This subpackage stands in for the paper's testbed — the Work Queue
manager-worker framework running 20-50 opportunistic 16-core/64 GB
workers on an HTCondor cluster — with the same decision loop:

1. the workflow manager submits tasks in application order;
2. the scheduler asks the allocator for each ready task's resource
   allocation *at dispatch time* and places the task on a worker with
   enough free capacity;
3. the worker monitors the task and kills it the moment consumption
   exceeds any allocated resource (assumption 4, Section II-B);
4. killed tasks are re-allocated (bucket ladder climb or doubling) and
   retried; completed tasks report their peak consumption back to the
   allocator and the accounting ledger.

Workers may also join and leave mid-run (opportunistic churn); evicted
tasks are requeued with their previous allocation, and the resources an
evicted attempt held are tracked separately from the paper's two waste
classes so AWE remains worker-count independent (Section II-C).
"""

from repro.sim.accounting import Ledger, WasteBreakdown
from repro.sim.engine import SimulationEngine
from repro.sim.faults import (
    DegradationConfig,
    DispatchFaultConfig,
    FaultConfig,
    FaultInjector,
    FaultStats,
    FixedPreemptions,
    PoissonPreemptions,
    TaskKillConfig,
    TracePreemptions,
    make_fault_config,
)
from repro.sim.invariants import InvariantChecker, InvariantViolation
from repro.sim.manager import SimulationConfig, SimulationResult, WorkflowManager
from repro.sim.observability import Timeline, TimelineRecorder, TimelineSample
from repro.sim.pool import ChurnConfig, PoolConfig, WorkerPool
from repro.sim.profiles import (
    ConsumptionProfile,
    InstantPeakProfile,
    LinearRampProfile,
    StepProfile,
)
from repro.sim.scheduler import Scheduler
from repro.sim.task import Attempt, AttemptOutcome, SimTask, TaskState
from repro.sim.trace import SimEvent, TraceRecorder
from repro.sim.worker import Worker

__all__ = [
    "SimulationEngine",
    "SimTask",
    "Attempt",
    "AttemptOutcome",
    "TaskState",
    "Worker",
    "WorkerPool",
    "PoolConfig",
    "ChurnConfig",
    "ConsumptionProfile",
    "LinearRampProfile",
    "StepProfile",
    "InstantPeakProfile",
    "Ledger",
    "WasteBreakdown",
    "Scheduler",
    "FaultConfig",
    "FaultInjector",
    "FaultStats",
    "FixedPreemptions",
    "PoissonPreemptions",
    "TracePreemptions",
    "TaskKillConfig",
    "DispatchFaultConfig",
    "DegradationConfig",
    "make_fault_config",
    "InvariantChecker",
    "InvariantViolation",
    "SimEvent",
    "TraceRecorder",
    "WorkflowManager",
    "SimulationConfig",
    "SimulationResult",
    "Timeline",
    "TimelineRecorder",
    "TimelineSample",
]
