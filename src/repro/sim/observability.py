"""Simulation observability: timelines of pool and queue state.

The accounting ledger answers *how well were resources allocated*;
this module answers *what did the system look like while doing it* —
the operational view an administrator of an opportunistic pool cares
about (the paper's motivation for backfilling: "increases the resource
utilization of the local HPC facility").

:class:`TimelineRecorder` samples the simulation at a fixed period and
records, per sample:

* alive workers and their committed share per resource (pool
  utilization — of *allocations*, which is what the batch system sees);
* running task count and ready-queue depth;
* cumulative completions.

Attach one before ``run()``; the recorder schedules its own sampling
events and stops when the pool stops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.resources import Resource
from repro.sim.manager import WorkflowManager

__all__ = ["TimelineSample", "Timeline", "TimelineRecorder"]


@dataclass(frozen=True)
class TimelineSample:
    """One snapshot of the running simulation."""

    time: float
    n_workers: int
    n_running_tasks: int
    n_ready_tasks: int
    n_completed: int
    #: resource key -> fraction of alive capacity currently committed.
    utilization: Dict[str, float]


@dataclass
class Timeline:
    """The full sampled history of one run."""

    period: float
    samples: List[TimelineSample] = field(default_factory=list)

    def series(self, attribute: str) -> List[float]:
        """Extract one numeric series, e.g. ``series("n_workers")``."""
        return [float(getattr(s, attribute)) for s in self.samples]

    def utilization_series(self, resource_key: str) -> List[float]:
        return [s.utilization.get(resource_key, 0.0) for s in self.samples]

    def mean_utilization(self, resource_key: str) -> float:
        values = self.utilization_series(resource_key)
        return sum(values) / len(values) if values else 0.0

    def peak_workers(self) -> int:
        return max((s.n_workers for s in self.samples), default=0)

    def peak_queue_depth(self) -> int:
        return max((s.n_ready_tasks for s in self.samples), default=0)


class TimelineRecorder:
    """Samples a WorkflowManager's state on a fixed simulated period.

    >>> from repro.sim.observability import TimelineRecorder  # doctest: +SKIP
    >>> recorder = TimelineRecorder(manager, period=60.0)     # doctest: +SKIP
    >>> result = manager.run()                                 # doctest: +SKIP
    >>> recorder.timeline.mean_utilization("cores")            # doctest: +SKIP
    """

    def __init__(self, manager: WorkflowManager, period: float = 60.0) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._manager = manager
        self.timeline = Timeline(period=period)
        self._done = False
        manager.engine.schedule(0.0, self._sample)

    def _sample(self) -> None:
        manager = self._manager
        workers = manager._pool.alive_workers()
        n_running = sum(w.n_running for w in workers)
        utilization: Dict[str, float] = {}
        if workers:
            capacity_totals: Dict[Resource, float] = {}
            committed_totals: Dict[Resource, float] = {}
            for worker in workers:
                for res, cap in worker.capacity.raw.items():
                    capacity_totals[res] = capacity_totals.get(res, 0.0) + cap
                for res, value in worker.committed.raw.items():
                    committed_totals[res] = committed_totals.get(res, 0.0) + value
            for res, total in capacity_totals.items():
                if total > 0:
                    utilization[res.key] = committed_totals.get(res, 0.0) / total
        self.timeline.samples.append(
            TimelineSample(
                time=manager.engine.now,
                n_workers=len(workers),
                n_running_tasks=n_running,
                n_ready_tasks=manager._scheduler.n_ready,
                n_completed=manager._completed,
                utilization=utilization,
            )
        )
        if manager._completed >= len(manager.workflow):
            self._done = True
            return
        manager.engine.schedule(self.timeline.period, self._sample)
