"""Deterministic discrete-event simulation engine.

A minimal event loop: callbacks are scheduled at absolute simulation
times and executed in (time, insertion order) order, so two events at
the same timestamp fire in the order they were scheduled and every run
with the same inputs replays identically.  Components (scheduler, pool,
manager) schedule plain closures; no global state, multiple engines can
coexist (the experiment grid runs them in-process back to back).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

__all__ = ["SimulationEngine"]


class SimulationEngine:
    """Priority-queue event loop with a monotone clock."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._running = False
        self._processed = 0
        self._last_event_time = 0.0
        #: Post-event hooks, called (with no arguments) after every
        #: processed callback.  The invariant checker rides on this to
        #: audit system state between events; listeners must not
        #: schedule new events.
        self._listeners: List[Callable[[], None]] = []

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._processed

    @property
    def last_event_time(self) -> float:
        """Scheduled time of the most recently processed event.

        ``now`` normally equals this; a callback that (buggily) rewound
        the clock leaves ``now`` behind it, which is how the invariant
        checker detects non-monotone time.
        """
        return self._last_event_time

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def add_listener(self, listener: Callable[[], None]) -> None:
        """Register a hook to run after every processed event."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[], None]) -> None:
        self._listeners.remove(listener)

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds from now (``delay >= 0``)."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        heapq.heappush(self._queue, (time, next(self._counter), callback))

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_after_total: Optional[int] = None,
    ) -> float:
        """Process events until the queue drains (or a bound is hit).

        Parameters
        ----------
        until:
            Stop once the next event lies strictly beyond this time; the
            clock is advanced to ``until`` in that case.
        max_events:
            Safety bound on processed events; exceeding it raises
            ``RuntimeError`` (a stuck workflow is a bug, not a result).
        stop_after_total:
            Pause cleanly once :attr:`events_processed` (the lifetime
            total, not this call's count) reaches this value; a later
            ``run()`` continues from the exact same queue state.  The
            checkpoint/resume machinery replays a snapshot by running a
            fresh engine to the snapshot's event count.

        Returns the simulation time when the loop stopped.
        """
        if self._running:
            raise RuntimeError("engine is already running (re-entrant run() call)")
        self._running = True
        processed_this_run = 0
        try:
            while self._queue:
                if stop_after_total is not None and self._processed >= stop_after_total:
                    break
                time, _seq, callback = self._queue[0]
                if until is not None and time > until:
                    self._now = until
                    break
                heapq.heappop(self._queue)
                self._now = time
                self._last_event_time = time
                callback()
                # Count the event *before* the listeners run, so a
                # listener that snapshots (or raises to pause) sees the
                # event it just witnessed included in events_processed.
                self._processed += 1
                processed_this_run += 1
                if self._listeners:
                    for listener in self._listeners:
                        listener()
                if max_events is not None and processed_this_run >= max_events:
                    raise RuntimeError(
                        f"event budget exhausted after {max_events} events at "
                        f"t={self._now:.1f}s — likely a scheduling livelock"
                    )
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def __repr__(self) -> str:
        return (
            f"SimulationEngine(now={self._now:.3f}, pending={len(self._queue)}, "
            f"processed={self._processed})"
        )
