"""Consumption profiles: when does an under-allocated task get killed?

The paper's waste model charges a failed attempt ``a_i * t_i``, where
``t_i`` is how long the attempt ran before the execution system killed
it (Section II-C).  The real kill time depends on how a task's
consumption grows towards its peak, which the paper's production traces
do not expose — so the simulator makes it an explicit, pluggable model:

* :class:`LinearRampProfile` (default): consumption of each resource
  grows linearly from 0 to the task's peak over its duration, so an
  attempt allocated fraction ``f`` of the task's peak is killed at
  ``f * duration`` having consumed exactly its allocation.  This is the
  neutral middle ground between the extremes below.
* :class:`InstantPeakProfile`: consumption jumps to the peak at start;
  an insufficient allocation is detected (almost) immediately, so
  failed allocations are nearly free.  Lower bound on retry waste.
* :class:`StepProfile`: consumption sits at ``baseline_fraction`` of
  the peak until ``step_fraction`` of the duration, then jumps to the
  peak — the "allocate, compute for a while, then blow up in the final
  accumulation" shape common in analysis tasks.  Upper-bound-ish retry
  waste at ``step_fraction`` close to 1.

Wall time itself (the ``TIME`` resource, when managed) always grows
linearly, whatever the profile.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.resources import TIME, Resource, ResourceVector

__all__ = [
    "KillVerdict",
    "ConsumptionProfile",
    "LinearRampProfile",
    "InstantPeakProfile",
    "StepProfile",
]

#: Fraction of the duration after which an instant-peak violation is
#: detected: monitors poll, they do not trap allocations, so detection
#: is fast but not free.
_DETECTION_FRACTION = 0.01


@dataclass(frozen=True)
class KillVerdict:
    """Outcome of checking one attempt against its allocation.

    Attributes
    ----------
    fraction:
        Fraction of the task's true duration the attempt survived, in
        (0, 1].  ``1.0`` with no exhausted resources means success.
    exhausted:
        Resources whose limits were hit at that moment (empty on
        success).
    observed:
        The peak consumption the monitor recorded up to the kill (on
        success: the task's true peaks).  The allocator receives this as
        the failed attempt's evidence.
    """

    fraction: float
    exhausted: Tuple[Resource, ...]
    observed: ResourceVector

    @property
    def success(self) -> bool:
        return not self.exhausted


class ConsumptionProfile(abc.ABC):
    """How consumption approaches the peak within one attempt."""

    name: str = ""

    @abc.abstractmethod
    def resource_kill_fraction(
        self, allocated: float, peak: float
    ) -> Optional[float]:
        """Duration fraction at which ``allocated < peak`` is exceeded.

        ``None`` means the allocation suffices for the whole run.
        """

    @abc.abstractmethod
    def consumed_at(self, peak: float, fraction: float) -> float:
        """Consumption of a resource at a duration fraction."""

    # -- the shared verdict logic ------------------------------------------------

    def check(
        self,
        allocation: ResourceVector,
        consumption: ResourceVector,
        duration: float,
        time_limit: Optional[float] = None,
    ) -> KillVerdict:
        """Decide when (if ever) an attempt is killed.

        ``time_limit`` is the allocated wall time when the TIME resource
        is managed; ``None`` disables wall-time enforcement.
        """
        kill_fraction = 1.0
        exhausted: Tuple[Resource, ...] = ()
        for res in consumption:
            if res is TIME:
                continue
            peak = consumption[res]
            allocated = allocation[res]
            if peak <= allocated:
                continue
            fraction = self.resource_kill_fraction(allocated, peak)
            if fraction is None:
                continue
            if fraction < kill_fraction - 1e-12:
                kill_fraction, exhausted = fraction, (res,)
            elif abs(fraction - kill_fraction) <= 1e-12 and kill_fraction < 1.0:
                exhausted = exhausted + (res,)
        if time_limit is not None and time_limit < duration:
            time_fraction = time_limit / duration
            if time_fraction < kill_fraction - 1e-12:
                kill_fraction, exhausted = time_fraction, (TIME,)
            elif abs(time_fraction - kill_fraction) <= 1e-12 and exhausted:
                exhausted = exhausted + (TIME,)
            elif not exhausted:
                kill_fraction, exhausted = time_fraction, (TIME,)

        if not exhausted:
            return KillVerdict(fraction=1.0, exhausted=(), observed=consumption)

        observed = {}
        for res in consumption:
            if res is TIME:
                continue
            peak = consumption[res]
            if res in exhausted:
                # The monitor catches the task at its limit.
                observed[res] = min(allocation[res], peak)
            else:
                observed[res] = min(self.consumed_at(peak, kill_fraction), peak)
        if TIME in consumption or time_limit is not None:
            observed[TIME] = kill_fraction * duration
        return KillVerdict(
            fraction=max(kill_fraction, 1e-9),
            exhausted=exhausted,
            observed=ResourceVector(observed),
        )


class LinearRampProfile(ConsumptionProfile):
    """Consumption ramps linearly to the peak, then plateaus.

    Parameters
    ----------
    peak_fraction:
        Fraction of the duration at which consumption reaches the peak.
        Programs build their working set early and then compute on it,
        so the default reaches the peak a quarter of the way in —
        under-allocations are detected early and failed attempts stay
        cheap, matching the paper's observation that the bucketing
        algorithms' failed-allocation waste is small (Section V-D).
        ``peak_fraction=1.0`` is the ramp-to-the-very-end worst case.
    """

    name = "linear"

    def __init__(self, peak_fraction: float = 0.25) -> None:
        if not (0.0 < peak_fraction <= 1.0):
            raise ValueError(f"peak_fraction must be in (0, 1], got {peak_fraction}")
        self.peak_fraction = peak_fraction

    def resource_kill_fraction(self, allocated: float, peak: float) -> Optional[float]:
        if peak <= allocated:
            return None
        if peak <= 0:
            return None
        crossing = (allocated / peak) * self.peak_fraction
        return min(1.0, max(crossing, _DETECTION_FRACTION))

    def consumed_at(self, peak: float, fraction: float) -> float:
        if fraction >= self.peak_fraction:
            return peak
        return peak * (fraction / self.peak_fraction)


class InstantPeakProfile(ConsumptionProfile):
    """Consumption hits the peak immediately after start."""

    name = "instant"

    def resource_kill_fraction(self, allocated: float, peak: float) -> Optional[float]:
        if peak <= allocated:
            return None
        return _DETECTION_FRACTION

    def consumed_at(self, peak: float, fraction: float) -> float:
        return peak


class StepProfile(ConsumptionProfile):
    """Baseline consumption, then a jump to the peak late in the run.

    Parameters
    ----------
    step_fraction:
        Fraction of the duration at which consumption jumps to the peak.
    baseline_fraction:
        Consumption before the jump, as a fraction of the peak.
    """

    name = "step"

    def __init__(self, step_fraction: float = 0.5, baseline_fraction: float = 0.1) -> None:
        if not (0.0 < step_fraction <= 1.0):
            raise ValueError(f"step_fraction must be in (0, 1], got {step_fraction}")
        if not (0.0 <= baseline_fraction < 1.0):
            raise ValueError(
                f"baseline_fraction must be in [0, 1), got {baseline_fraction}"
            )
        self.step_fraction = step_fraction
        self.baseline_fraction = baseline_fraction

    def resource_kill_fraction(self, allocated: float, peak: float) -> Optional[float]:
        if peak <= allocated:
            return None
        baseline = peak * self.baseline_fraction
        if allocated < baseline:
            return _DETECTION_FRACTION
        return self.step_fraction

    def consumed_at(self, peak: float, fraction: float) -> float:
        if fraction < self.step_fraction:
            return peak * self.baseline_fraction
        return peak
