"""Deterministic filesystem fault injection for the durability layer.

The chaos layer (:mod:`repro.service.chaos`) can kill processes at named
crash points and mangle sockets, but a disk fails differently: writes
return ``ENOSPC``/``EIO`` halfway through a batch, a write persists only
a prefix of its buffer, an fsync fails *after* the kernel already
dropped the dirty pages, and bits rot at rest.  This module makes every
one of those failures reproducible:

* :class:`FsFaultInjector` plugs into the single IO choke point in
  :mod:`repro.checkpoint` (``set_fs_fault_injector``), so the exact
  production write/fsync calls of :class:`~repro.checkpoint.JournalWriter`
  and the atomic snapshot writer are the ones that fail.  Default-off:
  an uninstalled injector costs one ``is None`` check.
* Faults are **armed plans** (:class:`FsFaultPlan`): fire the Nth
  matching write/fsync on paths containing a substring, then auto-disarm
  — the same one-shot discipline as ``repro.service.chaos.CrashPoints``,
  and just as replayable.  :func:`seeded_fault_plan` derives a plan from
  a seed for sweep-style tests.
* **fsyncgate semantics** are enforced, not just simulated: once an
  injected fsync has failed on a handle, any further fsync through that
  same handle raises ``RuntimeError`` — after a failed fsync the page
  cache may have dropped the dirty data, so "retry the fsync" silently
  reports durability for bytes that are gone.  The only legal move is
  to reopen the file and rewrite (PostgreSQL's fsyncgate, 2018).
* :func:`flip_bit` / :func:`seeded_flip` model at-rest corruption: a
  chosen (or seeded) single-bit flip at a byte offset, applied to the
  closed file — what the checksummed journal frames exist to catch.

This module deliberately imports nothing from ``repro`` at module scope
except :mod:`repro.checkpoint` (itself a leaf), keeping the dependency
graph acyclic.
"""

from __future__ import annotations

import errno
import os
import random
import weakref
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.checkpoint import set_fs_fault_injector

__all__ = [
    "STORAGE_FAULT_KINDS",
    "StorageFault",
    "FsFaultPlan",
    "FsFaultInjector",
    "FS_FAULTS",
    "seeded_fault_plan",
    "flip_bit",
    "seeded_flip",
]

#: Injectable storage-fault kinds.  ``enospc``/``eio`` fail the write
#: with nothing persisted; ``short-write`` persists a prefix of the
#: buffer before failing; ``fsync-fail`` lets the write through and
#: fails the flush (the fsyncgate case).
STORAGE_FAULT_KINDS = ("enospc", "eio", "short-write", "fsync-fail")

_ERRNO_BY_KIND = {
    "enospc": errno.ENOSPC,
    "eio": errno.EIO,
    "short-write": errno.EIO,
    "fsync-fail": errno.EIO,
}


class StorageFault(OSError):
    """An injected storage failure (a real one raises plain ``OSError``).

    Subclassing ``OSError`` matters: the durability layer must treat an
    injected ENOSPC exactly like a real one, so every handler catches
    ``OSError`` and the tests prove the production path, not a special
    case.

    Attributes
    ----------
    kind:
        One of :data:`STORAGE_FAULT_KINDS`.
    op:
        ``"write"`` or ``"fsync"``.
    path:
        The file the faulted IO targeted.
    """

    def __init__(self, kind: str, op: str, path: str) -> None:
        code = _ERRNO_BY_KIND[kind]
        super().__init__(
            code, f"injected {kind} during {op} of {path!r} ({os.strerror(code)})"
        )
        self.kind = kind
        self.op = op
        self.path = path


@dataclass(frozen=True)
class FsFaultPlan:
    """One armed fault: fire on the Nth matching IO call, then disarm.

    ``path_substring`` scopes the fault (e.g. ``".wal"`` hits only
    journal IO, ``"service.snapshot"`` only snapshot writes); ``at_hit``
    counts matching calls, 1-based, so a plan is exactly reproducible
    for a given call sequence.
    """

    kind: str
    at_hit: int = 1
    path_substring: str = ""

    def __post_init__(self) -> None:
        if self.kind not in STORAGE_FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {STORAGE_FAULT_KINDS}, got {self.kind!r}"
            )
        if self.at_hit < 1:
            raise ValueError(f"at_hit must be >= 1, got {self.at_hit}")

    @property
    def op(self) -> str:
        return "fsync" if self.kind == "fsync-fail" else "write"


class FsFaultInjector:
    """Deterministic write/fsync fault layer under ``repro.checkpoint``.

    Usage::

        FS_FAULTS.arm(FsFaultPlan("enospc", at_hit=3, path_substring=".wal"))
        try:
            ...  # run the workload; the 3rd WAL write raises StorageFault
        finally:
            FS_FAULTS.reset()

    ``arm`` installs the injector into :mod:`repro.checkpoint`;
    ``reset`` removes it, restoring the zero-overhead direct path.  A
    fired plan auto-disarms (like a chaos crash point) but the injector
    stays installed so the poisoned-handle bookkeeping keeps enforcing
    fsyncgate semantics until ``reset``.
    """

    def __init__(self) -> None:
        self._plan: Optional[FsFaultPlan] = None
        self._hits = 0
        # id(handle) -> weakref to the poisoned handle.  Keying on the
        # bare id would misfire once a poisoned handle is freed and
        # CPython reuses its address for a fresh one; the weakref lets
        # a stale entry die with the handle it belonged to.
        self._poisoned: Dict[int, weakref.ref] = {}
        #: Log of fired faults, ``(kind, op, path, hit_number)`` — the
        #: replay record a deterministic sweep asserts against.
        self.fired: List[Tuple[str, str, str, int]] = []

    # -- arming -----------------------------------------------------------

    def arm(self, plan: FsFaultPlan) -> None:
        """Arm ``plan`` and install the injector under the IO hook."""
        self._plan = plan
        self._hits = 0
        set_fs_fault_injector(self)

    def disarm(self) -> None:
        """Drop the armed plan (the injector stays installed)."""
        self._plan = None
        self._hits = 0

    def reset(self) -> None:
        """Disarm, forget poisoned handles, clear the log, uninstall."""
        self.disarm()
        self._poisoned.clear()
        self.fired.clear()
        set_fs_fault_injector(None)

    @property
    def armed(self) -> bool:
        return self._plan is not None

    def _matches(self, op: str, path: str) -> bool:
        plan = self._plan
        return (
            plan is not None
            and plan.op == op
            and plan.path_substring in path
        )

    def _fire(self, op: str, path: str) -> StorageFault:
        plan = self._plan
        assert plan is not None
        self._plan = None  # one-shot: auto-disarm on fire
        self.fired.append((plan.kind, op, path, self._hits))
        return StorageFault(plan.kind, op, path)

    # -- the IO hook (called by repro.checkpoint) -------------------------

    def write(self, handle: Any, text: str, path: str) -> None:
        if self._matches("write", path):
            self._hits += 1
            if self._hits == self._plan.at_hit:  # type: ignore[union-attr]
                kind = self._plan.kind  # type: ignore[union-attr]
                if kind == "short-write":
                    # Persist a prefix, as a real short write would: the
                    # torn half-line lands in the file (flushed past the
                    # userspace buffer) and must be repaired before the
                    # journal is reused.
                    handle.write(text[: max(1, len(text) // 2)])
                    handle.flush()
                raise self._fire("write", path)
        handle.write(text)

    def fsync(self, handle: Any, path: str) -> None:
        key = id(handle)
        ref = self._poisoned.get(key)
        if ref is not None and ref() is handle:
            raise RuntimeError(
                "fsyncgate violation: fsync retried on a handle whose fsync "
                f"already failed ({path!r}); the dirty pages may be gone — "
                "reopen the file and rewrite instead"
            )
        if self._matches("fsync", path):
            self._hits += 1
            if self._hits == self._plan.at_hit:  # type: ignore[union-attr]
                self._poisoned[key] = weakref.ref(handle)
                raise self._fire("fsync", path)
        os.fsync(handle.fileno())


#: Process-wide injector instance; arm/reset it around a faulted run.
FS_FAULTS = FsFaultInjector()


def seeded_fault_plan(
    seed: int,
    kinds: Tuple[str, ...] = STORAGE_FAULT_KINDS,
    max_hit: int = 8,
    path_substring: str = "",
) -> FsFaultPlan:
    """Derive one reproducible fault plan from a seed.

    The same seed always yields the same (kind, hit) pair, so a failing
    sweep case replays exactly from its seed alone.
    """
    rng = random.Random(f"repro-faultfs:{seed}")
    return FsFaultPlan(
        kind=kinds[rng.randrange(len(kinds))],
        at_hit=rng.randrange(1, max_hit + 1),
        path_substring=path_substring,
    )


# ---------------------------------------------------------------------------
# At-rest corruption (bit rot)
# ---------------------------------------------------------------------------


def flip_bit(path: str, byte_offset: int, bit: int = 0) -> None:
    """Flip one bit of ``path`` in place (post-crash bit-rot model)."""
    size = os.path.getsize(path)
    if not 0 <= byte_offset < size:
        raise ValueError(f"byte_offset {byte_offset} outside file of {size} bytes")
    if not 0 <= bit < 8:
        raise ValueError(f"bit must be in [0, 8), got {bit}")
    # Deliberate in-place corruption of a closed artifact: atomic-write
    # discipline is exactly what this helper exists to attack.
    # reprolint: disable=R4
    with open(path, "rb+") as handle:
        handle.seek(byte_offset)
        original = handle.read(1)
        handle.seek(byte_offset)
        handle.write(bytes([original[0] ^ (1 << bit)]))


def seeded_flip(path: str, seed: int) -> Tuple[int, int]:
    """Flip one seeded-random bit of ``path``; returns ``(offset, bit)``.

    Deterministic for a given (file size, seed), so a sweep case that
    trips on a particular flip replays bit-for-bit.
    """
    size = os.path.getsize(path)
    if size == 0:
        raise ValueError(f"cannot flip a bit of empty file {path!r}")
    rng = random.Random(f"repro-bitflip:{seed}:{size}")
    offset = rng.randrange(size)
    bit = rng.randrange(8)
    flip_bit(path, offset, bit)
    return offset, bit
