"""Plain-text rendering of experiment results.

Everything the paper shows as a figure is reproduced here as an ASCII
table or series dump — the repository has no plotting dependency, and
the numbers (not the pixels) are what a reproduction is compared on.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence

from repro.checkpoint import write_json_atomic, write_text_atomic

__all__ = [
    "format_table",
    "format_series",
    "format_histogram",
    "save_text",
    "save_json",
]


def save_text(path: str, text: str) -> None:
    """Publish rendered report text crash-safely (tmp + ``os.replace``).

    A killed run leaves either the previous report or the new one on
    disk — never a truncated file that looks like a finished result.
    """
    write_text_atomic(path, text if text.endswith("\n") else text + "\n")


def save_json(path: str, doc: Any) -> None:
    """Publish a JSON result document crash-safely."""
    write_json_atomic(path, doc)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render rows as a fixed-width ASCII table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for value in row:
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    name: str, values: Sequence[float], max_points: int = 20, width: int = 40
) -> str:
    """Render a numeric series as a downsampled ASCII sparkline block."""
    if not values:
        return f"{name}: (empty)"
    step = max(1, len(values) // max_points)
    sampled = list(values[::step])
    lo, hi = min(sampled), max(sampled)
    span = hi - lo if hi > lo else 1.0
    lines = [f"{name} (n={len(values)}, min={lo:.3g}, max={hi:.3g})"]
    for i, v in enumerate(sampled):
        bar = "#" * max(1, int((v - lo) / span * width))
        lines.append(f"  [{i * step:>6d}] {v:>10.3g} {bar}")
    return "\n".join(lines)


def format_histogram(
    name: str,
    values: Sequence[float],
    n_bins: int = 12,
    width: int = 40,
) -> str:
    """Render a value histogram as ASCII bars (distribution snapshots)."""
    if not values:
        return f"{name}: (empty)"
    lo, hi = min(values), max(values)
    if hi <= lo:
        return f"{name}: all values = {lo:.4g} (n={len(values)})"
    span = (hi - lo) / n_bins
    counts = [0] * n_bins
    for v in values:
        idx = min(int((v - lo) / span), n_bins - 1)
        counts[idx] += 1
    peak = max(counts)
    lines = [f"{name} (n={len(values)}, min={lo:.4g}, max={hi:.4g})"]
    for i, count in enumerate(counts):
        left = lo + i * span
        bar = "#" * max(0, int(count / peak * width)) if peak else ""
        lines.append(f"  {left:>12.4g} | {bar} {count}")
    return "\n".join(lines)
