"""E-X3: the Quantized-then-Bucketing switchover on TopEFT cores.

Section V-C observes that Min Waste, Max Throughput and Quantized
Bucketing beat the bucketing algorithms by 20-30 % at allocating
*cores* on TopEFT, blames "the first few outliers", and suggests
"running Quantized Bucketing initially then switching over" as the
mitigation.  This study runs TopEFT under plain Exhaustive Bucketing,
plain Quantized Bucketing, and the hybrid at several switchover points,
and reports whether the hybrid recovers the gap without giving up the
bucketing algorithms' lead in memory and disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.resources import CORES, DISK, MEMORY
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_cell

__all__ = ["HybridStudyResult", "run", "render"]


@dataclass(frozen=True)
class HybridRow:
    variant: str
    awe_cores: float
    awe_memory: float
    awe_disk: float
    failed_attempts: int


@dataclass
class HybridStudyResult:
    workflow: str
    rows: List[HybridRow]

    def of(self, variant: str) -> HybridRow:
        for row in self.rows:
            if row.variant == variant:
                return row
        raise KeyError(variant)


def run(
    config: Optional[ExperimentConfig] = None,
    workflow: str = "topeft",
    switch_points: Sequence[int] = (25, 50, 100),
) -> HybridStudyResult:
    config = config if config is not None else ExperimentConfig()
    rows: List[HybridRow] = []

    def add(variant: str, result) -> None:
        rows.append(
            HybridRow(
                variant=variant,
                awe_cores=result.ledger.awe(CORES),
                awe_memory=result.ledger.awe(MEMORY),
                awe_disk=result.ledger.awe(DISK),
                failed_attempts=result.n_failed_attempts,
            )
        )

    add("exhaustive_bucketing", run_cell(workflow, "exhaustive_bucketing", config))
    add("quantized_bucketing", run_cell(workflow, "quantized_bucketing", config))
    for switch in switch_points:
        result = run_cell(
            workflow,
            "hybrid_bucketing",
            config,
            algorithm_kwargs={
                "initial": "quantized_bucketing",
                "primary": "exhaustive_bucketing",
                "switch_after": switch,
            },
        )
        add(f"hybrid(switch={switch})", result)
    return HybridStudyResult(workflow=workflow, rows=rows)


def render(result: HybridStudyResult) -> str:
    return format_table(
        headers=["variant", "AWE cores", "AWE memory", "AWE disk", "failed"],
        rows=[
            (r.variant, r.awe_cores, r.awe_memory, r.awe_disk, r.failed_attempts)
            for r in result.rows
        ],
        title=f"E-X3 hybrid switchover — {result.workflow}",
    )
