"""E-X8/E-X9: chaos matrix for the allocation service edge and its disk.

The paper's opportunistic setting loses workers and links mid-flight;
this study injects exactly those failures at the service edge and
checks the system's headline claim: **faults change latency, never
state**.  Four matrices share one deterministic operation script:

* **Network profiles** (E-X8) — the script is driven through a seeded
  :class:`~repro.service.chaos.ChaosProxy` (disconnects, torn frames,
  garbage bytes, delays, splits, slow-loris dribble) by the resilient
  :class:`~repro.service.AsyncServiceClient` with idempotency keys.
  The final per-shard allocator digests must be bit-identical to the
  fault-free reference run.
* **Crash points** (E-X8) — every registered
  :data:`~repro.service.chaos.CRASH_POINTS` site is armed in turn; the
  in-process service dies there mid-operation, restarts from
  snapshot + WAL, the client retries its keyed operation, and the
  digests must again match the reference exactly (exactly-once across
  the crash).
* **Write faults** (E-X9) — every :data:`~repro.faultfs.STORAGE_FAULT_KINDS`
  kind (ENOSPC, EIO, short write, failed fsync) is armed against the
  WAL path and against the snapshot path in turn via
  :data:`~repro.faultfs.FS_FAULTS`.  The fault puts the shard (or the
  snapshot cut) into typed ``storage_unavailable`` refusal; the driver
  retries the keyed op until the degraded-mode probe heals the shard,
  and the final digests must match the reference — a refused batch is
  never half-applied.
* **Bit flips × crash sites** (E-X9) — the service is crashed at a
  chosen site, one seeded bit is flipped in a surviving WAL or snapshot
  file, ``fsck`` must detect the corruption (non-zero exit), and the
  restarted service must recover through quarantine + generation
  fallback.  Resubmitting the full keyed script then yields digests
  bit-identical to the reference: every injected storage fault ends in
  exact recovery or a typed refusal, never silent divergence.

Run via ``repro-experiments service-chaos``.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.allocator import AllocatorConfig
from repro.experiments.reporting import format_table
from repro.faultfs import FS_FAULTS, STORAGE_FAULT_KINDS, FsFaultPlan, seeded_flip
from repro.service.chaos import (
    CHAOS_PROFILES,
    CRASH_POINTS,
    CrashPointFired,
    make_chaos_config,
)
from repro.service.client import AsyncServiceClient, RetryPolicy
from repro.service.config import ServiceConfig
from repro.service.fsck import run_fsck
from repro.service.server import AllocationServer
from repro.service.service import AllocationService, parse_generation
from repro.service.shards import StorageUnavailable

__all__ = ["ServiceChaosResult", "run", "render"]

#: Categories the script cycles through (they hash across shards).
_CATEGORIES = ("render", "simulate", "reduce", "index", "train")

#: (target label, path substring the fault plan matches).
_STORAGE_TARGETS = (("wal", ".wal"), ("snapshot", "service.snapshot"))

#: Crash sites the bit-flip matrix crashes at before flipping a bit.
_BITFLIP_SITES = ("shard.wal-append.after", "service.snapshot.after")


def _service_config(data_dir: Optional[str] = None) -> ServiceConfig:
    return ServiceConfig(
        allocator=AllocatorConfig(algorithm="greedy_bucketing", seed=11),
        n_shards=3,
        data_dir=data_dir,
        durability="op",
        dedup_window=256,
        # E-X9 heals shards quickly: every second refused batch probes.
        degraded_probe_interval=2,
    )


def _script(n_ops: int) -> List[Dict[str, Any]]:
    """The deterministic keyed operation stream every run replays."""
    ops: List[Dict[str, Any]] = []
    for i in range(n_ops):
        category = _CATEGORIES[i % len(_CATEGORIES)]
        if i % 3 == 2:
            ops.append(
                {
                    "op": "record",
                    "category": category,
                    "task_id": i,
                    "peaks": {"memory": 900.0 + 40.0 * (i % 7), "cores": 1.0},
                    "key": f"chaos/{i}",
                }
            )
        else:
            ops.append(
                {
                    "op": "allocate",
                    "category": category,
                    "task_id": i,
                    "key": f"chaos/{i}",
                }
            )
    return ops


@dataclass
class ServiceChaosResult:
    n_ops: int
    seed: int
    reference_digests: List[str]
    #: profile -> (digests_match, fault histogram, client stats)
    network: Dict[str, Tuple[bool, Dict[str, int], Dict[str, int]]] = field(
        default_factory=dict
    )
    #: site -> (digests_match, crashes survived, dedup hits after restart)
    crashes: Dict[str, Tuple[bool, int, int]] = field(default_factory=dict)
    #: "kind@target" -> (digests_match, typed storage refusals observed)
    storage_faults: Dict[str, Tuple[bool, int]] = field(default_factory=dict)
    #: "target@site" -> (digests_match, fsck detected the corruption)
    bitflips: Dict[str, Tuple[bool, bool]] = field(default_factory=dict)

    @property
    def all_match(self) -> bool:
        return (
            all(m for m, _, _ in self.network.values())
            and all(m for m, _, _ in self.crashes.values())
            and all(m for m, _ in self.storage_faults.values())
            and all(m and d for m, d in self.bitflips.values())
        )


async def _reference(script: List[Dict[str, Any]]) -> List[str]:
    """Fault-free digests of the script, applied in-process."""
    service = AllocationService(_service_config())
    await service.start()
    for op in script:
        await service.submit(dict(op))
    digests = service.shard_digests()
    await service.stop()
    return digests


async def _network_run(
    profile: str, seed: int, script: List[Dict[str, Any]], workdir: str
) -> Tuple[List[str], Dict[str, int], Dict[str, int]]:
    """Drive the script through a chaos proxy; return digests + stats."""
    from repro.service.chaos import ChaosProxy

    upstream = os.path.join(workdir, f"up-{profile}.sock")
    downstream = os.path.join(workdir, f"down-{profile}.sock")
    service = AllocationService(_service_config())
    await service.start()
    server = AllocationServer(service, socket_path=upstream)
    await server.start()
    proxy = ChaosProxy(upstream, downstream, make_chaos_config(profile, seed=seed))
    await proxy.start()
    client = AsyncServiceClient(
        socket_path=downstream,
        retry=RetryPolicy(
            max_attempts=12,
            connect_timeout=2.0,
            read_timeout=2.0,
            backoff_base=0.005,
            backoff_max=0.05,
            seed=seed,
        ),
        auto_key=False,
        client_id=f"chaos-{profile}",
    )
    try:
        for op in script:
            await client.call(dict(op))
    finally:
        await client.close()
        await proxy.stop()
        await server.stop()
    digests = service.shard_digests()
    await service.stop()
    return digests, proxy.event_kinds(), client.stats()


async def _crash_run(
    site: str, script: List[Dict[str, Any]], workdir: str
) -> Tuple[List[str], int, int]:
    """Arm one crash site; restart-and-retry until the script completes."""
    data_dir = os.path.join(workdir, site.replace(".", "-"))
    config = _service_config(data_dir=data_dir)
    service = AllocationService(config)
    await service.start()
    # Snapshot sites are only traversed by the mid-script snapshot(),
    # so fire on the first hit; shard sites fire mid-stream so the
    # crash interrupts a half-ingested state.
    at_hit = 1 if site.startswith("service.snapshot") else max(1, len(script) // 2)
    CRASH_POINTS.arm(site, at_hit=at_hit, mode="raise")
    crashes = 0
    try:
        for position, op in enumerate(script):
            while True:
                try:
                    await service.submit(dict(op))
                    break
                except CrashPointFired:
                    # The daemon "died" mid-operation: restart from
                    # snapshot + WAL and retry the same keyed op — the
                    # dedup window makes the retry exactly-once.
                    crashes += 1
                    service.abort()
                    service = AllocationService(config)
                    await service.start()
            if position == len(script) // 3:
                # Exercise the snapshot path mid-stream so the
                # service.snapshot.* sites actually get hit.
                try:
                    await service.snapshot()
                except CrashPointFired:
                    crashes += 1
                    service.abort()
                    service = AllocationService(config)
                    await service.start()
    finally:
        CRASH_POINTS.disarm()
    digests = service.shard_digests()
    dedup_hits = sum(shard.dedup_hits for shard in service.shards)
    await service.stop()
    return digests, crashes, dedup_hits


async def _submit_with_retry(
    service: AllocationService, op: Dict[str, Any], max_refusals: int = 64
) -> int:
    """Submit one keyed op, retrying through degraded-mode refusals.

    Returns how many typed ``storage_unavailable`` refusals the op ate
    before the recovery probe healed the shard.  A refused batch is
    guaranteed un-applied, so retrying the same keyed op verbatim is
    exactly-once.
    """
    refusals = 0
    while True:
        try:
            await service.submit(dict(op))
            return refusals
        except StorageUnavailable:
            refusals += 1
            if refusals >= max_refusals:
                raise


async def _storage_fault_run(
    kind: str, target_sub: str, script: List[Dict[str, Any]], workdir: str
) -> Tuple[List[str], int]:
    """Arm one write-fault kind against one path family; return digests.

    The fault is armed *after* start (the recovery snapshot must not
    eat it) and fires mid-stream: WAL faults drop the owning shard into
    degraded mode until its probe heals it; snapshot faults turn the
    mid-script snapshot cut into a typed refusal that succeeds on
    retry.
    """
    safe = f"{kind}-{target_sub}".replace(".", "-").replace("/", "-")
    data_dir = os.path.join(workdir, f"storage-{safe}")
    service = AllocationService(_service_config(data_dir=data_dir))
    await service.start()
    refusals = 0
    # Snapshot paths only see a couple of writes per cut, so fire on
    # the first; WAL paths see one write per op, so fire mid-stream.
    at_hit = 1 if "snapshot" in target_sub else max(1, len(script) // 4)
    FS_FAULTS.arm(FsFaultPlan(kind=kind, at_hit=at_hit, path_substring=target_sub))
    try:
        for position, op in enumerate(script):
            refusals += await _submit_with_retry(service, op)
            if position == len(script) // 3:
                # Cut a snapshot mid-stream so snapshot-path faults have
                # a write to hit; retry the cut through typed refusals.
                while True:
                    try:
                        await service.snapshot()
                        break
                    except StorageUnavailable:
                        refusals += 1
    finally:
        FS_FAULTS.reset()
    digests = service.shard_digests()
    await service.stop()
    return digests, refusals


def _flip_victim(data_dir: str, target: str) -> str:
    """Pick the file the bit flip corrupts: fattest WAL or newest snapshot."""
    names = sorted(os.listdir(data_dir))
    if target == "wal":
        wals = [n for n in names if n.endswith(".wal")]
        victims = [
            n
            for n in wals
            if os.path.getsize(os.path.join(data_dir, n)) > 0
        ]
        if not victims:
            raise RuntimeError(f"no non-empty WAL to corrupt in {data_dir}")
        victim = max(victims, key=lambda n: os.path.getsize(os.path.join(data_dir, n)))
    else:
        gens = [n for n in names if parse_generation(n) is not None]
        if not gens:
            raise RuntimeError(f"no snapshot generation to corrupt in {data_dir}")
        victim = max(gens, key=lambda n: parse_generation(n) or 0)
    return os.path.join(data_dir, victim)


async def _bitflip_run(
    target: str, site: str, script: List[Dict[str, Any]], workdir: str, seed: int
) -> Tuple[List[str], bool]:
    """Crash at ``site``, flip one seeded bit in a ``target`` file, recover.

    Returns the final digests plus whether ``fsck`` caught the flip —
    the acceptance bar is *both*: detection before restart, exact state
    after restart + full keyed resubmission.
    """
    safe = f"{target}-{site}".replace(".", "-")
    data_dir = os.path.join(workdir, f"bitflip-{safe}")
    config = _service_config(data_dir=data_dir)
    service = AllocationService(config)
    await service.start()
    # Arm after start: the recovery snapshot also traverses the
    # snapshot crash sites and must complete.
    at_hit = 1 if site.startswith("service.snapshot") else max(1, len(script) // 2)
    CRASH_POINTS.arm(site, at_hit=at_hit, mode="raise")
    crashed = False
    try:
        for position, op in enumerate(script):
            try:
                await service.submit(dict(op))
            except CrashPointFired:
                crashed = True
                break
            if position == len(script) // 3:
                try:
                    await service.snapshot()
                except CrashPointFired:
                    crashed = True
                    break
    finally:
        CRASH_POINTS.disarm()
    if not crashed:
        raise RuntimeError(f"crash site {site} never fired")
    service.abort()
    # The node is dead; the disk rots one bit in a surviving file.
    seeded_flip(_flip_victim(data_dir, target), seed=seed)
    fsck_detected = not run_fsck(data_dir).ok
    # Restart: recovery must quarantine / fall back, never crash.
    service = AllocationService(config)
    await service.start()
    for op in script:
        await _submit_with_retry(service, op)
    digests = service.shard_digests()
    await service.stop()
    return digests, fsck_detected


def run(n_ops: int = 48, seed: int = 0) -> ServiceChaosResult:
    return asyncio.run(_run_async(n_ops=n_ops, seed=seed))


async def _run_async(n_ops: int, seed: int) -> ServiceChaosResult:
    script = _script(n_ops)
    reference = await _reference(script)
    result = ServiceChaosResult(n_ops=n_ops, seed=seed, reference_digests=reference)
    with tempfile.TemporaryDirectory(prefix="repro-service-chaos-") as workdir:
        for profile in CHAOS_PROFILES:
            digests, kinds, stats = await _network_run(profile, seed, script, workdir)
            result.network[profile] = (digests == reference, kinds, stats)
        for site in CRASH_POINTS.sites():
            digests, crashes, dedup_hits = await _crash_run(site, script, workdir)
            result.crashes[site] = (digests == reference, crashes, dedup_hits)
        for kind in STORAGE_FAULT_KINDS:
            for target, target_sub in _STORAGE_TARGETS:
                digests, refusals = await _storage_fault_run(
                    kind, target_sub, script, workdir
                )
                result.storage_faults[f"{kind}@{target}"] = (
                    digests == reference,
                    refusals,
                )
        for target, _ in _STORAGE_TARGETS:
            for site in _BITFLIP_SITES:
                digests, fsck_detected = await _bitflip_run(
                    target, site, script, workdir, seed
                )
                result.bitflips[f"{target}@{site}"] = (
                    digests == reference,
                    fsck_detected,
                )
    return result


def render(result: ServiceChaosResult) -> str:
    parts: List[str] = [
        f"E-X8/E-X9 service chaos — {result.n_ops} keyed ops, fault seed "
        f"{result.seed}; digests vs fault-free reference",
        "",
        "E-X8 network fault profiles (through the chaos proxy):",
    ]
    rows = []
    for profile, (match, kinds, stats) in result.network.items():
        faults = sum(kinds.values())
        rows.append(
            (
                profile,
                "match" if match else "MISMATCH",
                faults,
                stats["retries"],
                stats["reconnects"],
            )
        )
    parts.append(
        format_table(
            headers=["profile", "state digest", "faults", "retries", "reconnects"],
            rows=rows,
        )
    )
    parts.append("")
    parts.append("crash points (die mid-operation, restart, retry):")
    crash_rows = []
    for site, (match, crashes, dedup_hits) in result.crashes.items():
        crash_rows.append(
            (site, "match" if match else "MISMATCH", crashes, dedup_hits)
        )
    parts.append(
        format_table(
            headers=["crash site", "state digest", "crashes", "dedup hits"],
            rows=crash_rows,
        )
    )
    parts.append("")
    parts.append("E-X9 storage write faults (degraded mode + probe recovery):")
    storage_rows = []
    for label, (match, refusals) in result.storage_faults.items():
        kind, _, target = label.partition("@")
        storage_rows.append(
            (kind, target, "match" if match else "MISMATCH", refusals)
        )
    parts.append(
        format_table(
            headers=["fault kind", "target", "state digest", "typed refusals"],
            rows=storage_rows,
        )
    )
    parts.append("")
    parts.append("E-X9 post-crash bit flips (quarantine + generation fallback):")
    flip_rows = []
    for label, (match, detected) in result.bitflips.items():
        target, _, site = label.partition("@")
        flip_rows.append(
            (
                target,
                site,
                "detected" if detected else "MISSED",
                "match" if match else "MISMATCH",
            )
        )
    parts.append(
        format_table(
            headers=["flip target", "crash site", "fsck", "state digest"],
            rows=flip_rows,
        )
    )
    parts.append("")
    parts.append(
        "verdict: "
        + (
            "all runs bit-identical to the fault-free reference"
            if result.all_match
            else "STATE DIVERGED under faults — investigate"
        )
    )
    return "\n".join(parts)
