"""E-X8: chaos matrix for the allocation service edge.

The paper's opportunistic setting loses workers and links mid-flight;
this study injects exactly those failures at the service edge and
checks the system's headline claim: **faults change latency, never
state**.  Two matrices share one deterministic operation script:

* **Network profiles** — the script is driven through a seeded
  :class:`~repro.service.chaos.ChaosProxy` (disconnects, torn frames,
  garbage bytes, delays, splits, slow-loris dribble) by the resilient
  :class:`~repro.service.AsyncServiceClient` with idempotency keys.
  The final per-shard allocator digests must be bit-identical to the
  fault-free reference run.
* **Crash points** — every registered
  :data:`~repro.service.chaos.CRASH_POINTS` site is armed in turn; the
  in-process service dies there mid-operation, restarts from
  snapshot + WAL, the client retries its keyed operation, and the
  digests must again match the reference exactly (exactly-once across
  the crash).

Run via ``repro-experiments service-chaos``.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.allocator import AllocatorConfig
from repro.experiments.reporting import format_table
from repro.service.chaos import (
    CHAOS_PROFILES,
    CRASH_POINTS,
    CrashPointFired,
    make_chaos_config,
)
from repro.service.client import AsyncServiceClient, RetryPolicy
from repro.service.config import ServiceConfig
from repro.service.server import AllocationServer
from repro.service.service import AllocationService

__all__ = ["ServiceChaosResult", "run", "render"]

#: Categories the script cycles through (they hash across shards).
_CATEGORIES = ("render", "simulate", "reduce", "index", "train")


def _service_config(data_dir: Optional[str] = None) -> ServiceConfig:
    return ServiceConfig(
        allocator=AllocatorConfig(algorithm="greedy_bucketing", seed=11),
        n_shards=3,
        data_dir=data_dir,
        durability="op",
        dedup_window=256,
    )


def _script(n_ops: int) -> List[Dict[str, Any]]:
    """The deterministic keyed operation stream every run replays."""
    ops: List[Dict[str, Any]] = []
    for i in range(n_ops):
        category = _CATEGORIES[i % len(_CATEGORIES)]
        if i % 3 == 2:
            ops.append(
                {
                    "op": "record",
                    "category": category,
                    "task_id": i,
                    "peaks": {"memory": 900.0 + 40.0 * (i % 7), "cores": 1.0},
                    "key": f"chaos/{i}",
                }
            )
        else:
            ops.append(
                {
                    "op": "allocate",
                    "category": category,
                    "task_id": i,
                    "key": f"chaos/{i}",
                }
            )
    return ops


@dataclass
class ServiceChaosResult:
    n_ops: int
    seed: int
    reference_digests: List[str]
    #: profile -> (digests_match, fault histogram, client stats)
    network: Dict[str, Tuple[bool, Dict[str, int], Dict[str, int]]] = field(
        default_factory=dict
    )
    #: site -> (digests_match, crashes survived, dedup hits after restart)
    crashes: Dict[str, Tuple[bool, int, int]] = field(default_factory=dict)

    @property
    def all_match(self) -> bool:
        return all(m for m, _, _ in self.network.values()) and all(
            m for m, _, _ in self.crashes.values()
        )


async def _reference(script: List[Dict[str, Any]]) -> List[str]:
    """Fault-free digests of the script, applied in-process."""
    service = AllocationService(_service_config())
    await service.start()
    for op in script:
        await service.submit(dict(op))
    digests = service.shard_digests()
    await service.stop()
    return digests


async def _network_run(
    profile: str, seed: int, script: List[Dict[str, Any]], workdir: str
) -> Tuple[List[str], Dict[str, int], Dict[str, int]]:
    """Drive the script through a chaos proxy; return digests + stats."""
    from repro.service.chaos import ChaosProxy

    upstream = os.path.join(workdir, f"up-{profile}.sock")
    downstream = os.path.join(workdir, f"down-{profile}.sock")
    service = AllocationService(_service_config())
    await service.start()
    server = AllocationServer(service, socket_path=upstream)
    await server.start()
    proxy = ChaosProxy(upstream, downstream, make_chaos_config(profile, seed=seed))
    await proxy.start()
    client = AsyncServiceClient(
        socket_path=downstream,
        retry=RetryPolicy(
            max_attempts=12,
            connect_timeout=2.0,
            read_timeout=2.0,
            backoff_base=0.005,
            backoff_max=0.05,
            seed=seed,
        ),
        auto_key=False,
        client_id=f"chaos-{profile}",
    )
    try:
        for op in script:
            await client.call(dict(op))
    finally:
        await client.close()
        await proxy.stop()
        await server.stop()
    digests = service.shard_digests()
    await service.stop()
    return digests, proxy.event_kinds(), client.stats()


async def _crash_run(
    site: str, script: List[Dict[str, Any]], workdir: str
) -> Tuple[List[str], int, int]:
    """Arm one crash site; restart-and-retry until the script completes."""
    data_dir = os.path.join(workdir, site.replace(".", "-"))
    config = _service_config(data_dir=data_dir)
    service = AllocationService(config)
    await service.start()
    # Snapshot sites are only traversed by the mid-script snapshot(),
    # so fire on the first hit; shard sites fire mid-stream so the
    # crash interrupts a half-ingested state.
    at_hit = 1 if site.startswith("service.snapshot") else max(1, len(script) // 2)
    CRASH_POINTS.arm(site, at_hit=at_hit, mode="raise")
    crashes = 0
    try:
        for position, op in enumerate(script):
            while True:
                try:
                    await service.submit(dict(op))
                    break
                except CrashPointFired:
                    # The daemon "died" mid-operation: restart from
                    # snapshot + WAL and retry the same keyed op — the
                    # dedup window makes the retry exactly-once.
                    crashes += 1
                    service.abort()
                    service = AllocationService(config)
                    await service.start()
            if position == len(script) // 3:
                # Exercise the snapshot path mid-stream so the
                # service.snapshot.* sites actually get hit.
                try:
                    await service.snapshot()
                except CrashPointFired:
                    crashes += 1
                    service.abort()
                    service = AllocationService(config)
                    await service.start()
    finally:
        CRASH_POINTS.disarm()
    digests = service.shard_digests()
    dedup_hits = sum(shard.dedup_hits for shard in service.shards)
    await service.stop()
    return digests, crashes, dedup_hits


def run(n_ops: int = 48, seed: int = 0) -> ServiceChaosResult:
    return asyncio.run(_run_async(n_ops=n_ops, seed=seed))


async def _run_async(n_ops: int, seed: int) -> ServiceChaosResult:
    script = _script(n_ops)
    reference = await _reference(script)
    result = ServiceChaosResult(n_ops=n_ops, seed=seed, reference_digests=reference)
    with tempfile.TemporaryDirectory(prefix="repro-service-chaos-") as workdir:
        for profile in CHAOS_PROFILES:
            digests, kinds, stats = await _network_run(profile, seed, script, workdir)
            result.network[profile] = (digests == reference, kinds, stats)
        for site in CRASH_POINTS.sites():
            digests, crashes, dedup_hits = await _crash_run(site, script, workdir)
            result.crashes[site] = (digests == reference, crashes, dedup_hits)
    return result


def render(result: ServiceChaosResult) -> str:
    parts: List[str] = [
        f"E-X8 service chaos — {result.n_ops} keyed ops, fault seed "
        f"{result.seed}; digests vs fault-free reference",
        "",
        "network fault profiles (through the chaos proxy):",
    ]
    rows = []
    for profile, (match, kinds, stats) in result.network.items():
        faults = sum(kinds.values())
        rows.append(
            (
                profile,
                "match" if match else "MISMATCH",
                faults,
                stats["retries"],
                stats["reconnects"],
            )
        )
    parts.append(
        format_table(
            headers=["profile", "state digest", "faults", "retries", "reconnects"],
            rows=rows,
        )
    )
    parts.append("")
    parts.append("crash points (die mid-operation, restart, retry):")
    crash_rows = []
    for site, (match, crashes, dedup_hits) in result.crashes.items():
        crash_rows.append(
            (site, "match" if match else "MISMATCH", crashes, dedup_hits)
        )
    parts.append(
        format_table(
            headers=["crash site", "state digest", "crashes", "dedup hits"],
            rows=crash_rows,
        )
    )
    parts.append("")
    parts.append(
        "verdict: "
        + (
            "all runs bit-identical to the fault-free reference"
            if result.all_match
            else "STATE DIVERGED under faults — investigate"
        )
    )
    return "\n".join(parts)
