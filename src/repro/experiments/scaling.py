"""E-X1: the >10k-task scaling hypothesis (Section VII).

The paper hypothesizes that "the bucketing algorithms should perform
even better on larger workflows since they are shown to perform well
and quickly converge to a steady state on workflows of around 4,500
tasks."  This study runs a synthetic workflow at increasing task counts
and reports (a) the overall AWE and (b) the steady-state AWE measured
over the final quarter of completions — if the hypothesis holds, the
overall figure approaches the steady-state figure as the exploratory
and convergence transients amortize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.resources import MEMORY
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_cell
from repro.metrics.summary import convergence_series

__all__ = ["ScalingResult", "run", "render"]

DEFAULT_TASK_COUNTS: Tuple[int, ...] = (500, 1000, 2000, 5000, 10000)


@dataclass
class ScalingResult:
    workflow: str
    algorithm: str
    task_counts: Tuple[int, ...]
    overall_awe: List[float]          # memory AWE per task count
    steady_awe: List[float]           # final-quarter windowed AWE
    attempts_per_task: List[float]

    def overall_gap(self, index: int) -> float:
        """Distance of overall AWE from the steady state at one size."""
        return self.steady_awe[index] - self.overall_awe[index]


def run(
    workflow: str = "normal",
    algorithm: str = "exhaustive_bucketing",
    task_counts: Sequence[int] = DEFAULT_TASK_COUNTS,
    config: Optional[ExperimentConfig] = None,
) -> ScalingResult:
    """Run the scaling sweep for one (workflow, algorithm) pair."""
    base = config if config is not None else ExperimentConfig()
    overall: List[float] = []
    steady: List[float] = []
    attempts: List[float] = []
    for n_tasks in task_counts:
        cfg = base.with_(n_tasks=n_tasks)
        result = run_cell(workflow, algorithm, cfg)
        overall.append(result.ledger.awe(MEMORY))
        series = convergence_series(result, MEMORY, window=max(50, n_tasks // 20))
        tail = series[-max(1, len(series) // 4):]
        steady.append(sum(tail) / len(tail))
        attempts.append(result.n_attempts / result.n_tasks)
    return ScalingResult(
        workflow=workflow,
        algorithm=algorithm,
        task_counts=tuple(task_counts),
        overall_awe=overall,
        steady_awe=steady,
        attempts_per_task=attempts,
    )


def render(result: ScalingResult) -> str:
    rows = [
        (
            result.task_counts[i],
            result.overall_awe[i],
            result.steady_awe[i],
            result.overall_gap(i),
            result.attempts_per_task[i],
        )
        for i in range(len(result.task_counts))
    ]
    return format_table(
        headers=["tasks", "overall AWE(mem)", "steady AWE(mem)", "gap", "attempts/task"],
        rows=rows,
        title=(
            f"E-X1 scaling — {result.workflow} x {result.algorithm}: "
            "overall AWE approaches the steady state as the run grows"
        ),
    )
