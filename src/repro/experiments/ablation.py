"""E-X2: ablations of the bucketing design choices.

Three knobs DESIGN.md calls out, each exercised on the workflow whose
behaviour it exists for:

* **Significance weighting** (recency): the paper sets a record's
  significance to its task ID so fresher records dominate bucket
  probabilities.  Ablated to uniform significance on the Phasing
  Trimodal workflow — without recency, stale phase-1 records keep
  pulling allocations down (or up) after a phase change.
* **Exploratory budget** (``min_records``): more bootstrap records mean
  better first buckets but more bootstrap waste.
* **Exhaustive Bucketing's bucket cap** (``max_buckets``, paper: 10):
  fewer candidate configurations trade fidelity for speed.
* **Bounded record stores** (``record_capacity`` x compaction policy):
  AWE cost of forgetting history, relative to the paper's unbounded
  store — the quality side of the million-record hot-path work
  (docs/PERFORMANCE.md).  Each bounded row carries an ``awe_delta``
  against the unbounded reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.allocator import ExploratoryConfig
from repro.core.resources import MEMORY
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_cell

__all__ = [
    "AblationRow",
    "AblationResult",
    "run_significance_ablation",
    "run_exploration_ablation",
    "run_bucket_cap_ablation",
    "run_capacity_ablation",
    "run",
    "render",
]


@dataclass(frozen=True)
class AblationRow:
    study: str
    variant: str
    workflow: str
    algorithm: str
    awe_memory: float
    failed_attempts: int
    attempts: int
    #: AWE difference vs the study's reference variant (None when the
    #: row *is* the reference, or the study has no reference).  Negative
    #: = better than the reference.
    awe_delta: Optional[float] = None


@dataclass
class AblationResult:
    rows: List[AblationRow]

    def of_study(self, study: str) -> List[AblationRow]:
        return [r for r in self.rows if r.study == study]


def _row(study: str, variant: str, workflow: str, algorithm: str, result) -> AblationRow:
    return AblationRow(
        study=study,
        variant=variant,
        workflow=workflow,
        algorithm=algorithm,
        awe_memory=result.ledger.awe(MEMORY),
        failed_attempts=result.n_failed_attempts,
        attempts=result.n_attempts,
    )


def run_significance_ablation(
    config: Optional[ExperimentConfig] = None,
    workflow: str = "trimodal",
    algorithm: str = "exhaustive_bucketing",
    policies: Sequence[str] = ("task_id", "uniform", "exponential_decay"),
) -> List[AblationRow]:
    """Compare significance policies on a phasing stream.

    The paper's ``task_id`` policy gives fresher records linearly more
    weight; ``uniform`` removes recency entirely (old phases keep
    polluting the buckets); ``exponential_decay`` forgets much faster.
    """
    config = config if config is not None else ExperimentConfig()
    rows: List[AblationRow] = []
    for policy in policies:
        result = run_cell(workflow, algorithm, config, significance=policy)
        label = policy + (" (paper)" if policy == "task_id" else "")
        if policy == "uniform":
            label = "uniform (ablated)"
        rows.append(_row("significance", label, workflow, algorithm, result))
    return rows


def run_exploration_ablation(
    config: Optional[ExperimentConfig] = None,
    workflow: str = "normal",
    algorithm: str = "exhaustive_bucketing",
    budgets: Sequence[int] = (3, 10, 30, 100),
) -> List[AblationRow]:
    """Sweep the exploratory record budget (paper: 10)."""
    config = config if config is not None else ExperimentConfig()
    rows: List[AblationRow] = []
    for budget in budgets:
        result = run_cell(
            workflow,
            algorithm,
            config,
            exploratory=ExploratoryConfig(min_records=budget),
        )
        label = f"min_records={budget}" + (" (paper)" if budget == 10 else "")
        rows.append(_row("exploration", label, workflow, algorithm, result))
    return rows


def run_bucket_cap_ablation(
    config: Optional[ExperimentConfig] = None,
    workflow: str = "bimodal",
    caps: Sequence[int] = (1, 2, 4, 10, 20),
) -> List[AblationRow]:
    """Sweep Exhaustive Bucketing's bucket cap (paper: 10)."""
    config = config if config is not None else ExperimentConfig()
    rows: List[AblationRow] = []
    for cap in caps:
        result = run_cell(
            workflow,
            "exhaustive_bucketing",
            config,
            algorithm_kwargs={"max_buckets": cap},
        )
        label = f"max_buckets={cap}" + (" (paper)" if cap == 10 else "")
        rows.append(_row("bucket_cap", label, workflow, "exhaustive_bucketing", result))
    return rows


def run_capacity_ablation(
    config: Optional[ExperimentConfig] = None,
    workflow: str = "trimodal",
    algorithm: str = "exhaustive_bucketing",
    capacities: Sequence[int] = (100, 500, 2000),
    policies: Sequence[str] = ("evict_min", "decay", "reservoir"),
) -> List[AblationRow]:
    """Bounded record stores: AWE impact of capacity x compaction policy.

    The paper retains every completed-task record, which is what makes
    the allocation hot path O(history).  Bounding the store caps both
    memory and per-insert cost, at the price of forgetting: each
    (capacity, policy) cell is compared against the unbounded reference
    run on the same stream, and the row's ``awe_delta`` carries the
    AWE(mem) change attributable to the bound (negative = the bounded
    store *improved* AWE, which recency-biased eviction can do on
    phasing workflows by forgetting stale phases faster).

    Policies are the :class:`~repro.core.records.RecordList` compaction
    modes: ``evict_min`` (sliding window over significance), ``decay``
    (significance-decay batch compaction) and ``reservoir``
    (deterministic seeded reservoir downsampling).
    """
    import dataclasses

    config = config if config is not None else ExperimentConfig()
    reference = run_cell(workflow, algorithm, config)
    rows: List[AblationRow] = [
        _row("capacity", "unbounded (paper)", workflow, algorithm, reference)
    ]
    ref_awe = rows[0].awe_memory
    for policy in policies:
        for capacity in capacities:
            result = run_cell(
                workflow,
                algorithm,
                config,
                algorithm_kwargs={
                    "record_capacity": capacity,
                    "record_compaction": policy,
                },
            )
            row = _row(
                "capacity",
                f"{policy} cap={capacity}",
                workflow,
                algorithm,
                result,
            )
            rows.append(
                dataclasses.replace(row, awe_delta=row.awe_memory - ref_awe)
            )
    return rows


def run(config: Optional[ExperimentConfig] = None) -> AblationResult:
    """Run all four ablations."""
    rows: List[AblationRow] = []
    rows.extend(run_significance_ablation(config))
    rows.extend(run_exploration_ablation(config))
    rows.extend(run_bucket_cap_ablation(config))
    rows.extend(run_capacity_ablation(config))
    return AblationResult(rows=rows)


def render(result: AblationResult) -> str:
    parts: List[str] = []
    for study in ("significance", "exploration", "bucket_cap", "capacity"):
        rows = result.of_study(study)
        if not rows:
            continue
        with_delta = any(r.awe_delta is not None for r in rows)
        headers = ["variant", "workflow", "algorithm", "AWE(mem)"]
        if with_delta:
            headers.append("dAWE")
        headers += ["failed", "attempts"]
        table_rows = []
        for r in rows:
            cells: List[object] = [r.variant, r.workflow, r.algorithm, r.awe_memory]
            if with_delta:
                cells.append("-" if r.awe_delta is None else f"{r.awe_delta:+.4f}")
            cells += [r.failed_attempts, r.attempts]
            table_rows.append(tuple(cells))
        parts.append(
            format_table(
                headers=headers,
                rows=table_rows,
                title=f"E-X2 ablation — {study}",
            )
        )
        parts.append("")
    return "\n".join(parts)
