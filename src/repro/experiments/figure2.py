"""Figure 2: per-task resource consumption of ColmenaXTB and TopEFT.

The paper's Figure 2 scatters each task's peak consumption (cores,
memory, disk, execution time) against its submission order for both
production workflows, illustrating task specialization, phasing, and
inherent stochasticity (Section III-B).  This module regenerates the
underlying data from the trace-shaped generators and renders
per-category summary statistics plus ASCII series — the quantities the
case study's claims rest on:

* ColmenaXTB: ``evaluate_mpnn`` memory in 1.0-1.2 GB vs
  ``compute_atomization_energy`` around 200 MB; energy cores scattered
  over 0.9-3.6; disk ~10 MB everywhere; two strict phases.
* TopEFT: preprocessing/accumulating memory both ~180 MB; processing
  memory split into ~450/~580 MB clusters; cores <= 1 with outliers to
  3; disk constant at 306 MB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.core.resources import CORES, DISK, MEMORY, Resource
from repro.experiments.reporting import format_table
from repro.workflows.colmena import make_colmena_workflow
from repro.workflows.spec import WorkflowSpec
from repro.workflows.topeft import make_topeft_workflow

__all__ = ["CategoryStats", "Figure2Result", "run", "render"]

_REPORTED: Tuple[Tuple[str, Resource], ...] = (
    ("cores", CORES),
    ("memory_mb", MEMORY),
    ("disk_mb", DISK),
)


@dataclass(frozen=True)
class CategoryStats:
    """Summary of one category's per-resource consumption."""

    workflow: str
    category: str
    n_tasks: int
    #: resource key -> (min, p50, mean, max)
    stats: Mapping[str, Tuple[float, float, float, float]]


@dataclass
class Figure2Result:
    workflows: Dict[str, WorkflowSpec]
    categories: List[CategoryStats]

    def stats_of(self, workflow: str, category: str) -> CategoryStats:
        for entry in self.categories:
            if entry.workflow == workflow and entry.category == category:
                return entry
        raise KeyError((workflow, category))


def _category_stats(workflow: WorkflowSpec) -> List[CategoryStats]:
    out: List[CategoryStats] = []
    for category in workflow.categories():
        tasks = workflow.tasks_of(category)
        stats: Dict[str, Tuple[float, float, float, float]] = {}
        for key, res in _REPORTED:
            values = np.array([t.consumption[res] for t in tasks])
            stats[key] = (
                float(values.min()),
                float(np.median(values)),
                float(values.mean()),
                float(values.max()),
            )
        durations = np.array([t.duration for t in tasks])
        stats["time_s"] = (
            float(durations.min()),
            float(np.median(durations)),
            float(durations.mean()),
            float(durations.max()),
        )
        out.append(
            CategoryStats(
                workflow=workflow.name,
                category=category,
                n_tasks=len(tasks),
                stats=stats,
            )
        )
    return out


def run(seed: int = 0) -> Figure2Result:
    """Generate both production-shaped traces and their statistics."""
    colmena = make_colmena_workflow(seed=seed)
    topeft = make_topeft_workflow(seed=seed)
    categories = _category_stats(colmena) + _category_stats(topeft)
    return Figure2Result(
        workflows={"colmena_xtb": colmena, "topeft": topeft},
        categories=categories,
    )


def render(result: Figure2Result) -> str:
    """Render the per-category statistics as the Figure 2 data table."""
    rows = []
    for entry in result.categories:
        for metric, (lo, p50, mean, hi) in entry.stats.items():
            rows.append(
                (entry.workflow, entry.category, entry.n_tasks, metric, lo, p50, mean, hi)
            )
    return format_table(
        headers=["workflow", "category", "tasks", "metric", "min", "p50", "mean", "max"],
        rows=rows,
        title="Figure 2 — per-category peak resource consumption",
        float_format="{:.2f}",
    )
