"""Figure 5: Absolute Workflow Efficiency grid.

3 resources (cores, memory, disk) x 7 workflows x 7 allocation
algorithms — the paper's headline comparison.  ``run`` executes the
full grid; ``render`` prints one table per resource with workflows as
columns and algorithms as rows, the transposition of the paper's bar
groups.

The paper-shape expectations this experiment is checked against
(EXPERIMENTS.md records paper-vs-measured for every cell family):

* Whole Machine is the efficiency floor everywhere;
* the bucketing algorithms lead or tie the best alternative on most
  (resource, workflow) cells and never collapse to the floor;
* Uniform/Normal land around 55-80 %, Bimodal/Trimodal lower,
  Exponential is the hardest workflow for every algorithm;
* TopEFT disk is near-perfect for the bucketing algorithms (constant
  306 MB consumption) while Max Seen is capped by its 250 MB histogram
  rounding; ColmenaXTB disk is poor for everyone (tiny consumption
  against the 1 GB exploratory floor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import PAPER_ALGORITHMS, PAPER_WORKFLOWS, ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import GridResult, run_grid

__all__ = ["Figure5Result", "run", "render", "REPORTED_RESOURCES"]

REPORTED_RESOURCES: Tuple[str, ...] = ("cores", "memory", "disk")


@dataclass
class Figure5Result:
    grid: GridResult

    def awe_table(self, resource_key: str) -> Dict[str, Dict[str, float]]:
        """algorithm -> workflow -> AWE for one resource."""
        table: Dict[str, Dict[str, float]] = {}
        for algorithm in self.grid.algorithms:
            table[algorithm] = {
                workflow: self.grid.awe(workflow, algorithm, resource_key)
                for workflow in self.grid.workflows
            }
        return table

    def best_per_cell(self, resource_key: str) -> Dict[str, str]:
        """workflow -> winning algorithm for one resource."""
        return {
            workflow: self.grid.best_algorithm(workflow, resource_key)
            for workflow in self.grid.workflows
        }


def run(
    config: Optional[ExperimentConfig] = None,
    workflows: Sequence[str] = PAPER_WORKFLOWS,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    verbose: bool = False,
    jobs: int = 1,
    shutdown=None,
) -> Figure5Result:
    """Execute the AWE grid (the expensive one: 49 simulations).

    ``jobs`` > 1 runs the cells in parallel worker processes; results
    are identical to the serial path.
    """
    grid = run_grid(
        workflows=workflows,
        algorithms=algorithms,
        config=config,
        verbose=verbose,
        jobs=jobs,
        shutdown=shutdown,
    )
    return Figure5Result(grid=grid)


def render(result: Figure5Result) -> str:
    """Render one AWE table per resource, plus per-cell winners."""
    parts: List[str] = []
    for resource_key in REPORTED_RESOURCES:
        if not any(
            resource_key in summary.awe for summary in result.grid.summaries().values()
        ):
            continue
        table = result.awe_table(resource_key)
        rows = [
            (algorithm,) + tuple(table[algorithm][wf] for wf in result.grid.workflows)
            for algorithm in result.grid.algorithms
        ]
        parts.append(
            format_table(
                headers=["algorithm"] + list(result.grid.workflows),
                rows=rows,
                title=f"Figure 5 — AWE ({resource_key})",
            )
        )
        winners = result.best_per_cell(resource_key)
        parts.append(
            "best per workflow: "
            + ", ".join(f"{wf}={algo}" for wf, algo in winners.items())
        )
        parts.append("")
    return "\n".join(parts)
