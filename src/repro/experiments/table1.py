"""Table I: time to compute a new bucketing state and allocation.

The paper reports the average microseconds for Greedy and Exhaustive
Bucketing to recompute their bucketing state and derive one allocation,
at record-list sizes 10 / 200 / 1000 / 2000 / 5000 — the worst case
where every task triggers a recomputation (Section V-C).

Paper-shape expectation: Greedy Bucketing grows superlinearly (its
recursion re-scans every split segment) and is orders of magnitude
slower than Exhaustive Bucketing at 5000 records; Exhaustive Bucketing
grows roughly linearly (one sorted walk plus at most K <= 10 fixed-size
table evaluations).  Absolute numbers differ from the paper's C
implementation; the growth *ratio* is the reproduced quantity.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.buckets import BucketState
from repro.core.exhaustive import exhaustive_break_indices
from repro.core.greedy import greedy_break_indices, greedy_break_indices_literal
from repro.core.records import RecordList
from repro.experiments.reporting import format_table

__all__ = ["Table1Result", "PAPER_RECORD_COUNTS", "run", "render", "time_algorithm"]

#: The record-list sizes of Table I.
PAPER_RECORD_COUNTS: Tuple[int, ...] = (10, 200, 1000, 2000, 5000)


def _make_records(n: int, seed: int) -> RecordList:
    """A record list shaped like the paper's running example: N(8, 2) GB."""
    rng = np.random.default_rng(seed)
    values = np.clip(rng.normal(8000.0, 2000.0, n), 50.0, None)
    records = RecordList()
    for task_id, value in enumerate(values):
        records.add(float(value), significance=float(task_id + 1), task_id=task_id)
    return records


def time_algorithm(
    algorithm: str, records: RecordList, repeats: int = 3, seed: int = 0
) -> float:
    """Average seconds for one state computation + allocation."""
    rng = np.random.default_rng(seed)
    breakers = {
        "greedy_bucketing": greedy_break_indices,
        "greedy_bucketing_literal": greedy_break_indices_literal,
        "exhaustive_bucketing": exhaustive_break_indices,
    }
    if algorithm not in breakers:
        raise KeyError(f"table1 only times the bucketing algorithms, not {algorithm!r}")
    compute = functools.partial(breakers[algorithm], records)
    total = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        breaks = compute()
        state = BucketState(records, breaks)
        state.first_allocation(rng)
        total += time.perf_counter() - start
    return total / repeats


@dataclass
class Table1Result:
    record_counts: Tuple[int, ...]
    #: algorithm -> list of average microseconds aligned with record_counts
    microseconds: Dict[str, List[float]]

    def ratio(self, count: int) -> float:
        """GB / EB time ratio at one record count (paper: >> 1 at 5000)."""
        idx = self.record_counts.index(count)
        eb = self.microseconds["exhaustive_bucketing"][idx]
        gb = self.microseconds["greedy_bucketing"][idx]
        return gb / eb if eb > 0 else float("inf")


def run(
    record_counts: Sequence[int] = PAPER_RECORD_COUNTS,
    repeats: int = 3,
    seed: int = 0,
    include_literal: bool = True,
) -> Table1Result:
    """Measure the algorithms at every record count.

    ``include_literal`` also times the literal transcription of
    Algorithm 1 (O(n) cost per candidate), which reproduces the paper's
    GB blowup; the optimized GB row shows this repo's prefix-sum
    implementation.  The literal row uses a single repeat — it is the
    slow one by design.
    """
    names = ["greedy_bucketing", "exhaustive_bucketing"]
    if include_literal:
        names.append("greedy_bucketing_literal")
    microseconds: Dict[str, List[float]] = {name: [] for name in names}
    for count in record_counts:
        records = _make_records(count, seed=seed)
        for algorithm in names:
            n_repeats = 1 if algorithm == "greedy_bucketing_literal" else repeats
            seconds = time_algorithm(algorithm, records, repeats=n_repeats, seed=seed)
            microseconds[algorithm].append(seconds * 1e6)
    return Table1Result(
        record_counts=tuple(record_counts), microseconds=microseconds
    )


_ROW_LABELS = (
    ("greedy_bucketing_literal", "GB (paper's literal Algorithm 1)"),
    ("greedy_bucketing", "GB (this repo, prefix sums)"),
    ("exhaustive_bucketing", "EB"),
)


def render(result: Table1Result) -> str:
    """Render the Table I layout: one row per algorithm."""
    rows = []
    for algorithm, label in _ROW_LABELS:
        if algorithm in result.microseconds:
            rows.append((label,) + tuple(result.microseconds[algorithm]))
    table = format_table(
        headers=["algo"] + [str(c) for c in result.record_counts],
        rows=rows,
        title="Table I — average time (microseconds) to compute a new bucketing state + allocation",
        float_format="{:.1f}",
    )
    largest = result.record_counts[-1]
    lines = [table]
    if "greedy_bucketing_literal" in result.microseconds:
        idx = result.record_counts.index(largest)
        lit = result.microseconds["greedy_bucketing_literal"][idx]
        eb = result.microseconds["exhaustive_bucketing"][idx]
        lines.append(
            f"literal GB / EB ratio at {largest} records: {lit / eb:.0f}x "
            "(paper: ~270x — GB's recursive rescans blow up, EB stays ~linear)"
        )
    lines.append(
        f"optimized GB / EB ratio at {largest} records: {result.ratio(largest):.1f}x"
    )
    return "\n".join(lines)
