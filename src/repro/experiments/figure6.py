"""Figure 6: resource waste split by cause.

For each of 6 algorithms (Whole Machine is dropped, as in the paper —
its bar would dwarf the rest) x 7 workflows x 3 resources, the waste is
decomposed into *Internal Fragmentation* and *Failed Allocation*
(Section II-C), normalized by total consumption so workflows of
different scales are comparable.

Paper-shape expectations: over-estimation (fragmentation) dominates for
most algorithms; Quantized Bucketing is the exception with a heavy
failed-allocation share; Min Waste / Max Throughput carry a visibly
larger failed share than Max Seen and the bucketing algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.experiments.config import PAPER_ALGORITHMS, PAPER_WORKFLOWS, ExperimentConfig
from repro.experiments.figure5 import REPORTED_RESOURCES
from repro.experiments.reporting import format_table
from repro.experiments.runner import GridResult, run_grid

__all__ = ["Figure6Result", "FIGURE6_ALGORITHMS", "run", "render"]

#: The paper removes the Whole Machine baseline "for better visualization".
FIGURE6_ALGORITHMS: Tuple[str, ...] = tuple(
    a for a in PAPER_ALGORITHMS if a != "whole_machine"
)


@dataclass
class Figure6Result:
    grid: GridResult

    def waste_rows(
        self, resource_key: str
    ) -> List[Tuple[str, str, float, float, float]]:
        """(workflow, algorithm, frag, failed, failed_share) rows.

        ``frag`` and ``failed`` are normalized by the workflow's total
        true consumption of the resource, so 1.0 means "as much waste as
        useful work".
        """
        rows: List[Tuple[str, str, float, float, float]] = []
        for workflow in self.grid.workflows:
            for algorithm in self.grid.algorithms:
                result = self.grid.cells[workflow, algorithm]
                resource = next(
                    r for r in result.ledger.resources if r.key == resource_key
                )
                consumption = result.ledger.total_consumption(resource)
                breakdown = result.ledger.waste(resource)
                scale = consumption if consumption > 0 else 1.0
                rows.append(
                    (
                        workflow,
                        algorithm,
                        breakdown.internal_fragmentation / scale,
                        breakdown.failed_allocation / scale,
                        breakdown.fraction_failed(),
                    )
                )
        return rows

    def failed_share(self, workflow: str, algorithm: str, resource_key: str) -> float:
        result = self.grid.cells[workflow, algorithm]
        resource = next(r for r in result.ledger.resources if r.key == resource_key)
        return result.ledger.waste(resource).fraction_failed()


def run(
    config: Optional[ExperimentConfig] = None,
    workflows: Sequence[str] = PAPER_WORKFLOWS,
    algorithms: Sequence[str] = FIGURE6_ALGORITHMS,
    verbose: bool = False,
    jobs: int = 1,
    shutdown=None,
) -> Figure6Result:
    """Execute the waste-decomposition grid (42 simulations).

    ``jobs`` > 1 runs the cells in parallel worker processes; results
    are identical to the serial path.
    """
    grid = run_grid(
        workflows=workflows,
        algorithms=algorithms,
        config=config,
        verbose=verbose,
        jobs=jobs,
        shutdown=shutdown,
    )
    return Figure6Result(grid=grid)


def render(result: Figure6Result) -> str:
    """One table per resource: normalized waste split per cell."""
    parts: List[str] = []
    for resource_key in REPORTED_RESOURCES:
        rows = result.waste_rows(resource_key)
        parts.append(
            format_table(
                headers=[
                    "workflow",
                    "algorithm",
                    "frag/consumed",
                    "failed/consumed",
                    "failed share",
                ],
                rows=rows,
                title=f"Figure 6 — waste decomposition ({resource_key})",
            )
        )
        parts.append("")
    return "\n".join(parts)
