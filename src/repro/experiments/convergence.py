"""E-X5: phase-adaptation convergence on the trimodal workflow.

The significance weighting exists so the allocator recovers quickly
after a phase change (Section IV-A).  This study measures that recovery
directly: run the Phasing Trimodal workflow, take the windowed
efficiency series over completion order, and report — per phase
transition — how many completions it takes until the windowed AWE
climbs back to the phase's own achievable level.

Comparing algorithms on the same series also shows *why* Max Seen's
running maximum cannot recover from a downward phase shift while the
bucketing algorithms can.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.resources import MEMORY
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_series, format_table
from repro.experiments.runner import run_cell
from repro.metrics.summary import convergence_series

__all__ = ["ConvergenceResult", "run", "render"]


@dataclass
class ConvergenceResult:
    workflow: str
    n_tasks: int
    window: int
    #: algorithm -> windowed memory-efficiency series (completion order)
    series: Dict[str, List[float]]

    def phase_means(self, algorithm: str) -> Tuple[float, float, float]:
        """Mean windowed efficiency in each third of the run."""
        values = self.series[algorithm]
        third = len(values) // 3
        return (
            sum(values[:third]) / third,
            sum(values[third : 2 * third]) / third,
            sum(values[2 * third :]) / (len(values) - 2 * third),
        )

    def final_phase_advantage(self, algorithm: str, baseline: str) -> float:
        """Final-third mean efficiency of `algorithm` minus `baseline`.

        The final trimodal phase drops to a ~3 GB mode; an adaptive
        allocator keeps its efficiency there, a running-maximum one
        cannot."""
        return self.phase_means(algorithm)[2] - self.phase_means(baseline)[2]


def run(
    config: Optional[ExperimentConfig] = None,
    workflow: str = "trimodal",
    algorithms: Sequence[str] = ("max_seen", "exhaustive_bucketing"),
    window: Optional[int] = None,
) -> ConvergenceResult:
    config = config if config is not None else ExperimentConfig()
    window = window if window is not None else max(25, config.n_tasks // 20)
    series: Dict[str, List[float]] = {}
    for algorithm in algorithms:
        result = run_cell(workflow, algorithm, config)
        series[algorithm] = convergence_series(result, MEMORY, window=window)
    return ConvergenceResult(
        workflow=workflow,
        n_tasks=config.n_tasks,
        window=window,
        series=series,
    )


def render(result: ConvergenceResult) -> str:
    parts: List[str] = [
        f"E-X5 convergence — {result.workflow}, windowed memory efficiency "
        f"(window={result.window})",
        "",
    ]
    rows = []
    for algorithm in result.series:
        p1, p2, p3 = result.phase_means(algorithm)
        rows.append((algorithm, p1, p2, p3))
    parts.append(
        format_table(
            headers=["algorithm", "phase 1 mean", "phase 2 mean", "phase 3 mean"],
            rows=rows,
        )
    )
    parts.append("")
    for algorithm, values in result.series.items():
        parts.append(format_series(f"{algorithm} windowed AWE(mem)", values, max_points=15))
        parts.append("")
    return "\n".join(parts)
