"""Figure 3b/3c: the bucketing approach on the running example.

Figures 3a-3c of the paper are illustrative rather than experimental —
3a is the architecture, 3b shows buckets derived from 2 000 records of
the N(8 GB, 2 GB) running example, 3c shows Greedy Bucketing's
recursive break-point discovery.  This module regenerates the
*quantitative* content of 3b/3c: build the 2 000-record list, run both
algorithms, and render the resulting bucket structures (break values,
representatives, probabilities) plus the expected-waste cost each
configuration achieves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.buckets import BucketState
from repro.core.cost import exhaustive_cost
from repro.core.exhaustive import exhaustive_break_indices
from repro.core.greedy import greedy_break_indices
from repro.core.records import RecordList
from repro.experiments.reporting import format_table

__all__ = ["Figure3Result", "run", "render"]

#: The running example of Section IV-A: 2000 tasks, memory ~ N(8, 2) GB.
N_RECORDS = 2000
MEAN_MB = 8000.0
STD_MB = 2000.0


@dataclass
class Figure3Result:
    n_records: int
    #: algorithm -> (break values MB, state, expected waste)
    states: Dict[str, Tuple[Tuple[float, ...], BucketState, float]]
    single_bucket_cost: float

    def n_buckets(self, algorithm: str) -> int:
        return len(self.states[algorithm][1])

    def expected_waste(self, algorithm: str) -> float:
        return self.states[algorithm][2]


def run(n_records: int = N_RECORDS, seed: int = 0) -> Figure3Result:
    """Build the running example and compute both bucket structures."""
    rng = np.random.default_rng(seed)
    values = np.clip(rng.normal(MEAN_MB, STD_MB, n_records), 100.0, None)
    records = RecordList()
    for task_id, value in enumerate(values):
        records.add(float(value), significance=float(task_id + 1), task_id=task_id)

    states: Dict[str, Tuple[Tuple[float, ...], BucketState, float]] = {}
    for name, breaks in (
        ("greedy_bucketing", greedy_break_indices(records)),
        ("exhaustive_bucketing", exhaustive_break_indices(records)),
    ):
        state = BucketState(records, breaks)
        cost = exhaustive_cost(state.reps, state.probs, state.estimates)
        break_values = tuple(float(records.values[b]) for b in breaks[:-1])
        states[name] = (break_values, state, float(cost))

    single = BucketState.single(records)
    single_cost = float(exhaustive_cost(single.reps, single.probs, single.estimates))
    return Figure3Result(
        n_records=n_records, states=states, single_bucket_cost=single_cost
    )


def render(result: Figure3Result) -> str:
    parts: List[str] = [
        f"Figure 3b/3c — bucketing the running example "
        f"(N({MEAN_MB / 1000:.0f} GB, {STD_MB / 1000:.0f} GB), "
        f"{result.n_records} records)",
        "",
    ]
    for algorithm, (break_values, state, cost) in result.states.items():
        rows = [
            (i + 1, b.rep, b.prob, b.estimate, b.count)
            for i, b in enumerate(state.buckets)
        ]
        parts.append(
            format_table(
                headers=["bucket", "rep (MB)", "prob", "estimate (MB)", "records"],
                rows=rows,
                title=(
                    f"{algorithm}: {len(state)} buckets, "
                    f"break values at {[round(v) for v in break_values]} MB, "
                    f"expected waste {cost:.0f} MB"
                ),
                float_format="{:.3f}",
            )
        )
        parts.append("")
    parts.append(
        f"single-bucket expected waste: {result.single_bucket_cost:.0f} MB "
        "(what either algorithm would pay for not splitting)"
    )
    return "\n".join(parts)
