"""Shared experiment configuration.

Centralizes the paper's evaluation settings (Section V-A) so every
figure/table module runs the same testbed: 16-core / 64 GB workers,
20-50 opportunistic workers with a ramp-up, conservative bucketing
exploration with 10 records, significance = task ID.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.core.allocator import AllocatorConfig
from repro.sim.faults import FaultConfig
from repro.sim.manager import SimulationConfig
from repro.sim.pool import PoolConfig
from repro.sim.profiles import ConsumptionProfile, LinearRampProfile
from repro.sim.resilience import ResilienceConfig
from repro.workflows.colmena import make_colmena_workflow
from repro.workflows.spec import WorkflowSpec
from repro.workflows.synthetic import SYNTHETIC_WORKFLOWS, make_synthetic_workflow
from repro.workflows.topeft import make_topeft_workflow

__all__ = [
    "PAPER_ALGORITHMS",
    "PAPER_WORKFLOWS",
    "ExperimentConfig",
    "make_workflow",
]

#: The 7 algorithms of the evaluation, in the paper's presentation order.
PAPER_ALGORITHMS: Tuple[str, ...] = (
    "whole_machine",
    "max_seen",
    "min_waste",
    "max_throughput",
    "quantized_bucketing",
    "greedy_bucketing",
    "exhaustive_bucketing",
)

#: The 7 workflows: five synthetic + the two production-shaped traces.
PAPER_WORKFLOWS: Tuple[str, ...] = SYNTHETIC_WORKFLOWS + ("colmena_xtb", "topeft")


def make_workflow(
    name: str, n_tasks: int = 1000, seed: Optional[int] = 0
) -> WorkflowSpec:
    """Build any of the 7 evaluation workflows by name.

    ``n_tasks`` applies to the synthetic workflows; the production-shaped
    traces use their published task counts scaled by ``n_tasks / 1000``.
    """
    if name in SYNTHETIC_WORKFLOWS:
        return make_synthetic_workflow(name, n_tasks=n_tasks, seed=seed)
    if name == "colmena_xtb":
        return make_colmena_workflow(seed=seed, scale=n_tasks / 1000.0)
    if name == "topeft":
        return make_topeft_workflow(seed=seed, scale=n_tasks / 1000.0)
    raise KeyError(f"unknown workflow {name!r}; choose from {PAPER_WORKFLOWS}")


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by the figure/table experiments.

    Defaults reproduce the paper's testbed; the ablation and scaling
    studies override individual fields.
    """

    n_workers: int = 20
    ramp_up_seconds: float = 600.0
    n_tasks: int = 1000
    workflow_seed: int = 0
    allocator_seed: int = 1  # reprolint: disable=R7  # pinned by the paper's testbed
    pool_seed: int = 2  # reprolint: disable=R7  # pinned by the paper's testbed
    profile: ConsumptionProfile = field(  # reprolint: disable=R7  # object-valued, API-only
        default_factory=LinearRampProfile
    )
    max_outstanding: Optional[int] = None  # reprolint: disable=R7  # API-only throttle
    #: Optional fault-injection schedule (preemptions, kills, dispatch
    #: failures, degradation); ``None`` runs fault-free.  Applies to
    #: every cell built from this config, so whole grids can be swept
    #: under identical adversity.
    faults: Optional[FaultConfig] = None
    #: Optional task-level resilience policy (retry budgets, deadlines,
    #: backoff, quarantine, circuit breaker, watchdog); ``None`` keeps
    #: the paper's unbounded retry behaviour.
    resilience: Optional[ResilienceConfig] = None
    #: Directory for crash-safe grid state (the completed-cell journal
    #: and the in-flight simulation snapshot).  ``None`` disables
    #: durability; see :mod:`repro.checkpoint`.
    checkpoint_dir: Optional[str] = None
    #: Wall-clock seconds between in-cell simulation snapshots.
    checkpoint_interval: float = 30.0
    #: Snapshot every N engine events instead of on a wall-clock timer
    #: (deterministic; used by the bit-identical resume tests).
    # reprolint: disable=R7  # test-harness knob, deliberately not CLI-exposed
    checkpoint_every_events: Optional[int] = None
    #: Continue from the journal/snapshot in ``checkpoint_dir`` instead
    #: of starting fresh.  Requires the journal to match this config
    #: (grid digest) — a mismatch is refused, never silently rerun.
    resume: bool = False

    def simulation_config(self, algorithm: str, **allocator_overrides) -> SimulationConfig:
        return SimulationConfig(
            allocator=AllocatorConfig(
                algorithm=algorithm, seed=self.allocator_seed, **allocator_overrides
            ),
            pool=PoolConfig(
                n_workers=self.n_workers,
                ramp_up_seconds=self.ramp_up_seconds,
                seed=self.pool_seed,
            ),
            profile=self.profile,
            max_outstanding=self.max_outstanding,
            faults=self.faults,
            resilience=self.resilience,
        )

    def with_(self, **changes) -> "ExperimentConfig":
        return replace(self, **changes)
