"""E-X4: robustness to external stochasticity (Section II-D2).

The paper's *prior-free* design goal is justified by external
stochasticity: the same workflow behaves differently across runs
(cluster load, input drift, inherent task randomness), so an allocator
must not depend on the previous run looking like the current one.  This
study quantifies that robustness two ways:

* **Seed sweep** — re-run one workflow under many generation seeds
  (fresh draws from the same distribution: "inherent stochasticity of
  tasks") and report the AWE spread per algorithm.  A robust algorithm
  has both a high mean and a small spread.
* **Distribution shift** — evaluate each algorithm on a workflow whose
  memory scale is shifted from the nominal one ("the arrival of a new
  input distribution").  Because every algorithm here is online and
  prior-free, the shifted run's AWE should track the nominal run's —
  this is the experiment a trace-trained predictor would fail.
* **Fault sweep** — run each algorithm under seeded fault-injection
  profiles (worker preemption, mid-task kills, transient dispatch
  failures; see :mod:`repro.sim.faults`) and report how AWE and
  makespan degrade relative to the fault-free run.  Eviction waste is
  excluded from AWE by construction (Section II-C), so a robust
  allocator's AWE should barely move while its makespan absorbs the
  lost work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.resources import MEMORY
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table, save_json, save_text
from repro.experiments.runner import run_cell
from repro.sim.faults import make_fault_config
from repro.sim.resilience import (
    CircuitBreakerConfig,
    ResilienceConfig,
    RetryPolicyConfig,
)

__all__ = [
    "SeedSweepResult",
    "run_seed_sweep",
    "render_seed_sweep",
    "FaultSweepResult",
    "run_fault_sweep",
    "render_fault_sweep",
    "write_fault_sweep",
    "PolicyMatrixResult",
    "run_policy_matrix",
    "render_policy_matrix",
    "write_policy_matrix",
]


@dataclass
class SeedSweepResult:
    workflow: str
    algorithms: Tuple[str, ...]
    seeds: Tuple[int, ...]
    #: algorithm -> AWE(memory) per seed
    awe: Dict[str, List[float]]

    def mean(self, algorithm: str) -> float:
        return float(np.mean(self.awe[algorithm]))

    def spread(self, algorithm: str) -> float:
        """Max minus min AWE across seeds."""
        values = self.awe[algorithm]
        return float(max(values) - min(values))

    def std(self, algorithm: str) -> float:
        return float(np.std(self.awe[algorithm]))


def run_seed_sweep(
    config: Optional[ExperimentConfig] = None,
    workflow: str = "bimodal",
    algorithms: Sequence[str] = (
        "max_seen",
        "min_waste",
        "greedy_bucketing",
        "exhaustive_bucketing",
    ),
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
) -> SeedSweepResult:
    """Run one workflow under several generation seeds per algorithm."""
    config = config if config is not None else ExperimentConfig()
    awe: Dict[str, List[float]] = {algorithm: [] for algorithm in algorithms}
    for seed in seeds:
        seeded = config.with_(workflow_seed=seed)
        for algorithm in algorithms:
            result = run_cell(workflow, algorithm, seeded)
            awe[algorithm].append(result.ledger.awe(MEMORY))
    return SeedSweepResult(
        workflow=workflow,
        algorithms=tuple(algorithms),
        seeds=tuple(seeds),
        awe=awe,
    )


def render_seed_sweep(result: SeedSweepResult) -> str:
    rows = [
        (
            algorithm,
            result.mean(algorithm),
            result.std(algorithm),
            result.spread(algorithm),
            min(result.awe[algorithm]),
            max(result.awe[algorithm]),
        )
        for algorithm in result.algorithms
    ]
    return format_table(
        headers=["algorithm", "mean AWE(mem)", "std", "spread", "min", "max"],
        rows=rows,
        title=(
            f"E-X4 robustness — {result.workflow} across "
            f"{len(result.seeds)} generation seeds"
        ),
    )


@dataclass
class FaultSweepResult:
    """Per-(algorithm, fault profile) outcomes of one workflow."""

    workflow: str
    algorithms: Tuple[str, ...]
    profiles: Tuple[str, ...]
    #: (algorithm, profile) -> AWE(memory)
    awe: Dict[Tuple[str, str], float]
    #: (algorithm, profile) -> makespan seconds
    makespan: Dict[Tuple[str, str], float]
    #: (algorithm, profile) -> evicted attempt count
    evictions: Dict[Tuple[str, str], int]
    #: (algorithm, profile) -> tasks moved to the dead-letter ledger
    #: (always 0 unless the sweep config carries a resilience policy).
    dead_letters: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: (algorithm, profile) -> circuit-breaker trips.
    breaker_trips: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def awe_drop(self, algorithm: str, profile: str) -> float:
        """AWE lost relative to the fault-free run (positive = worse)."""
        return self.awe[algorithm, "none"] - self.awe[algorithm, profile]

    def slowdown(self, algorithm: str, profile: str) -> float:
        """Makespan ratio relative to the fault-free run (>= 1 typical)."""
        baseline = self.makespan[algorithm, "none"]
        return self.makespan[algorithm, profile] / baseline if baseline else 1.0


def run_fault_sweep(
    config: Optional[ExperimentConfig] = None,
    workflow: str = "bimodal",
    algorithms: Sequence[str] = (
        "max_seen",
        "min_waste",
        "greedy_bucketing",
        "exhaustive_bucketing",
    ),
    profiles: Sequence[str] = ("none", "fixed", "poisson"),
    fault_rate: float = 1.0 / 600.0,
    fault_seed: int = 0,
) -> FaultSweepResult:
    """Run one workflow under each fault profile per algorithm.

    The fault schedule is identical across algorithms within a profile
    (same :class:`~repro.sim.faults.FaultConfig` seed), so AWE/makespan
    differences are attributable to the allocation policy alone.
    """
    config = config if config is not None else ExperimentConfig()
    awe: Dict[Tuple[str, str], float] = {}
    makespan: Dict[Tuple[str, str], float] = {}
    evictions: Dict[Tuple[str, str], int] = {}
    dead_letters: Dict[Tuple[str, str], int] = {}
    breaker_trips: Dict[Tuple[str, str], int] = {}
    for profile in profiles:
        faulted = config.with_(
            faults=make_fault_config(profile, rate=fault_rate, seed=fault_seed)
        )
        for algorithm in algorithms:
            result = run_cell(workflow, algorithm, faulted)
            awe[algorithm, profile] = result.ledger.awe(MEMORY)
            makespan[algorithm, profile] = result.makespan
            evictions[algorithm, profile] = result.n_evicted_attempts
            dead_letters[algorithm, profile] = result.n_quarantined
            breaker_trips[algorithm, profile] = (
                result.resilience_stats.breaker_trips
                if result.resilience_stats is not None
                else 0
            )
    return FaultSweepResult(
        workflow=workflow,
        algorithms=tuple(algorithms),
        profiles=tuple(profiles),
        awe=awe,
        makespan=makespan,
        evictions=evictions,
        dead_letters=dead_letters,
        breaker_trips=breaker_trips,
    )


def render_fault_sweep(result: FaultSweepResult) -> str:
    rows = []
    for algorithm in result.algorithms:
        for profile in result.profiles:
            rows.append(
                (
                    algorithm,
                    profile,
                    result.awe[algorithm, profile],
                    result.awe_drop(algorithm, profile)
                    if "none" in result.profiles
                    else float("nan"),
                    result.makespan[algorithm, profile],
                    result.slowdown(algorithm, profile)
                    if "none" in result.profiles
                    else float("nan"),
                    result.evictions[algorithm, profile],
                    result.dead_letters.get((algorithm, profile), 0),
                    result.breaker_trips.get((algorithm, profile), 0),
                )
            )
    return format_table(
        headers=[
            "algorithm",
            "faults",
            "AWE(mem)",
            "AWE drop",
            "makespan (s)",
            "slowdown",
            "evictions",
            "dead-letters",
            "breaker trips",
        ],
        rows=rows,
        title=f"E-X4 robustness — {result.workflow} under fault injection",
    )


def write_fault_sweep(result: FaultSweepResult, path: str) -> None:
    """Publish a fault-sweep report atomically (text or JSON by suffix)."""
    if path.endswith(".json"):
        save_json(
            path,
            {
                "workflow": result.workflow,
                "algorithms": list(result.algorithms),
                "profiles": list(result.profiles),
                "cells": [
                    {
                        "algorithm": algorithm,
                        "profile": profile,
                        "awe_memory": result.awe[algorithm, profile],
                        "makespan": result.makespan[algorithm, profile],
                        "evictions": result.evictions[algorithm, profile],
                        "dead_letters": result.dead_letters.get(
                            (algorithm, profile), 0
                        ),
                        "breaker_trips": result.breaker_trips.get(
                            (algorithm, profile), 0
                        ),
                    }
                    for algorithm in result.algorithms
                    for profile in result.profiles
                ],
            },
        )
    else:
        save_text(path, render_fault_sweep(result))


@dataclass
class PolicyMatrixResult:
    """Per-(retry budget, breaker on/off) outcomes under one fault profile."""

    workflow: str
    algorithm: str
    profile: str
    budgets: Tuple[Optional[int], ...]
    breaker_modes: Tuple[bool, ...]
    #: (budget, breaker) -> AWE(memory)
    awe: Dict[Tuple[Optional[int], bool], float]
    #: (budget, breaker) -> makespan seconds
    makespan: Dict[Tuple[Optional[int], bool], float]
    #: (budget, breaker) -> dead-lettered task count
    dead_letters: Dict[Tuple[Optional[int], bool], int]
    #: (budget, breaker) -> circuit-breaker trips
    breaker_trips: Dict[Tuple[Optional[int], bool], int]


def run_policy_matrix(
    config: Optional[ExperimentConfig] = None,
    workflow: str = "bimodal",
    algorithm: str = "exhaustive_bucketing",
    profile: str = "poisson",
    budgets: Sequence[Optional[int]] = (None, 10, 25),
    breaker_modes: Sequence[bool] = (False, True),
    fault_rate: float = 1.0 / 600.0,
    fault_seed: int = 0,
) -> PolicyMatrixResult:
    """Sweep retry budget x circuit breaker under one fault profile.

    Every cell sees the same workflow, algorithm and fault schedule, so
    AWE/makespan/dead-letter differences are attributable to the
    resilience policy alone.  ``budget=None`` runs the paper's unbounded
    retry as the baseline row.
    """
    config = config if config is not None else ExperimentConfig()
    faulted = config.with_(
        faults=make_fault_config(profile, rate=fault_rate, seed=fault_seed)
    )
    awe: Dict[Tuple[Optional[int], bool], float] = {}
    makespan: Dict[Tuple[Optional[int], bool], float] = {}
    dead_letters: Dict[Tuple[Optional[int], bool], int] = {}
    breaker_trips: Dict[Tuple[Optional[int], bool], int] = {}
    for budget in budgets:
        for breaker in breaker_modes:
            resilience: Optional[ResilienceConfig] = None
            if budget is not None or breaker:
                resilience = ResilienceConfig(
                    retry=RetryPolicyConfig(budget=budget),
                    breaker=CircuitBreakerConfig(enabled=breaker),
                )
            cell = faulted.with_(resilience=resilience)
            result = run_cell(workflow, algorithm, cell)
            awe[budget, breaker] = result.ledger.awe(MEMORY)
            makespan[budget, breaker] = result.makespan
            dead_letters[budget, breaker] = result.n_quarantined
            breaker_trips[budget, breaker] = (
                result.resilience_stats.breaker_trips
                if result.resilience_stats is not None
                else 0
            )
    return PolicyMatrixResult(
        workflow=workflow,
        algorithm=algorithm,
        profile=profile,
        budgets=tuple(budgets),
        breaker_modes=tuple(breaker_modes),
        awe=awe,
        makespan=makespan,
        dead_letters=dead_letters,
        breaker_trips=breaker_trips,
    )


def render_policy_matrix(result: PolicyMatrixResult) -> str:
    rows = [
        (
            "unbounded" if budget is None else budget,
            "on" if breaker else "off",
            result.awe[budget, breaker],
            result.makespan[budget, breaker],
            result.dead_letters[budget, breaker],
            result.breaker_trips[budget, breaker],
        )
        for budget in result.budgets
        for breaker in result.breaker_modes
    ]
    return format_table(
        headers=[
            "retry budget",
            "breaker",
            "AWE(mem)",
            "makespan (s)",
            "dead-letters",
            "breaker trips",
        ],
        rows=rows,
        title=(
            f"Resilience policy matrix — {result.workflow} / "
            f"{result.algorithm} under {result.profile} faults"
        ),
    )


def write_policy_matrix(result: PolicyMatrixResult, path: str) -> None:
    """Publish a policy-matrix report atomically (text or JSON by suffix)."""
    if path.endswith(".json"):
        save_json(
            path,
            {
                "workflow": result.workflow,
                "algorithm": result.algorithm,
                "profile": result.profile,
                "cells": [
                    {
                        "budget": budget,
                        "breaker": breaker,
                        "awe_memory": result.awe[budget, breaker],
                        "makespan": result.makespan[budget, breaker],
                        "dead_letters": result.dead_letters[budget, breaker],
                        "breaker_trips": result.breaker_trips[budget, breaker],
                    }
                    for budget in result.budgets
                    for breaker in result.breaker_modes
                ],
            },
        )
    else:
        save_text(path, render_policy_matrix(result))
