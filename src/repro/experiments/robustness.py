"""E-X4: robustness to external stochasticity (Section II-D2).

The paper's *prior-free* design goal is justified by external
stochasticity: the same workflow behaves differently across runs
(cluster load, input drift, inherent task randomness), so an allocator
must not depend on the previous run looking like the current one.  This
study quantifies that robustness two ways:

* **Seed sweep** — re-run one workflow under many generation seeds
  (fresh draws from the same distribution: "inherent stochasticity of
  tasks") and report the AWE spread per algorithm.  A robust algorithm
  has both a high mean and a small spread.
* **Distribution shift** — evaluate each algorithm on a workflow whose
  memory scale is shifted from the nominal one ("the arrival of a new
  input distribution").  Because every algorithm here is online and
  prior-free, the shifted run's AWE should track the nominal run's —
  this is the experiment a trace-trained predictor would fail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.resources import MEMORY
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_cell

__all__ = ["SeedSweepResult", "run_seed_sweep", "render_seed_sweep"]


@dataclass
class SeedSweepResult:
    workflow: str
    algorithms: Tuple[str, ...]
    seeds: Tuple[int, ...]
    #: algorithm -> AWE(memory) per seed
    awe: Dict[str, List[float]]

    def mean(self, algorithm: str) -> float:
        return float(np.mean(self.awe[algorithm]))

    def spread(self, algorithm: str) -> float:
        """Max minus min AWE across seeds."""
        values = self.awe[algorithm]
        return float(max(values) - min(values))

    def std(self, algorithm: str) -> float:
        return float(np.std(self.awe[algorithm]))


def run_seed_sweep(
    config: Optional[ExperimentConfig] = None,
    workflow: str = "bimodal",
    algorithms: Sequence[str] = (
        "max_seen",
        "min_waste",
        "greedy_bucketing",
        "exhaustive_bucketing",
    ),
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
) -> SeedSweepResult:
    """Run one workflow under several generation seeds per algorithm."""
    config = config if config is not None else ExperimentConfig()
    awe: Dict[str, List[float]] = {algorithm: [] for algorithm in algorithms}
    for seed in seeds:
        seeded = config.with_(workflow_seed=seed)
        for algorithm in algorithms:
            result = run_cell(workflow, algorithm, seeded)
            awe[algorithm].append(result.ledger.awe(MEMORY))
    return SeedSweepResult(
        workflow=workflow,
        algorithms=tuple(algorithms),
        seeds=tuple(seeds),
        awe=awe,
    )


def render_seed_sweep(result: SeedSweepResult) -> str:
    rows = [
        (
            algorithm,
            result.mean(algorithm),
            result.std(algorithm),
            result.spread(algorithm),
            min(result.awe[algorithm]),
            max(result.awe[algorithm]),
        )
        for algorithm in result.algorithms
    ]
    return format_table(
        headers=["algorithm", "mean AWE(mem)", "std", "spread", "min", "max"],
        rows=rows,
        title=(
            f"E-X4 robustness — {result.workflow} across "
            f"{len(result.seeds)} generation seeds"
        ),
    )
