"""Experiment harness: one module per paper table/figure.

Every module exposes ``run(...) -> <result object>`` and ``render(...)
-> str`` so the CLI, the benchmarks and the tests share one code path:

* :mod:`repro.experiments.figure2` — per-category resource consumption
  of the ColmenaXTB and TopEFT traces (Figure 2);
* :mod:`repro.experiments.figure3` — bucket construction on the
  N(8 GB, 2 GB) running example (Figures 3b/3c);
* :mod:`repro.experiments.figure4` — memory distributions of the five
  synthetic workflows (Figure 4);
* :mod:`repro.experiments.figure5` — the AWE grid: 3 resources x
  7 workflows x 7 algorithms (Figure 5);
* :mod:`repro.experiments.figure6` — waste split into internal
  fragmentation vs failed allocation, 6 algorithms (Figure 6);
* :mod:`repro.experiments.table1` — microseconds per bucketing-state
  computation + allocation at 10/200/1000/2000/5000 records (Table I);
* :mod:`repro.experiments.scaling` — the >10k-task future-work
  hypothesis (E-X1);
* :mod:`repro.experiments.ablation` — significance weighting,
  exploratory budget and bucket-cap ablations (E-X2);
* :mod:`repro.experiments.hybrid_study` — the Quantized-then-bucketing
  switchover on TopEFT cores (E-X3);
* :mod:`repro.experiments.robustness` — external-stochasticity seed
  sweep (E-X4);
* :mod:`repro.experiments.convergence` — phase-adaptation recovery on
  the trimodal workflow (E-X5).
"""

from repro.experiments.config import PAPER_ALGORITHMS, PAPER_WORKFLOWS, ExperimentConfig
from repro.experiments.runner import GridResult, run_cell, run_grid

__all__ = [
    "ExperimentConfig",
    "PAPER_ALGORITHMS",
    "PAPER_WORKFLOWS",
    "run_cell",
    "run_grid",
    "GridResult",
]
