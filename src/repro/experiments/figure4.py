"""Figure 4: memory consumption of the five synthetic workflows.

The paper plots each synthetic task's memory against its submission
order.  This module regenerates the 1000-task streams, reports the
distribution statistics each workflow was designed around, and renders
an ASCII histogram per workflow plus the phase means for the Phasing
Trimodal stream (whose point is that the distribution *moves*).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.resources import MEMORY
from repro.experiments.reporting import format_histogram, format_table
from repro.workflows.spec import WorkflowSpec
from repro.workflows.synthetic import SYNTHETIC_WORKFLOWS, make_synthetic_workflow

__all__ = ["Figure4Result", "run", "render"]


@dataclass
class Figure4Result:
    workflows: Dict[str, WorkflowSpec]
    #: workflow -> (min, p25, p50, p75, max, mean, std) of memory MB
    stats: Dict[str, Tuple[float, float, float, float, float, float, float]]
    #: workflow -> memory values in submission order
    series: Dict[str, np.ndarray]
    #: trimodal thirds' means, evidencing the moving distribution
    trimodal_phase_means: Tuple[float, float, float]


def run(n_tasks: int = 1000, seed: int = 0) -> Figure4Result:
    """Generate all five synthetic workflows and their memory series."""
    workflows: Dict[str, WorkflowSpec] = {}
    stats: Dict[str, Tuple[float, ...]] = {}
    series: Dict[str, np.ndarray] = {}
    for name in SYNTHETIC_WORKFLOWS:
        wf = make_synthetic_workflow(name, n_tasks=n_tasks, seed=seed)
        memory = np.array([t.consumption[MEMORY] for t in wf])
        workflows[name] = wf
        series[name] = memory
        stats[name] = (
            float(memory.min()),
            float(np.percentile(memory, 25)),
            float(np.median(memory)),
            float(np.percentile(memory, 75)),
            float(memory.max()),
            float(memory.mean()),
            float(memory.std()),
        )
    trimodal = series["trimodal"]
    third = len(trimodal) // 3
    phase_means = (
        float(trimodal[:third].mean()),
        float(trimodal[third : 2 * third].mean()),
        float(trimodal[2 * third :].mean()),
    )
    return Figure4Result(
        workflows=workflows,
        stats=stats,  # type: ignore[arg-type]
        series=series,
        trimodal_phase_means=phase_means,
    )


def render(result: Figure4Result) -> str:
    """Render Figure 4's data: stats table + histograms + phase means."""
    rows = [
        (name,) + result.stats[name]  # type: ignore[operator]
        for name in SYNTHETIC_WORKFLOWS
    ]
    parts: List[str] = [
        format_table(
            headers=["workflow", "min", "p25", "p50", "p75", "max", "mean", "std"],
            rows=rows,
            title="Figure 4 — synthetic memory consumption (MB)",
            float_format="{:.0f}",
        ),
        "",
    ]
    for name in SYNTHETIC_WORKFLOWS:
        parts.append(format_histogram(f"{name} memory (MB)", result.series[name].tolist()))
        parts.append("")
    p1, p2, p3 = result.trimodal_phase_means
    parts.append(
        "trimodal phase means (MB): "
        f"first third {p1:.0f} -> second {p2:.0f} -> final {p3:.0f} "
        "(moving distribution)"
    )
    return "\n".join(parts)
