"""Grid runner: (workflow x algorithm) simulation sweeps."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.config import (
    ExperimentConfig,
    PAPER_ALGORITHMS,
    PAPER_WORKFLOWS,
    make_workflow,
)
from repro.metrics.summary import EfficiencySummary, summarize_result
from repro.sim.manager import SimulationResult, WorkflowManager
from repro.workflows.spec import WorkflowSpec

__all__ = ["run_cell", "run_grid", "GridResult"]


def run_cell(
    workflow: WorkflowSpec | str,
    algorithm: str,
    config: Optional[ExperimentConfig] = None,
    **allocator_overrides,
) -> SimulationResult:
    """Run one (workflow, algorithm) cell end to end.

    The pseudo-algorithm ``"oracle"`` runs the simulator's oracle mode:
    every task allocated exactly its true consumption (the reference
    ceiling of Section II-C).
    """
    config = config if config is not None else ExperimentConfig()
    if isinstance(workflow, str):
        workflow = make_workflow(
            workflow, n_tasks=config.n_tasks, seed=config.workflow_seed
        )
    manager = WorkflowManager(workflow, _simulation_config(config, algorithm, allocator_overrides))
    return manager.run()


def _simulation_config(config: ExperimentConfig, algorithm: str, overrides):
    import dataclasses

    if algorithm == "oracle":
        sim = config.simulation_config("whole_machine", **overrides)
        return dataclasses.replace(sim, oracle=True)
    return config.simulation_config(algorithm, **overrides)


@dataclass
class GridResult:
    """All cells of a (workflows x algorithms) sweep."""

    config: ExperimentConfig
    workflows: Tuple[str, ...]
    algorithms: Tuple[str, ...]
    cells: Dict[Tuple[str, str], SimulationResult]

    def summary(self, workflow: str, algorithm: str) -> EfficiencySummary:
        return summarize_result(self.cells[workflow, algorithm])

    def summaries(self) -> Dict[Tuple[str, str], EfficiencySummary]:
        return {key: summarize_result(res) for key, res in self.cells.items()}

    def awe(self, workflow: str, algorithm: str, resource_key: str) -> float:
        return self.summary(workflow, algorithm).awe[resource_key]

    def best_algorithm(self, workflow: str, resource_key: str) -> str:
        """Highest-AWE algorithm for one (workflow, resource) column."""
        return max(
            self.algorithms,
            key=lambda algo: self.awe(workflow, algo, resource_key),
        )


def run_grid(
    workflows: Sequence[str] = PAPER_WORKFLOWS,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    config: Optional[ExperimentConfig] = None,
    verbose: bool = False,
) -> GridResult:
    """Run the full evaluation grid (Figures 5 and 6 share it).

    Workflows are generated once and reused across algorithms so every
    algorithm sees the identical task stream.
    """
    config = config if config is not None else ExperimentConfig()
    cells: Dict[Tuple[str, str], SimulationResult] = {}
    for wf_name in workflows:
        workflow = make_workflow(
            wf_name, n_tasks=config.n_tasks, seed=config.workflow_seed
        )
        for algorithm in algorithms:
            manager = WorkflowManager(
                workflow, _simulation_config(config, algorithm, {})
            )
            result = manager.run()
            cells[wf_name, algorithm] = result
            if verbose:
                print(
                    f"[grid] {wf_name:12s} {algorithm:22s} "
                    f"attempts={result.n_attempts:5d} "
                    f"awe={ {r.key: round(result.ledger.awe(r), 3) for r in result.ledger.resources} }"
                )
    return GridResult(
        config=config,
        workflows=tuple(workflows),
        algorithms=tuple(algorithms),
        cells=cells,
    )
