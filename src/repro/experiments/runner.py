"""Grid runner: (workflow x algorithm) simulation sweeps.

``run_grid`` executes every (workflow, algorithm) cell either serially
in-process (``jobs=1``, the default) or across a spawn-based
``ProcessPoolExecutor`` (``jobs > 1``).  Cells are fully independent —
each builds its workflow and allocator from the shared
:class:`~repro.experiments.config.ExperimentConfig` seeds — so the
parallel path is bit-identical to the serial one, cell for cell.

Crash safety (``config.checkpoint_dir``): completed cells are journaled
to a write-ahead ``journal.jsonl`` (header + one line per cell result)
and — in the serial path — the in-flight cell is snapshotted
periodically and on SIGINT/SIGTERM to ``inflight.json``.  Relaunching
with ``config.resume=True`` skips the journaled cells, resumes the
interrupted cell mid-simulation (replay-verified, bit-identical; see
:mod:`repro.checkpoint`), and produces exactly the results an
uninterrupted run would have.  The journal is bound to a digest of the
grid definition, so a checkpoint directory can never silently feed a
different experiment.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.checkpoint import (
    SIMULATION_KIND,
    CheckpointError,
    GracefulShutdown,
    GridInterrupted,
    SimulationCheckpointer,
    SimulationInterrupted,
    append_jsonl,
    encode_frame,
    load_checkpoint,
    recover_jsonl,
    state_digest,
    write_text_atomic,
)
from repro.experiments.config import (
    PAPER_ALGORITHMS,
    PAPER_WORKFLOWS,
    ExperimentConfig,
    make_workflow,
)
from repro.metrics.summary import EfficiencySummary, summarize_result
from repro.sim.manager import SimulationResult, WorkflowManager
from repro.workflows.spec import WorkflowSpec

__all__ = ["run_cell", "run_grid", "GridResult", "grid_digest"]

#: Journal header kind; the first line of every ``journal.jsonl``.
_JOURNAL_KIND = "grid-journal"
_JOURNAL_VERSION = 1
_JOURNAL_NAME = "journal.jsonl"
_INFLIGHT_NAME = "inflight.json"


def run_cell(
    workflow: WorkflowSpec | str,
    algorithm: str,
    config: Optional[ExperimentConfig] = None,
    **allocator_overrides,
) -> SimulationResult:
    """Run one (workflow, algorithm) cell end to end.

    The pseudo-algorithm ``"oracle"`` runs the simulator's oracle mode:
    every task allocated exactly its true consumption (the reference
    ceiling of Section II-C).
    """
    config = config if config is not None else ExperimentConfig()
    if isinstance(workflow, str):
        workflow = make_workflow(
            workflow, n_tasks=config.n_tasks, seed=config.workflow_seed
        )
    manager = WorkflowManager(workflow, _simulation_config(config, algorithm, allocator_overrides))
    return manager.run()


def _simulation_config(config: ExperimentConfig, algorithm: str, overrides):
    import dataclasses

    if algorithm == "oracle":
        sim = config.simulation_config("whole_machine", **overrides)
        return dataclasses.replace(sim, oracle=True)
    return config.simulation_config(algorithm, **overrides)


@dataclass
class GridResult:
    """All cells of a (workflows x algorithms) sweep."""

    config: ExperimentConfig
    workflows: Tuple[str, ...]
    algorithms: Tuple[str, ...]
    cells: Dict[Tuple[str, str], SimulationResult]

    def summary(self, workflow: str, algorithm: str) -> EfficiencySummary:
        return summarize_result(self.cells[workflow, algorithm])

    def summaries(self) -> Dict[Tuple[str, str], EfficiencySummary]:
        return {key: summarize_result(res) for key, res in self.cells.items()}

    def awe(self, workflow: str, algorithm: str, resource_key: str) -> float:
        return self.summary(workflow, algorithm).awe[resource_key]

    def best_algorithm(self, workflow: str, resource_key: str) -> str:
        """Highest-AWE algorithm for one (workflow, resource) column."""
        return max(
            self.algorithms,
            key=lambda algo: self.awe(workflow, algo, resource_key),
        )


def grid_digest(
    workflows: Sequence[str],
    algorithms: Sequence[str],
    config: ExperimentConfig,
) -> str:
    """Digest binding a journal to one grid definition.

    Covers everything that determines the results — the cell list and
    every simulation-relevant config field — and deliberately excludes
    the checkpoint plumbing (``checkpoint_dir``, intervals, ``resume``),
    which may legitimately differ between the interrupted run and its
    relaunch.
    """
    doc = {
        "workflows": list(workflows),
        "algorithms": list(algorithms),
        "n_workers": config.n_workers,
        "ramp_up_seconds": config.ramp_up_seconds,
        "n_tasks": config.n_tasks,
        "workflow_seed": config.workflow_seed,
        "allocator_seed": config.allocator_seed,
        "pool_seed": config.pool_seed,
        "profile": _stable_repr(config.profile),
        "max_outstanding": config.max_outstanding,
        "faults": _stable_repr(config.faults),
    }
    if config.resilience is not None:
        # Added only when set so journals written before the resilience
        # layer existed keep their digests and stay resumable.
        doc["resilience"] = _stable_repr(config.resilience)
    return state_digest(doc)


def _stable_repr(obj: Any) -> str:
    """Process-independent canonical form for config sub-objects.

    Dataclass reprs are already deterministic; plain objects (e.g. the
    consumption profiles) fall back to class name + sorted instance
    attributes, never the default ``object.__repr__`` (whose memory
    address would change every process and break resume digests).
    """
    import dataclasses

    if obj is None or dataclasses.is_dataclass(obj):
        return repr(obj)
    attrs = ",".join(
        f"{name}="
        + (repr(value) if isinstance(value, (int, float, str, bool)) else _stable_repr(value))
        for name, value in sorted(vars(obj).items())
    )
    return f"{type(obj).__qualname__}({attrs})"


class _GridJournal:
    """Write-ahead journal of completed grid cells.

    Line 1 is a header binding the file to a grid digest; every further
    line is one completed cell's full :class:`SimulationResult` state.
    Appends are fsynced, so a crash tears at most the final line (which
    the reader drops — that cell simply reruns).
    """

    def __init__(self, directory: str, digest: str) -> None:
        self._dir = directory
        self._digest = digest
        self.journal_path = os.path.join(directory, _JOURNAL_NAME)
        self.inflight_path = os.path.join(directory, _INFLIGHT_NAME)

    def start_fresh(self) -> None:
        os.makedirs(self._dir, exist_ok=True)
        write_text_atomic(
            self.journal_path,
            _one_line(
                {"kind": _JOURNAL_KIND, "version": _JOURNAL_VERSION, "digest": self._digest}
            ),
        )
        self._remove_inflight()

    def exists(self) -> bool:
        return os.path.exists(self.journal_path)

    def load_completed(self) -> Dict[Tuple[str, str], SimulationResult]:
        """Validate the header and replay the journaled cell results.

        A journal with mid-stream corruption (bit rot, a truncated
        copy) is not fatal to resume: the damaged file is quarantined
        into ``<journal>.corrupt/``, the valid prefix is kept, and the
        cells whose records were lost simply recompute — the grid
        digest in the header guarantees they recompute identically.
        """
        rows, recovery = recover_jsonl(self.journal_path)
        if recovery is not None:
            print(
                f"[repro] grid journal corrupt at line {recovery.line} — "
                f"kept {recovery.docs_kept} record(s), quarantined the "
                f"damaged file to {recovery.quarantined_to}; lost cells "
                "will recompute",
                file=sys.stderr,
            )
        if not rows or not isinstance(rows[0], dict) or rows[0].get("kind") != _JOURNAL_KIND:
            raise CheckpointError(f"{self.journal_path!r} is not a grid journal")
        if rows[0].get("version") != _JOURNAL_VERSION:
            raise CheckpointError(
                f"grid journal {self.journal_path!r} has version "
                f"{rows[0].get('version')!r}; this build reads {_JOURNAL_VERSION}"
            )
        if rows[0].get("digest") != self._digest:
            raise CheckpointError(
                "grid journal belongs to a different experiment (digest "
                "mismatch) — refusing to mix results; point --checkpoint-dir "
                "at a fresh directory or drop --resume"
            )
        completed: Dict[Tuple[str, str], SimulationResult] = {}
        for row in rows[1:]:
            key = (row["workflow"], row["algorithm"])
            completed[key] = SimulationResult.from_state(row["result"])
        # Rewrite minus any torn tail, so future appends start on a
        # clean line boundary — upgrading legacy raw-JSON records to
        # checksummed frames along the way.
        write_text_atomic(
            self.journal_path,
            "".join(encode_frame(row) + "\n" for row in rows),
        )
        return completed

    def record(self, key: Tuple[str, str], result: SimulationResult) -> None:
        append_jsonl(
            self.journal_path,
            {"workflow": key[0], "algorithm": key[1], "result": result.state_dict()},
        )
        # The cell the inflight snapshot belonged to is now journaled
        # (or superseded); drop it so resume never replays a stale one.
        self._remove_inflight()

    def load_inflight(self, key: Tuple[str, str]) -> Optional[Dict[str, Any]]:
        """The interrupted cell's snapshot payload, if it is ``key``'s."""
        if not os.path.exists(self.inflight_path):
            return None
        _, payload = load_checkpoint(self.inflight_path, kind=SIMULATION_KIND)
        if payload.get("cell") != [key[0], key[1]]:
            return None
        if payload.get("grid_digest") != self._digest:
            raise CheckpointError(
                "in-flight snapshot belongs to a different experiment "
                "(digest mismatch) — refusing to resume from it"
            )
        return payload

    def _remove_inflight(self) -> None:
        try:
            os.unlink(self.inflight_path)
        except FileNotFoundError:
            pass


def _one_line(doc: Any) -> str:
    import json

    return json.dumps(doc, indent=None, separators=(",", ":")) + "\n"


def _run_grid_cell(
    wf_name: str, algorithm: str, config: ExperimentConfig
) -> SimulationResult:
    """One grid cell, built entirely from the (picklable) config.

    Workflow generation is deterministic in ``workflow_seed``, so
    regenerating the workflow inside a worker process yields the exact
    task stream the serial path sees, and the allocator/pool seeds come
    from the config — parallel results are bit-identical to serial ones.
    """
    workflow = make_workflow(
        wf_name, n_tasks=config.n_tasks, seed=config.workflow_seed
    )
    manager = WorkflowManager(workflow, _simulation_config(config, algorithm, {}))
    return manager.run()


def run_grid(
    workflows: Sequence[str] = PAPER_WORKFLOWS,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    config: Optional[ExperimentConfig] = None,
    verbose: bool = False,
    jobs: int = 1,
    shutdown: Optional[GracefulShutdown] = None,
) -> GridResult:
    """Run the full evaluation grid (Figures 5 and 6 share it).

    Workflows are generated once per workflow name and reused (serial
    path) or regenerated per cell from the same seed (parallel path), so
    every algorithm sees the identical task stream either way.

    ``jobs`` > 1 fans the cells out over that many worker processes
    using the ``spawn`` start method (safe under any threading model);
    ``jobs=1`` keeps everything serial in-process.  Results are
    identical cell for cell regardless of ``jobs``.

    With ``config.checkpoint_dir`` set, completed cells are journaled
    as they finish and (serial path only) the running cell is
    snapshotted periodically; ``shutdown`` — a
    :class:`~repro.checkpoint.GracefulShutdown` — turns SIGINT/SIGTERM
    into a final snapshot plus :class:`~repro.checkpoint.GridInterrupted`.
    ``config.resume=True`` continues such a run bit-identically.
    """
    config = config if config is not None else ExperimentConfig()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    keys = [(wf, algo) for wf in workflows for algo in algorithms]

    journal: Optional[_GridJournal] = None
    completed: Dict[Tuple[str, str], SimulationResult] = {}
    if config.checkpoint_dir is not None:
        journal = _GridJournal(
            config.checkpoint_dir, grid_digest(workflows, algorithms, config)
        )
        if config.resume and journal.exists():
            completed = journal.load_completed()
        else:
            # resume with no journal yet = fresh start; this is what a
            # relaunch of ``all --resume`` hits for the targets the
            # interrupted run never reached.
            journal.start_fresh()
    elif config.resume:
        raise CheckpointError("resume=True requires checkpoint_dir to be set")

    cells: Dict[Tuple[str, str], SimulationResult] = {}
    if jobs == 1:
        _run_serial(
            keys, workflows, algorithms, config, cells, completed,
            journal, shutdown, verbose,
        )
    else:
        _run_parallel(keys, config, cells, completed, journal, shutdown, verbose, jobs)
    return GridResult(
        config=config,
        workflows=tuple(workflows),
        algorithms=tuple(algorithms),
        cells=cells,
    )


def _check_shutdown(shutdown: Optional[GracefulShutdown], journaled: int) -> None:
    if shutdown is not None and shutdown.triggered:
        raise GridInterrupted(shutdown.signum, journaled)


def _run_serial(
    keys: List[Tuple[str, str]],
    workflows: Sequence[str],
    algorithms: Sequence[str],
    config: ExperimentConfig,
    cells: Dict[Tuple[str, str], SimulationResult],
    completed: Dict[Tuple[str, str], SimulationResult],
    journal: Optional[_GridJournal],
    shutdown: Optional[GracefulShutdown],
    verbose: bool,
) -> None:
    workflow_cache: Dict[str, WorkflowSpec] = {}
    for key in keys:
        wf_name, algorithm = key
        if key in completed:
            cells[key] = completed[key]
            continue
        _check_shutdown(shutdown, len(cells))
        if wf_name not in workflow_cache:
            workflow_cache[wf_name] = make_workflow(
                wf_name, n_tasks=config.n_tasks, seed=config.workflow_seed
            )
        manager = WorkflowManager(
            workflow_cache[wf_name], _simulation_config(config, algorithm, {})
        )
        if journal is not None:
            checkpointer = SimulationCheckpointer(
                manager,
                journal.inflight_path,
                every_events=config.checkpoint_every_events,
                every_seconds=(
                    config.checkpoint_interval
                    if config.checkpoint_every_events is None
                    else None
                ),
                shutdown=shutdown,
                extra={
                    "cell": [wf_name, algorithm],
                    "grid_digest": journal._digest,
                },
            )
            inflight = journal.load_inflight(key) if config.resume else None
            try:
                if inflight is not None:
                    checkpointer.resume(inflight)
                else:
                    manager.begin()
                manager.advance()
            except SimulationInterrupted as exc:
                raise GridInterrupted(exc.signum, len(cells)) from exc
            result = manager.finish()
        else:
            result = manager.run()
        cells[key] = result
        if journal is not None:
            journal.record(key, result)
        if verbose:
            _print_cell(wf_name, algorithm, result)


def _run_parallel(
    keys: List[Tuple[str, str]],
    config: ExperimentConfig,
    cells: Dict[Tuple[str, str], SimulationResult],
    completed: Dict[Tuple[str, str], SimulationResult],
    journal: Optional[_GridJournal],
    shutdown: Optional[GracefulShutdown],
    verbose: bool,
    jobs: int,
) -> None:
    """Parallel path: durability is at cell granularity.

    Cells live in worker processes, so there are no in-cell snapshots;
    an interrupt journals every cell whose result has already been
    collected and cancels the not-yet-started ones.  A resumed run
    reruns only the cells that never made it into the journal.
    """
    for key in keys:
        if key in completed:
            cells[key] = completed[key]
    pending = [key for key in keys if key not in completed]
    if not pending:
        return
    ctx = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(max_workers=jobs, mp_context=ctx) as pool:
        futures = {
            key: pool.submit(_run_grid_cell, key[0], key[1], config)
            for key in pending
        }
        try:
            for key in pending:
                _check_shutdown(shutdown, len(cells))
                cells[key] = futures[key].result()
                if journal is not None:
                    journal.record(key, cells[key])
                if verbose:
                    _print_cell(key[0], key[1], cells[key])
        except GridInterrupted:
            for future in futures.values():
                future.cancel()
            raise


def _print_cell(wf_name: str, algorithm: str, result: SimulationResult) -> None:
    print(
        f"[grid] {wf_name:12s} {algorithm:22s} "
        f"attempts={result.n_attempts:5d} "
        f"awe={ {r.key: round(result.ledger.awe(r), 3) for r in result.ledger.resources} }"
    )
