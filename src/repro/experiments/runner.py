"""Grid runner: (workflow x algorithm) simulation sweeps.

``run_grid`` executes every (workflow, algorithm) cell either serially
in-process (``jobs=1``, the default) or across a spawn-based
``ProcessPoolExecutor`` (``jobs > 1``).  Cells are fully independent —
each builds its workflow and allocator from the shared
:class:`~repro.experiments.config.ExperimentConfig` seeds — so the
parallel path is bit-identical to the serial one, cell for cell.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.config import (
    ExperimentConfig,
    PAPER_ALGORITHMS,
    PAPER_WORKFLOWS,
    make_workflow,
)
from repro.metrics.summary import EfficiencySummary, summarize_result
from repro.sim.manager import SimulationResult, WorkflowManager
from repro.workflows.spec import WorkflowSpec

__all__ = ["run_cell", "run_grid", "GridResult"]


def run_cell(
    workflow: WorkflowSpec | str,
    algorithm: str,
    config: Optional[ExperimentConfig] = None,
    **allocator_overrides,
) -> SimulationResult:
    """Run one (workflow, algorithm) cell end to end.

    The pseudo-algorithm ``"oracle"`` runs the simulator's oracle mode:
    every task allocated exactly its true consumption (the reference
    ceiling of Section II-C).
    """
    config = config if config is not None else ExperimentConfig()
    if isinstance(workflow, str):
        workflow = make_workflow(
            workflow, n_tasks=config.n_tasks, seed=config.workflow_seed
        )
    manager = WorkflowManager(workflow, _simulation_config(config, algorithm, allocator_overrides))
    return manager.run()


def _simulation_config(config: ExperimentConfig, algorithm: str, overrides):
    import dataclasses

    if algorithm == "oracle":
        sim = config.simulation_config("whole_machine", **overrides)
        return dataclasses.replace(sim, oracle=True)
    return config.simulation_config(algorithm, **overrides)


@dataclass
class GridResult:
    """All cells of a (workflows x algorithms) sweep."""

    config: ExperimentConfig
    workflows: Tuple[str, ...]
    algorithms: Tuple[str, ...]
    cells: Dict[Tuple[str, str], SimulationResult]

    def summary(self, workflow: str, algorithm: str) -> EfficiencySummary:
        return summarize_result(self.cells[workflow, algorithm])

    def summaries(self) -> Dict[Tuple[str, str], EfficiencySummary]:
        return {key: summarize_result(res) for key, res in self.cells.items()}

    def awe(self, workflow: str, algorithm: str, resource_key: str) -> float:
        return self.summary(workflow, algorithm).awe[resource_key]

    def best_algorithm(self, workflow: str, resource_key: str) -> str:
        """Highest-AWE algorithm for one (workflow, resource) column."""
        return max(
            self.algorithms,
            key=lambda algo: self.awe(workflow, algo, resource_key),
        )


def _run_grid_cell(
    wf_name: str, algorithm: str, config: ExperimentConfig
) -> SimulationResult:
    """One grid cell, built entirely from the (picklable) config.

    Workflow generation is deterministic in ``workflow_seed``, so
    regenerating the workflow inside a worker process yields the exact
    task stream the serial path sees, and the allocator/pool seeds come
    from the config — parallel results are bit-identical to serial ones.
    """
    workflow = make_workflow(
        wf_name, n_tasks=config.n_tasks, seed=config.workflow_seed
    )
    manager = WorkflowManager(workflow, _simulation_config(config, algorithm, {}))
    return manager.run()


def run_grid(
    workflows: Sequence[str] = PAPER_WORKFLOWS,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    config: Optional[ExperimentConfig] = None,
    verbose: bool = False,
    jobs: int = 1,
) -> GridResult:
    """Run the full evaluation grid (Figures 5 and 6 share it).

    Workflows are generated once per workflow name and reused (serial
    path) or regenerated per cell from the same seed (parallel path), so
    every algorithm sees the identical task stream either way.

    ``jobs`` > 1 fans the cells out over that many worker processes
    using the ``spawn`` start method (safe under any threading model);
    ``jobs=1`` keeps everything serial in-process.  Results are
    identical cell for cell regardless of ``jobs``.
    """
    config = config if config is not None else ExperimentConfig()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    keys = [(wf, algo) for wf in workflows for algo in algorithms]
    cells: Dict[Tuple[str, str], SimulationResult] = {}
    if jobs == 1:
        for wf_name in workflows:
            workflow = make_workflow(
                wf_name, n_tasks=config.n_tasks, seed=config.workflow_seed
            )
            for algorithm in algorithms:
                manager = WorkflowManager(
                    workflow, _simulation_config(config, algorithm, {})
                )
                cells[wf_name, algorithm] = manager.run()
                if verbose:
                    _print_cell(wf_name, algorithm, cells[wf_name, algorithm])
    else:
        ctx = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=jobs, mp_context=ctx) as pool:
            futures = {
                key: pool.submit(_run_grid_cell, key[0], key[1], config)
                for key in keys
            }
            for key in keys:
                cells[key] = futures[key].result()
                if verbose:
                    _print_cell(key[0], key[1], cells[key])
    return GridResult(
        config=config,
        workflows=tuple(workflows),
        algorithms=tuple(algorithms),
        cells=cells,
    )


def _print_cell(wf_name: str, algorithm: str, result: SimulationResult) -> None:
    print(
        f"[grid] {wf_name:12s} {algorithm:22s} "
        f"attempts={result.n_attempts:5d} "
        f"awe={ {r.key: round(result.ledger.awe(r), 3) for r in result.ledger.resources} }"
    )
