"""Task and workflow specifications.

A :class:`TaskSpec` carries the 4-tuple the paper's task model hides
from the allocator (Section II-B): the true peak consumption of each
resource plus the true duration.  The simulator is the only component
allowed to look at these values — the allocator sees a task's
consumption only after a successful completion, and only through the
record it is handed.

A :class:`WorkflowSpec` is an ordered stream of task specs (submission
order is the x-axis of Figures 2 and 4) with optional dependencies for
DAG-structured applications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Sequence, Tuple

from repro.core.resources import Resource, ResourceVector

__all__ = ["TaskSpec", "WorkflowSpec"]


@dataclass(frozen=True)
class TaskSpec:
    """One task's hidden ground truth.

    Attributes
    ----------
    task_id:
        Submission-order ID, unique within the workflow, counted from 0.
    category:
        The task's function/category name; the allocator maintains
        independent state per category (Section III-B).
    consumption:
        True peak consumption per resource (the ``c, m, d`` of the
        model).  Unknown to the allocator before completion.
    duration:
        True execution time ``t`` in seconds when run to completion.
    dependencies:
        IDs of tasks that must complete before this one becomes ready.
    """

    task_id: int
    category: str
    consumption: ResourceVector
    duration: float
    dependencies: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.task_id < 0:
            raise ValueError(f"task_id must be >= 0, got {self.task_id}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if not self.category:
            raise ValueError("category must be non-empty")
        for dep in self.dependencies:
            if dep == self.task_id:
                raise ValueError(f"task {self.task_id} depends on itself")


class WorkflowSpec:
    """An ordered collection of task specs forming one workflow run.

    Tasks are stored in submission order; IDs must be dense 0..n-1 and
    dependencies must point backwards (a dynamic workflow can only
    depend on work it has already generated).
    """

    def __init__(self, name: str, tasks: Sequence[TaskSpec]) -> None:
        if not name:
            raise ValueError("workflow name must be non-empty")
        if not tasks:
            raise ValueError("workflow must contain at least one task")
        for index, task in enumerate(tasks):
            if task.task_id != index:
                raise ValueError(
                    f"task IDs must be dense submission order: position {index} "
                    f"holds task_id {task.task_id}"
                )
            for dep in task.dependencies:
                if not (0 <= dep < index):
                    raise ValueError(
                        f"task {index} depends on {dep}, which is not an "
                        "earlier task"
                    )
        self._name = name
        self._tasks: Tuple[TaskSpec, ...] = tuple(tasks)

    @property
    def name(self) -> str:
        return self._name

    @property
    def tasks(self) -> Tuple[TaskSpec, ...]:
        return self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[TaskSpec]:
        return iter(self._tasks)

    def __getitem__(self, task_id: int) -> TaskSpec:
        return self._tasks[task_id]

    def categories(self) -> Tuple[str, ...]:
        """Distinct categories in first-appearance order."""
        seen: Dict[str, None] = {}
        for task in self._tasks:
            seen.setdefault(task.category, None)
        return tuple(seen)

    def tasks_of(self, category: str) -> Tuple[TaskSpec, ...]:
        return tuple(t for t in self._tasks if t.category == category)

    def max_consumption(self) -> ResourceVector:
        """Componentwise maximum true consumption over all tasks.

        The simulator validates this against the worker capacity up
        front: a task that cannot fit any worker would retry forever.
        """
        peak = ResourceVector()
        for task in self._tasks:
            peak = peak.componentwise_max(task.consumption)
        return peak

    def total_consumption(self, resource: Resource) -> float:
        """Sum over tasks of peak-consumption x duration (AWE numerator)."""
        return sum(t.consumption[resource] * t.duration for t in self._tasks)

    def validate_fits(self, capacity: ResourceVector) -> None:
        """Raise if any task's true consumption exceeds a whole worker."""
        for task in self._tasks:
            blown = capacity.exceeded_by(task.consumption)
            if blown:
                keys = ", ".join(r.key for r in blown)
                raise ValueError(
                    f"task {task.task_id} ({task.category}) exceeds worker "
                    f"capacity in: {keys} — it could never complete"
                )

    def __repr__(self) -> str:
        return (
            f"WorkflowSpec({self._name!r}, tasks={len(self._tasks)}, "
            f"categories={list(self.categories())})"
        )
