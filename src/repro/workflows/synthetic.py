"""The five synthetic workflows of the evaluation (Figure 4).

Each workflow has 1000 tasks of a *single* category — the paper's
worst case, where the allocator cannot lean on category separation and
must discover structure inside one record stream (Section V-B).  Each
distribution targets one stochastic behaviour from Section II-D:

* **Normal** and **Uniform** — common randomness;
* **Exponential** — outliers (the hardest: heavy upper tail);
* **Bimodal** — specialization of tasks (two latent task kinds);
* **Phasing Trimodal** — a moving resource distribution: three
  consecutive phases, each with its own mode, exercising the
  significance-weighted phase adaptation.

Memory and disk are sampled from the same distribution family (the
paper notes disk "shares the same distribution with memory") and cores
from a scaled-down variant ("cores have a slightly different
distribution").  Durations are lognormal around a minute, independent
of the resource draws.  All samples are clipped to fit the paper's
16-core / 64 GB workers so every task is feasible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.resources import ResourceVector
from repro.workflows.spec import TaskSpec, WorkflowSpec

__all__ = [
    "SyntheticSpec",
    "SYNTHETIC_WORKFLOWS",
    "make_synthetic_workflow",
    "make_mixed_workflow",
    "normal_workflow",
    "uniform_workflow",
    "exponential_workflow",
    "bimodal_workflow",
    "trimodal_workflow",
]

#: Paper worker bounds used for clipping samples to feasible tasks.
_MAX_MEMORY_MB = 60_000.0
_MAX_CORES = 16.0
_MIN_MEMORY_MB = 50.0
_MIN_CORES = 0.1


@dataclass(frozen=True)
class SyntheticSpec:
    """Descriptor of one synthetic workflow family."""

    name: str
    description: str
    #: memory_sampler(rng, n) -> MB array; also used for disk.
    memory_sampler: Callable[[np.random.Generator, int], np.ndarray]
    #: cores_sampler(rng, n) -> cores array.
    cores_sampler: Callable[[np.random.Generator, int], np.ndarray]


def _clip_memory(samples: np.ndarray) -> np.ndarray:
    return np.clip(samples, _MIN_MEMORY_MB, _MAX_MEMORY_MB)


def _clip_cores(samples: np.ndarray) -> np.ndarray:
    return np.clip(samples, _MIN_CORES, _MAX_CORES)


def _normal_memory(rng: np.random.Generator, n: int) -> np.ndarray:
    # The running example of Figure 3b: N(8 GB, 2 GB).
    return _clip_memory(rng.normal(8_000.0, 2_000.0, n))


def _normal_cores(rng: np.random.Generator, n: int) -> np.ndarray:
    return _clip_cores(rng.normal(4.0, 1.0, n))


def _uniform_memory(rng: np.random.Generator, n: int) -> np.ndarray:
    return _clip_memory(rng.uniform(2_000.0, 14_000.0, n))


def _uniform_cores(rng: np.random.Generator, n: int) -> np.ndarray:
    return _clip_cores(rng.uniform(1.0, 8.0, n))


def _exponential_memory(rng: np.random.Generator, n: int) -> np.ndarray:
    # Shifted exponential: most tasks small, rare huge outliers.
    return _clip_memory(500.0 + rng.exponential(3_000.0, n))


def _exponential_cores(rng: np.random.Generator, n: int) -> np.ndarray:
    return _clip_cores(0.5 + rng.exponential(1.5, n))


def _bimodal_memory(rng: np.random.Generator, n: int) -> np.ndarray:
    modes = rng.random(n) < 0.5
    low = rng.normal(4_000.0, 500.0, n)
    high = rng.normal(12_000.0, 800.0, n)
    return _clip_memory(np.where(modes, low, high))


def _bimodal_cores(rng: np.random.Generator, n: int) -> np.ndarray:
    modes = rng.random(n) < 0.5
    low = rng.normal(2.0, 0.3, n)
    high = rng.normal(8.0, 0.8, n)
    return _clip_cores(np.where(modes, low, high))


#: (mean, std) per phase of the Phasing Trimodal workflow.  The phases
#: are deliberately non-monotone (mid, high, low): a purely ascending
#: sequence is a gift to Max Seen (its running maximum tracks each new
#: phase), whereas the drop into the final phase punishes any algorithm
#: that cannot forget — exactly the moving-distribution stochasticity
#: this workflow exists to capture (Section II-D1, element 4).
_TRIMODAL_MEMORY_PHASES: Tuple[Tuple[float, float], ...] = (
    (8_000.0, 500.0),
    (13_000.0, 700.0),
    (3_000.0, 300.0),
)
_TRIMODAL_CORES_PHASES: Tuple[Tuple[float, float], ...] = (
    (6.0, 0.5),
    (10.0, 0.8),
    (2.0, 0.3),
)


def _phased(
    phases: Tuple[Tuple[float, float], ...],
    clip: Callable[[np.ndarray], np.ndarray],
) -> Callable[[np.random.Generator, int], np.ndarray]:
    def sampler(rng: np.random.Generator, n: int) -> np.ndarray:
        # Tasks run through the phases *in submission order*: the moving
        # distribution is the point of this workflow.
        boundaries = np.linspace(0, n, len(phases) + 1).astype(int)
        out = np.empty(n, dtype=np.float64)
        for (mean, std), lo, hi in zip(phases, boundaries[:-1], boundaries[1:]):
            out[lo:hi] = rng.normal(mean, std, hi - lo)
        return clip(out)

    return sampler


_SPECS: Dict[str, SyntheticSpec] = {
    "normal": SyntheticSpec(
        name="normal",
        description="N(8 GB, 2 GB) memory — common unimodal randomness",
        memory_sampler=_normal_memory,
        cores_sampler=_normal_cores,
    ),
    "uniform": SyntheticSpec(
        name="uniform",
        description="U(2 GB, 14 GB) memory — bounded flat randomness",
        memory_sampler=_uniform_memory,
        cores_sampler=_uniform_cores,
    ),
    "exponential": SyntheticSpec(
        name="exponential",
        description="shifted Exp(3 GB) memory — heavy-tailed outliers",
        memory_sampler=_exponential_memory,
        cores_sampler=_exponential_cores,
    ),
    "bimodal": SyntheticSpec(
        name="bimodal",
        description="50/50 mixture of N(4 GB) and N(12 GB) — task specialization",
        memory_sampler=_bimodal_memory,
        cores_sampler=_bimodal_cores,
    ),
    "trimodal": SyntheticSpec(
        name="trimodal",
        description="three sequential phases at 3/8/13 GB — moving distribution",
        memory_sampler=_phased(_TRIMODAL_MEMORY_PHASES, _clip_memory),
        cores_sampler=_phased(_TRIMODAL_CORES_PHASES, _clip_cores),
    ),
}

#: Names in the paper's presentation order.
SYNTHETIC_WORKFLOWS: Tuple[str, ...] = (
    "normal",
    "uniform",
    "exponential",
    "bimodal",
    "trimodal",
)


def make_synthetic_workflow(
    name: str, n_tasks: int = 1000, seed: Optional[int] = 0
) -> WorkflowSpec:
    """Generate one of the five synthetic workflows.

    Parameters
    ----------
    name:
        One of :data:`SYNTHETIC_WORKFLOWS`.
    n_tasks:
        Task count; the paper uses 1000, the scaling study (E-X1) goes
        to 20000.
    seed:
        RNG seed; the same (name, n_tasks, seed) always yields the same
        workflow.
    """
    try:
        spec = _SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown synthetic workflow {name!r}; choose from {SYNTHETIC_WORKFLOWS}"
        ) from None
    if n_tasks < 1:
        raise ValueError(f"n_tasks must be >= 1, got {n_tasks}")
    rng = np.random.default_rng(seed)
    memory = spec.memory_sampler(rng, n_tasks)
    disk = spec.memory_sampler(rng, n_tasks)  # same family, independent draw
    cores = spec.cores_sampler(rng, n_tasks)
    # Durations around a minute, independent of resource magnitudes.
    durations = np.clip(rng.lognormal(np.log(60.0), 0.35, n_tasks), 5.0, 600.0)

    tasks = [
        TaskSpec(
            task_id=i,
            category=f"synthetic_{name}",
            consumption=ResourceVector.of(
                cores=float(cores[i]), memory=float(memory[i]), disk=float(disk[i])
            ),
            duration=float(durations[i]),
        )
        for i in range(n_tasks)
    ]
    return WorkflowSpec(name=name, tasks=tasks)


def make_mixed_workflow(
    n_tasks: int = 1000,
    seed: Optional[int] = 0,
    categories: Tuple[str, ...] = ("normal", "exponential", "bimodal"),
) -> WorkflowSpec:
    """A multi-category stream interleaving several distributions.

    The paper's synthetic workflows are deliberately single-category
    (the worst case for the allocator); production workflows are not.
    This generator interleaves tasks from several synthetic families,
    each under its own category label, so per-category state isolation
    can be exercised at scale: a correct allocator must do as well on
    the mix as on the parts, while an allocator that pooled the records
    would blur three distributions into mush.

    Tasks are interleaved round-robin so every category is active
    throughout the run (no phase structure beyond the constituents').
    """
    if n_tasks < len(categories):
        raise ValueError(
            f"n_tasks={n_tasks} cannot cover {len(categories)} categories"
        )
    for name in categories:
        if name not in _SPECS:
            raise KeyError(
                f"unknown synthetic family {name!r}; choose from {SYNTHETIC_WORKFLOWS}"
            )
    rng = np.random.default_rng(seed)
    per_category = n_tasks // len(categories)
    streams = {}
    for index, name in enumerate(categories):
        spec = _SPECS[name]
        sub_rng = np.random.default_rng(rng.integers(2**63))
        count = per_category + (1 if index < n_tasks % len(categories) else 0)
        streams[name] = {
            "memory": spec.memory_sampler(sub_rng, count),
            "disk": spec.memory_sampler(sub_rng, count),
            "cores": spec.cores_sampler(sub_rng, count),
            "durations": np.clip(
                sub_rng.lognormal(np.log(60.0), 0.35, count), 5.0, 600.0
            ),
            "cursor": 0,
        }
    tasks = []
    task_id = 0
    while task_id < n_tasks:
        for name in categories:
            stream = streams[name]
            i = stream["cursor"]
            if i >= len(stream["memory"]) or task_id >= n_tasks:
                continue
            stream["cursor"] += 1
            tasks.append(
                TaskSpec(
                    task_id=task_id,
                    category=f"mixed_{name}",
                    consumption=ResourceVector.of(
                        cores=float(stream["cores"][i]),
                        memory=float(stream["memory"][i]),
                        disk=float(stream["disk"][i]),
                    ),
                    duration=float(stream["durations"][i]),
                )
            )
            task_id += 1
    return WorkflowSpec(name="mixed", tasks=tasks)


def normal_workflow(n_tasks: int = 1000, seed: Optional[int] = 0) -> WorkflowSpec:
    """The Normal synthetic workflow (see :func:`make_synthetic_workflow`)."""
    return make_synthetic_workflow("normal", n_tasks, seed)


def uniform_workflow(n_tasks: int = 1000, seed: Optional[int] = 0) -> WorkflowSpec:
    """The Uniform synthetic workflow."""
    return make_synthetic_workflow("uniform", n_tasks, seed)


def exponential_workflow(n_tasks: int = 1000, seed: Optional[int] = 0) -> WorkflowSpec:
    """The Exponential synthetic workflow (heavy-tailed outliers)."""
    return make_synthetic_workflow("exponential", n_tasks, seed)


def bimodal_workflow(n_tasks: int = 1000, seed: Optional[int] = 0) -> WorkflowSpec:
    """The Bimodal synthetic workflow (task specialization)."""
    return make_synthetic_workflow("bimodal", n_tasks, seed)


def trimodal_workflow(n_tasks: int = 1000, seed: Optional[int] = 0) -> WorkflowSpec:
    """The Phasing Trimodal synthetic workflow (moving distribution)."""
    return make_synthetic_workflow("trimodal", n_tasks, seed)
