"""ColmenaXTB-shaped trace generator (Figure 2, top row).

ColmenaXTB couples neural-network inference with molecular-dynamics
analysis for molecular search campaigns.  The paper's trace has two
strictly sequential phases (Section III-B):

1. 228 ``evaluate_mpnn`` tasks ranking candidate molecules —
   1.0-1.2 GB of memory, around one core;
2. 1000 ``compute_atomization_energy`` tasks on the top-ranked
   molecules — only ~200 MB of memory but wildly inconsistent core
   usage (0.9 to 3.6 cores: inherent task stochasticity).

Disk usage is tiny (~10 MB with spread) for every task, which combined
with the 1 GB exploratory disk allocation is why the paper reports
single-digit disk AWE for *all* algorithms on this workflow.

We do not have the original resource logs (the production runs used
proprietary cluster time); this generator synthesizes a trace matching
Figure 2's per-category marginals and the phase ordering, which is all
the allocation algorithms can observe.  See DESIGN.md §2 for the full
substitution argument.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.resources import ResourceVector
from repro.workflows.spec import TaskSpec, WorkflowSpec

__all__ = [
    "make_colmena_workflow",
    "N_EVALUATE_MPNN",
    "N_COMPUTE_ENERGY",
]

#: Task counts from Section III-B.
N_EVALUATE_MPNN = 228
N_COMPUTE_ENERGY = 1000


def _disk_mb(rng: np.random.Generator, n: int) -> np.ndarray:
    """~10 MB median with spread up to a few tens of MB (Figure 2)."""
    return np.clip(rng.lognormal(np.log(10.0), 0.5, n), 2.0, 100.0)


def make_colmena_workflow(
    seed: Optional[int] = 0,
    scale: float = 1.0,
) -> WorkflowSpec:
    """Generate a ColmenaXTB-shaped workflow.

    Parameters
    ----------
    seed:
        RNG seed for reproducible traces.
    scale:
        Multiplier on both phases' task counts (the >10k-task scaling
        study reuses this generator with ``scale > 1``).
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    rng = np.random.default_rng(seed)
    n_mpnn = max(1, int(round(N_EVALUATE_MPNN * scale)))
    n_energy = max(1, int(round(N_COMPUTE_ENERGY * scale)))

    tasks: List[TaskSpec] = []
    task_id = 0

    # Phase 1: evaluate_mpnn — memory 1.0-1.2 GB, ~1 core, GPU-less
    # inference batches of a couple of minutes.
    memory = rng.uniform(1_000.0, 1_200.0, n_mpnn)
    cores = np.clip(rng.normal(1.0, 0.15, n_mpnn), 0.5, 2.0)
    disk = _disk_mb(rng, n_mpnn)
    durations = np.clip(rng.lognormal(np.log(120.0), 0.3, n_mpnn), 20.0, 900.0)
    for i in range(n_mpnn):
        tasks.append(
            TaskSpec(
                task_id=task_id,
                category="evaluate_mpnn",
                consumption=ResourceVector.of(
                    cores=float(cores[i]),
                    memory=float(memory[i]),
                    disk=float(disk[i]),
                ),
                duration=float(durations[i]),
            )
        )
        task_id += 1

    # Phase 2: compute_atomization_energy — ~200 MB of memory, core
    # usage scattered across 0.9-3.6 cores (the xtb code's threading is
    # input dependent), runtimes of several minutes.
    memory = np.clip(rng.normal(200.0, 15.0, n_energy), 120.0, 300.0)
    cores = rng.uniform(0.9, 3.6, n_energy)
    disk = _disk_mb(rng, n_energy)
    durations = np.clip(rng.lognormal(np.log(300.0), 0.4, n_energy), 30.0, 1_800.0)
    for i in range(n_energy):
        tasks.append(
            TaskSpec(
                task_id=task_id,
                category="compute_atomization_energy",
                consumption=ResourceVector.of(
                    cores=float(cores[i]),
                    memory=float(memory[i]),
                    disk=float(disk[i]),
                ),
                duration=float(durations[i]),
            )
        )
        task_id += 1

    return WorkflowSpec(name="colmena_xtb", tasks=tasks)
