"""TopEFT-shaped trace generator (Figure 2, bottom row).

TopEFT applies effective field theory to LHC collision events through
the Coffea data-processing library.  The paper's trace (Section III-B):

* 363 ``preprocessing`` tasks scanning metadata (~180 MB memory);
* 3994 ``processing`` tasks analyzing event chunks — memory splits into
  two puzzling clusters around 450 MB and 580 MB (latent input-dataset
  structure the category label does not expose);
* 212 ``accumulating`` tasks merging partial histograms (~180 MB,
  indistinguishable from preprocessing in memory despite a different
  role — the case *against* cross-category correlation assumptions).

Cores sit at or below one for most tasks with rare outliers up to
three; disk is a constant 306 MB for every task, the detail behind the
paper's near-100 % disk AWE for the bucketing algorithms and Max Seen's
rounded 500 MB (Section V-C).

Coffea submits all preprocessing first, then interleaves accumulating
tasks into the processing stream as partial results become mergeable;
the generator reproduces that submission order.  As with ColmenaXTB,
the original logs are not redistributable, so this synthesizes a trace
matching the published marginals (DESIGN.md §2).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.resources import ResourceVector
from repro.workflows.spec import TaskSpec, WorkflowSpec

__all__ = [
    "make_topeft_workflow",
    "N_PREPROCESSING",
    "N_PROCESSING",
    "N_ACCUMULATING",
    "TOPEFT_DISK_MB",
]

#: Task counts from Section III-B.
N_PREPROCESSING = 363
N_PROCESSING = 3994
N_ACCUMULATING = 212

#: Every TopEFT task consumes exactly this much disk (Section V-C).
TOPEFT_DISK_MB = 306.0


def _cores(rng: np.random.Generator, n: int) -> np.ndarray:
    """Mostly <= 1 core, with ~4 % outliers reaching up to 3 cores."""
    base = np.clip(rng.normal(0.8, 0.12, n), 0.3, 1.0)
    outliers = rng.random(n) < 0.04
    spikes = rng.uniform(1.5, 3.0, n)
    return np.where(outliers, spikes, base)


def make_topeft_workflow(
    seed: Optional[int] = 0,
    scale: float = 1.0,
) -> WorkflowSpec:
    """Generate a TopEFT-shaped workflow.

    ``scale`` multiplies all three categories' task counts (scaling
    study hook); submission order is preprocessing first, then
    processing with accumulating tasks interleaved.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    rng = np.random.default_rng(seed)
    n_pre = max(1, int(round(N_PREPROCESSING * scale)))
    n_proc = max(1, int(round(N_PROCESSING * scale)))
    n_acc = max(1, int(round(N_ACCUMULATING * scale)))

    tasks: List[TaskSpec] = []
    task_id = 0

    def emit(category: str, memory: float, cores: float, duration: float) -> None:
        nonlocal task_id
        tasks.append(
            TaskSpec(
                task_id=task_id,
                category=category,
                consumption=ResourceVector.of(
                    cores=cores, memory=memory, disk=TOPEFT_DISK_MB
                ),
                duration=duration,
            )
        )
        task_id += 1

    # Preprocessing: metadata scans, ~180 MB, under a minute.
    pre_mem = np.clip(rng.normal(180.0, 12.0, n_pre), 130.0, 240.0)
    pre_cores = _cores(rng, n_pre)
    pre_dur = np.clip(rng.lognormal(np.log(45.0), 0.35, n_pre), 10.0, 240.0)
    for i in range(n_pre):
        emit("preprocessing", float(pre_mem[i]), float(pre_cores[i]), float(pre_dur[i]))

    # Processing: the two memory clusters of Figure 2 (~60 % at 580 MB,
    # ~40 % at 450 MB), minutes-long event-chunk analyses.
    cluster_high = rng.random(n_proc) < 0.6
    proc_mem = np.where(
        cluster_high,
        rng.normal(580.0, 18.0, n_proc),
        rng.normal(450.0, 18.0, n_proc),
    )
    proc_mem = np.clip(proc_mem, 380.0, 680.0)
    proc_cores = _cores(rng, n_proc)
    proc_dur = np.clip(rng.lognormal(np.log(180.0), 0.4, n_proc), 20.0, 1_200.0)

    # Accumulating: histogram merges, memory indistinguishable from
    # preprocessing, quick.
    acc_mem = np.clip(rng.normal(180.0, 12.0, n_acc), 130.0, 240.0)
    acc_cores = _cores(rng, n_acc)
    acc_dur = np.clip(rng.lognormal(np.log(60.0), 0.35, n_acc), 10.0, 300.0)

    # Interleave: one accumulating task after every `stride` processing
    # tasks, mirroring Coffea's merge-as-you-go submission.
    stride = max(1, n_proc // (n_acc + 1))
    acc_iter = iter(range(n_acc))
    next_acc = next(acc_iter, None)
    for i in range(n_proc):
        emit("processing", float(proc_mem[i]), float(proc_cores[i]), float(proc_dur[i]))
        if next_acc is not None and (i + 1) % stride == 0:
            j = next_acc
            emit("accumulating", float(acc_mem[j]), float(acc_cores[j]), float(acc_dur[j]))
            next_acc = next(acc_iter, None)
    # Flush accumulating tasks the stride did not cover.
    while next_acc is not None:
        j = next_acc
        emit("accumulating", float(acc_mem[j]), float(acc_cores[j]), float(acc_dur[j]))
        next_acc = next(acc_iter, None)

    return WorkflowSpec(name="topeft", tasks=tasks)
