"""Dynamic dependency graphs for structured workflows.

The paper's evaluation workflows are dependency-free task streams, but
dynamic workflow systems exist precisely because applications generate
*dependent* tasks at runtime (Figure 1).  :class:`DynamicDAG` is the
builder the example applications use to express such structures —
map-reduce trees, multi-stage pipelines — and hand them to the
simulator as a :class:`~repro.workflows.spec.WorkflowSpec`.

networkx backs the graph so examples can also inspect structure
(critical path, levels) the way a workflow manager would.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import networkx as nx

from repro.core.resources import ResourceVector
from repro.workflows.spec import TaskSpec, WorkflowSpec

__all__ = ["DynamicDAG"]


class DynamicDAG:
    """Incrementally built task dependency graph.

    Tasks are added in submission order (IDs are assigned densely from
    0) and may only depend on already-added tasks — the defining
    property of dynamically generated workflows.

    Examples
    --------
    >>> from repro.core.resources import ResourceVector
    >>> from repro.workflows.dag import DynamicDAG
    >>> dag = DynamicDAG()
    >>> maps = [dag.add_task("map", ResourceVector.of(cores=1, memory=500),
    ...                      duration=30.0) for _ in range(4)]
    >>> reduce_id = dag.add_task("reduce", ResourceVector.of(cores=2, memory=2000),
    ...                          duration=60.0, dependencies=maps)
    >>> dag.level_of(reduce_id)
    1
    """

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._specs: List[TaskSpec] = []

    def add_task(
        self,
        category: str,
        consumption: ResourceVector,
        duration: float,
        dependencies: Sequence[int] = (),
    ) -> int:
        """Append a task; returns its assigned ID."""
        task_id = len(self._specs)
        deps = tuple(sorted(set(int(d) for d in dependencies)))
        for dep in deps:
            if not (0 <= dep < task_id):
                raise ValueError(
                    f"task {task_id} cannot depend on {dep}: dependencies must "
                    "reference earlier tasks"
                )
        spec = TaskSpec(
            task_id=task_id,
            category=category,
            consumption=consumption,
            duration=duration,
            dependencies=deps,
        )
        self._specs.append(spec)
        self._graph.add_node(task_id, category=category)
        for dep in deps:
            self._graph.add_edge(dep, task_id)
        return task_id

    # -- structure queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._specs)

    @property
    def graph(self) -> nx.DiGraph:
        """The underlying networkx graph (edges point parent -> child)."""
        return self._graph

    def parents_of(self, task_id: int) -> Tuple[int, ...]:
        return tuple(sorted(self._graph.predecessors(task_id)))

    def children_of(self, task_id: int) -> Tuple[int, ...]:
        return tuple(sorted(self._graph.successors(task_id)))

    def level_of(self, task_id: int) -> int:
        """Longest path (in edges) from any root to this task."""
        parents = list(self._graph.predecessors(task_id))
        if not parents:
            return 0
        return 1 + max(self.level_of(p) for p in parents)

    def levels(self) -> Dict[int, int]:
        """Level of every task, computed in one topological pass."""
        level: Dict[int, int] = {}
        for node in nx.topological_sort(self._graph):
            parents = list(self._graph.predecessors(node))
            level[node] = 1 + max((level[p] for p in parents), default=-1)
        return level

    def critical_path_length(self) -> float:
        """Longest duration-weighted chain — the ideal lower bound on makespan."""
        longest: Dict[int, float] = {}
        for node in nx.topological_sort(self._graph):
            duration = self._specs[node].duration
            parents = list(self._graph.predecessors(node))
            longest[node] = duration + max((longest[p] for p in parents), default=0.0)
        return max(longest.values(), default=0.0)

    # -- export ----------------------------------------------------------------------

    def to_workflow(self, name: str) -> WorkflowSpec:
        """Freeze the DAG into an immutable workflow specification."""
        return WorkflowSpec(name=name, tasks=self._specs)
