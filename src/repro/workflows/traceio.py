"""Workflow trace serialization.

Lets users run the allocator against *their own* traces instead of the
built-in generators, and archive generated workloads for exact re-runs:

* :func:`save_workflow` / :func:`load_workflow` — JSON round-trip of a
  :class:`~repro.workflows.spec.WorkflowSpec` (task IDs, categories,
  per-resource peak consumption, durations, dependencies);
* :func:`workflow_from_records` — build a workflow from an iterable of
  plain dicts (one per task), the shape most monitoring systems export;
* :func:`export_attempts_csv` — dump a completed simulation's attempt
  log (one row per attempt: allocation, runtime, outcome) for external
  analysis.

The JSON schema is versioned; loaders reject schemas they do not know
rather than guessing.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.checkpoint import write_text_atomic
from repro.core.resources import RESOURCES, Resource, ResourceVector
from repro.workflows.spec import TaskSpec, WorkflowSpec

__all__ = [
    "SCHEMA_VERSION",
    "workflow_to_dict",
    "workflow_from_dict",
    "workflow_from_records",
    "save_workflow",
    "load_workflow",
    "export_attempts_csv",
]

#: Current trace schema version.
SCHEMA_VERSION = 1


def workflow_to_dict(workflow: WorkflowSpec) -> Dict:
    """Serialize a workflow to a JSON-compatible dict."""
    return {
        "schema": SCHEMA_VERSION,
        "name": workflow.name,
        "tasks": [
            {
                "task_id": task.task_id,
                "category": task.category,
                "consumption": {
                    res.key: value for res, value in task.consumption.raw.items()
                },
                "duration": task.duration,
                "dependencies": list(task.dependencies),
            }
            for task in workflow
        ],
    }


def workflow_from_dict(data: Mapping) -> WorkflowSpec:
    """Deserialize a workflow from :func:`workflow_to_dict`'s format."""
    schema = data.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema {schema!r} (this build reads {SCHEMA_VERSION})"
        )
    name = data.get("name")
    if not name:
        raise ValueError("trace is missing a workflow name")
    tasks: List[TaskSpec] = []
    for entry in data["tasks"]:
        consumption = ResourceVector(
            {RESOURCES.get(key): value for key, value in entry["consumption"].items()}
        )
        tasks.append(
            TaskSpec(
                task_id=int(entry["task_id"]),
                category=str(entry["category"]),
                consumption=consumption,
                duration=float(entry["duration"]),
                dependencies=tuple(int(d) for d in entry.get("dependencies", ())),
            )
        )
    return WorkflowSpec(name=str(name), tasks=tasks)


def workflow_from_records(
    name: str,
    records: Iterable[Mapping],
    category_key: str = "category",
    duration_key: str = "duration",
) -> WorkflowSpec:
    """Build a workflow from plain per-task dicts in submission order.

    Every key other than ``category_key``, ``duration_key`` and
    ``dependencies`` is treated as a resource consumption (the key must
    name a registered resource kind).  Task IDs are assigned from the
    iteration order, matching the dynamic-workflow convention.

    >>> from repro.workflows.traceio import workflow_from_records
    >>> wf = workflow_from_records("mine", [
    ...     {"category": "fit", "duration": 120.0, "cores": 1, "memory": 900},
    ...     {"category": "fit", "duration": 90.0, "cores": 1, "memory": 840},
    ... ])
    >>> len(wf)
    2
    """
    reserved = {category_key, duration_key, "dependencies"}
    tasks: List[TaskSpec] = []
    for task_id, record in enumerate(records):
        if category_key not in record or duration_key not in record:
            raise ValueError(
                f"record {task_id} is missing {category_key!r} or {duration_key!r}"
            )
        consumption = ResourceVector(
            {
                RESOURCES.get(key): float(value)
                for key, value in record.items()
                if key not in reserved
            }
        )
        tasks.append(
            TaskSpec(
                task_id=task_id,
                category=str(record[category_key]),
                consumption=consumption,
                duration=float(record[duration_key]),
                dependencies=tuple(int(d) for d in record.get("dependencies", ())),
            )
        )
    return WorkflowSpec(name=name, tasks=tasks)


def save_workflow(workflow: WorkflowSpec, path: Union[str, Path]) -> None:
    """Write a workflow trace as JSON (atomic: never leaves a torn trace)."""
    write_text_atomic(str(path), json.dumps(workflow_to_dict(workflow), indent=1))


def load_workflow(path: Union[str, Path]) -> WorkflowSpec:
    """Read a workflow trace written by :func:`save_workflow`."""
    return workflow_from_dict(json.loads(Path(path).read_text()))


def export_attempts_csv(
    tasks: Iterable,  # Iterable[SimTask]; untyped to avoid a sim import cycle
    resources: Sequence[Resource],
    path: Optional[Union[str, Path]] = None,
) -> str:
    """Dump attempt history as CSV; returns the text (and writes it).

    One row per attempt: task, category, attempt index, outcome,
    runtime, then ``alloc_<res>`` and ``observed_<res>`` per resource.
    """
    buffer = io.StringIO()
    fields = ["task_id", "category", "attempt", "outcome", "start_time", "runtime"]
    for res in resources:
        fields.append(f"alloc_{res.key}")
    for res in resources:
        fields.append(f"observed_{res.key}")
    writer = csv.DictWriter(buffer, fieldnames=fields, lineterminator="\n")
    writer.writeheader()
    for task in tasks:
        for attempt in task.attempts:
            row = {
                "task_id": task.task_id,
                "category": task.category,
                "attempt": attempt.index,
                "outcome": attempt.outcome.value,
                "start_time": f"{attempt.start_time:.3f}",
                "runtime": f"{attempt.runtime:.3f}",
            }
            for res in resources:
                row[f"alloc_{res.key}"] = f"{attempt.allocation[res]:.4f}"
                row[f"observed_{res.key}"] = f"{attempt.observed[res]:.4f}"
            writer.writerow(row)
    text = buffer.getvalue()
    if path is not None:
        write_text_atomic(str(path), text)
    return text
