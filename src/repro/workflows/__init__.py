"""Workload generators and workflow specifications.

* :mod:`repro.workflows.spec` — ``TaskSpec`` / ``WorkflowSpec``: the
  hidden-consumption task model of Section II-B.
* :mod:`repro.workflows.synthetic` — the five synthetic workflows of
  Figure 4 (Normal, Uniform, Exponential, Bimodal, Phasing Trimodal).
* :mod:`repro.workflows.colmena` — a ColmenaXTB-shaped trace generator
  (two sequential phases: 228 ``evaluate_mpnn`` + 1000
  ``compute_atomization_energy`` tasks, Figure 2 top row).
* :mod:`repro.workflows.topeft` — a TopEFT-shaped trace generator
  (363 ``preprocessing`` + 3994 ``processing`` + 212 ``accumulating``
  tasks, Figure 2 bottom row).
* :mod:`repro.workflows.dag` — dynamic dependency graphs for structured
  example applications.
"""

from repro.workflows.colmena import make_colmena_workflow
from repro.workflows.dag import DynamicDAG
from repro.workflows.spec import TaskSpec, WorkflowSpec
from repro.workflows.synthetic import (
    SYNTHETIC_WORKFLOWS,
    SyntheticSpec,
    bimodal_workflow,
    exponential_workflow,
    make_mixed_workflow,
    make_synthetic_workflow,
    normal_workflow,
    trimodal_workflow,
    uniform_workflow,
)
from repro.workflows.topeft import make_topeft_workflow
from repro.workflows.traceio import (
    export_attempts_csv,
    load_workflow,
    save_workflow,
    workflow_from_dict,
    workflow_from_records,
    workflow_to_dict,
)

__all__ = [
    "TaskSpec",
    "WorkflowSpec",
    "SyntheticSpec",
    "make_synthetic_workflow",
    "make_mixed_workflow",
    "normal_workflow",
    "uniform_workflow",
    "exponential_workflow",
    "bimodal_workflow",
    "trimodal_workflow",
    "SYNTHETIC_WORKFLOWS",
    "make_colmena_workflow",
    "make_topeft_workflow",
    "DynamicDAG",
    "save_workflow",
    "load_workflow",
    "workflow_from_records",
    "workflow_to_dict",
    "workflow_from_dict",
    "export_attempts_csv",
]
