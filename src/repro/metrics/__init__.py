"""Metrics: resource waste, Absolute Workflow Efficiency, summaries.

Thin, dependency-free functions over attempt histories and ledgers —
the experiment harness and the tests both consume these, so the
formulas of Section II-C live in exactly one place
(:mod:`repro.sim.accounting` for the streaming form, here for the
closed-form per-task form used to cross-check it).
"""

from repro.metrics.efficiency import awe_from_ledger, awe_from_tasks
from repro.metrics.summary import (
    EfficiencySummary,
    convergence_series,
    summarize_grid,
    summarize_result,
)
from repro.metrics.waste import (
    task_failed_allocation,
    task_internal_fragmentation,
    task_resource_waste,
)

__all__ = [
    "task_resource_waste",
    "task_internal_fragmentation",
    "task_failed_allocation",
    "awe_from_tasks",
    "awe_from_ledger",
    "EfficiencySummary",
    "summarize_result",
    "summarize_grid",
    "convergence_series",
]
