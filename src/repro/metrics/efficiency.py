"""Absolute Workflow Efficiency (AWE) — Section II-C.

``AWE = sum_i C(T_i) / sum_i A(T_i)`` where ``C(T_i) = c_i * t_i`` and
``A(T_i)`` is the total allocation across all of task i's attempts.
The metric is worker-count independent: it charges only what the
workflow itself requested and consumed, which is what makes it the
right yardstick on opportunistic pools.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.core.resources import Resource
from repro.sim.accounting import Ledger
from repro.sim.task import AttemptOutcome, SimTask

__all__ = ["awe_from_tasks", "awe_from_ledger"]


def awe_from_tasks(tasks: Iterable[SimTask], resource: Resource) -> float:
    """Closed-form AWE over completed tasks (cross-check for the ledger).

    Evicted attempts are excluded from the denominator, mirroring
    :class:`~repro.sim.accounting.Ledger` (the metric must not depend on
    pool churn).
    """
    consumed = 0.0
    allocated = 0.0
    for task in tasks:
        if not task.attempts or task.attempts[-1].outcome is not AttemptOutcome.SUCCESS:
            raise ValueError(f"task {task.task_id} has not completed successfully")
        consumed += task.spec.consumption[resource] * task.spec.duration
        for attempt in task.attempts:
            if attempt.outcome is AttemptOutcome.EVICTED:
                continue
            allocated += attempt.allocation[resource] * attempt.runtime
    if allocated <= 0.0:
        return 1.0 if consumed <= 0.0 else 0.0
    return consumed / allocated


def awe_from_ledger(ledger: Ledger) -> Dict[Resource, float]:
    """AWE for every resource the ledger tracks."""
    return ledger.awe_all()
