"""Per-task resource waste, straight from Section II-C.

For a task ``T`` allocated ``a`` units over ``t`` seconds that consumed
at most ``c`` units, after ``k`` failed allocation attempts of
``(a_i, t_i)`` each:

``ResourceWaste(T) = t * (a - c) + sum_{i=1..k} a_i * t_i``

These closed-form functions operate on a completed
:class:`~repro.sim.task.SimTask`'s attempt history and exist primarily
so tests can cross-check the streaming accumulation in
:class:`~repro.sim.accounting.Ledger` against an independent
implementation.
"""

from __future__ import annotations

from repro.core.resources import Resource
from repro.sim.task import AttemptOutcome, SimTask

__all__ = [
    "task_internal_fragmentation",
    "task_failed_allocation",
    "task_eviction_holding",
    "task_resource_waste",
]


def _require_completed(task: SimTask) -> None:
    if not task.attempts or task.attempts[-1].outcome is not AttemptOutcome.SUCCESS:
        raise ValueError(f"task {task.task_id} has not completed successfully")


def task_internal_fragmentation(task: SimTask, resource: Resource) -> float:
    """``t * (a - c)`` on the successful attempt (resource-seconds)."""
    _require_completed(task)
    final = task.attempts[-1]
    return max(
        0.0,
        (final.allocation[resource] - task.spec.consumption[resource]) * final.runtime,
    )


def task_failed_allocation(task: SimTask, resource: Resource) -> float:
    """``sum a_i * t_i`` over the exhaustion-killed attempts."""
    _require_completed(task)
    return sum(
        attempt.allocation[resource] * attempt.runtime
        for attempt in task.attempts
        if attempt.outcome is AttemptOutcome.EXHAUSTED
    )


def task_eviction_holding(task: SimTask, resource: Resource) -> float:
    """Resource-seconds held by attempts lost to worker eviction.

    Outside the paper's waste definition (see
    :mod:`repro.sim.accounting`); reported separately.
    """
    _require_completed(task)
    return sum(
        attempt.allocation[resource] * attempt.runtime
        for attempt in task.attempts
        if attempt.outcome is AttemptOutcome.EVICTED
    )


def task_resource_waste(task: SimTask, resource: Resource) -> float:
    """The paper's ResourceWaste(T): fragmentation + failed allocation."""
    return task_internal_fragmentation(task, resource) + task_failed_allocation(
        task, resource
    )
