"""Result summarization for the experiment harness.

Folds :class:`~repro.sim.manager.SimulationResult` objects into the flat
rows the per-figure experiment modules print, plus the convergence
series used by the scaling study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.core.resources import Resource
from repro.sim.manager import SimulationResult

__all__ = [
    "EfficiencySummary",
    "summarize_result",
    "summarize_grid",
    "convergence_series",
]


@dataclass(frozen=True)
class EfficiencySummary:
    """One (workflow, algorithm) cell of the Figure 5 grid."""

    workflow: str
    algorithm: str
    awe: Mapping[str, float]                 # resource key -> AWE
    waste_fragmentation: Mapping[str, float]  # resource key -> resource-seconds
    waste_failed: Mapping[str, float]
    n_tasks: int
    n_attempts: int
    n_failed_attempts: int
    makespan: float

    def failed_fraction(self, resource_key: str) -> float:
        """Share of the (paper-defined) waste due to failed allocations."""
        frag = self.waste_fragmentation[resource_key]
        failed = self.waste_failed[resource_key]
        total = frag + failed
        return failed / total if total > 0 else 0.0


def summarize_result(result: SimulationResult) -> EfficiencySummary:
    """Flatten one simulation result into an EfficiencySummary."""
    awe: Dict[str, float] = {}
    frag: Dict[str, float] = {}
    failed: Dict[str, float] = {}
    for res in result.ledger.resources:
        awe[res.key] = result.ledger.awe(res)
        breakdown = result.ledger.waste(res)
        frag[res.key] = breakdown.internal_fragmentation
        failed[res.key] = breakdown.failed_allocation
    return EfficiencySummary(
        workflow=result.workflow_name,
        algorithm=result.algorithm,
        awe=awe,
        waste_fragmentation=frag,
        waste_failed=failed,
        n_tasks=result.n_tasks,
        n_attempts=result.n_attempts,
        n_failed_attempts=result.n_failed_attempts,
        makespan=result.makespan,
    )


def summarize_grid(
    results: Iterable[SimulationResult],
) -> Dict[Tuple[str, str], EfficiencySummary]:
    """Index summaries by (workflow, algorithm) for table rendering."""
    grid: Dict[Tuple[str, str], EfficiencySummary] = {}
    for result in results:
        key = (result.workflow_name, result.algorithm)
        if key in grid:
            raise ValueError(f"duplicate grid cell {key}")
        grid[key] = summarize_result(result)
    return grid


def convergence_series(
    result: SimulationResult, resource: Resource, window: int = 50
) -> List[float]:
    """Windowed per-task efficiency over completion order.

    Unlike the cumulative AWE series, a sliding window shows *current*
    allocator quality — the scaling study uses it to show the bucketing
    algorithms converging to a steady state (Section VII's >10k-task
    hypothesis).
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    usages = result.ledger.task_usages()
    series: List[float] = []
    consumed_window: List[float] = []
    allocated_window: List[float] = []
    consumed_sum = 0.0
    allocated_sum = 0.0
    for usage in usages:
        consumed_window.append(usage.consumption[resource])
        allocated_window.append(usage.allocation[resource])
        consumed_sum += consumed_window[-1]
        allocated_sum += allocated_window[-1]
        if len(consumed_window) > window:
            consumed_sum -= consumed_window.pop(0)
            allocated_sum -= allocated_window.pop(0)
        series.append(consumed_sum / allocated_sum if allocated_sum > 0 else 0.0)
    return series
