"""Crash-safe checkpointing: atomic writes, versioned snapshots, resume.

Production resource managers treat predictor/scheduler state as durable,
restartable state; this module gives the reproduction the same property
across its three layers:

* **Durable allocator state** — every algorithm and the
  :class:`~repro.core.allocator.TaskOrientedAllocator` expose
  ``state_dict()`` / ``load_state()`` built on the JSON-safe primitives
  here.  Serialization is *bit-exact*: float64 values round-trip through
  JSON's shortest-repr float encoding, prefix-sum buffers are stored
  verbatim (never recomputed, which would change rounding), and RNG
  states are captured via ``Generator.bit_generator.state``.
* **Resumable simulations** — the event queue holds closures and cannot
  be pickled, so a simulation snapshot is *replay-based*: it records how
  many engine events have been processed plus verification digests
  (trace hash, allocator state hash, pool/fault RNG states).  Resuming
  rebuilds the manager from its config, replays exactly that many events
  (the engine is deterministic, so the rebuilt state is bit-identical),
  verifies every digest, and continues.  A mismatch means the config or
  code changed and the checkpoint is refused rather than silently
  diverging.
* **Graceful shutdown** — :class:`GracefulShutdown` converts SIGINT /
  SIGTERM into a flag the :class:`SimulationCheckpointer` observes after
  every event: it writes one final snapshot, flushes atomically, and
  raises :class:`SimulationInterrupted` so the caller can exit cleanly
  with ``128 + signum``.

This module deliberately imports nothing from ``repro`` at module scope
(the core layer imports it), keeping the dependency graph acyclic.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal as _signal
import tempfile
import threading
import time as _time
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "FORMAT_VERSION",
    "CheckpointError",
    "SimulationInterrupted",
    "GridInterrupted",
    "write_text_atomic",
    "write_json_atomic",
    "append_jsonl",
    "JournalWriter",
    "read_jsonl",
    "canonical_json",
    "state_digest",
    "generator_state",
    "restore_generator",
    "save_checkpoint",
    "load_checkpoint",
    "GracefulShutdown",
    "SimulationCheckpointer",
]

#: Version of the on-disk checkpoint envelope.  Bumped on any change to
#: the payload schemas; loaders refuse versions they do not understand.
FORMAT_VERSION = 1

#: Magic identifying repro checkpoint files.
MAGIC = "repro-checkpoint"


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, read, or verified."""


class SimulationInterrupted(RuntimeError):
    """A shutdown signal arrived mid-simulation; a snapshot was written.

    Attributes
    ----------
    path:
        Where the final snapshot landed.
    signum:
        The signal that triggered the shutdown (``None`` for a manual
        trip, e.g. in tests).
    """

    def __init__(self, path: str, signum: Optional[int]) -> None:
        super().__init__(f"simulation interrupted (signal {signum}); snapshot at {path}")
        self.path = path
        self.signum = signum


class GridInterrupted(RuntimeError):
    """A shutdown signal arrived mid-grid; completed cells are journaled.

    Attributes
    ----------
    signum:
        The triggering signal (``None`` for a manual trip).
    completed:
        Number of cells durably journaled before the interrupt.
    """

    def __init__(self, signum: Optional[int], completed: int) -> None:
        super().__init__(
            f"grid interrupted (signal {signum}) after {completed} journaled "
            "cells; relaunch with --resume to continue"
        )
        self.signum = signum
        self.completed = completed


# ---------------------------------------------------------------------------
# Atomic IO
# ---------------------------------------------------------------------------


def write_text_atomic(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp + fsync + os.replace).

    A crash at any point leaves either the old file or the new one —
    never a torn mix.  The temp file lives in the target's directory so
    the final ``os.replace`` stays on one filesystem.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def write_json_atomic(path: str, doc: Any) -> None:
    """Atomically write ``doc`` as JSON (exact float round-trip)."""
    write_text_atomic(path, json.dumps(doc, indent=None, separators=(",", ":")))


def append_jsonl(path: str, doc: Any) -> None:
    """Append one JSON line durably (write + flush + fsync).

    The classic write-ahead-log append: a crash can tear at most the
    *final* line, which :func:`read_jsonl` tolerates and drops.
    """
    line = json.dumps(doc, indent=None, separators=(",", ":"))
    if "\n" in line:  # pragma: no cover - json never emits raw newlines
        raise CheckpointError("journal documents must serialize to one line")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())


class JournalWriter:
    """A held-open JSONL write-ahead log with group commit.

    :func:`append_jsonl` reopens the file and fsyncs per document —
    correct, but a per-operation fsync caps a high-rate writer at the
    disk's flush latency.  The allocation service instead drains its
    queue into batches and commits each batch with **one**
    flush + fsync (``sync="batch"``); a crash can then lose at most the
    *tail* of the final batch, which :func:`read_jsonl`'s torn-line
    tolerance plus the reader's sequence-number filter already handle.
    ``sync="op"`` restores the per-document fsync, ``sync="none"``
    leaves flushing to the OS (benchmarks and tests only).
    """

    SYNC_MODES = ("batch", "op", "none")

    def __init__(self, path: str, sync: str = "batch") -> None:
        if sync not in self.SYNC_MODES:
            raise ValueError(f"sync must be one of {self.SYNC_MODES}, got {sync!r}")
        directory = os.path.dirname(os.path.abspath(path)) or "."
        os.makedirs(directory, exist_ok=True)
        self._path = path
        self._sync = sync
        self._handle = open(path, "a", encoding="utf-8")

    @property
    def path(self) -> str:
        return self._path

    def append_many(self, docs: List[Any]) -> None:
        """Durably append ``docs`` in order with one group commit."""
        if not docs:
            return
        lines = []
        for doc in docs:
            line = json.dumps(doc, indent=None, separators=(",", ":"))
            if "\n" in line:  # pragma: no cover - json never emits raw newlines
                raise CheckpointError("journal documents must serialize to one line")
            lines.append(line)
            if self._sync == "op":
                self._handle.write(line + "\n")
                self._handle.flush()
                os.fsync(self._handle.fileno())
        if self._sync != "op":
            self._handle.write("\n".join(lines) + "\n")
            self._handle.flush()
            if self._sync == "batch":
                os.fsync(self._handle.fileno())

    def append(self, doc: Any) -> None:
        self.append_many([doc])

    def truncate(self) -> None:
        """Drop every journaled document (after a covering snapshot)."""
        self._handle.close()
        self._handle = open(self._path, "w", encoding="utf-8")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            if self._sync != "none":
                os.fsync(self._handle.fileno())
            self._handle.close()

    def abandon(self) -> None:
        """Drop the handle without the final fsync (crash simulation).

        Everything already committed by ``append_many`` survives, but
        nothing is force-flushed to stable storage on the way out — the
        chaos crash points use this so a simulated death matches what a
        real ``kill -9`` leaves behind.
        """
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_jsonl(path: str) -> List[Any]:
    """Read a JSONL journal, dropping a torn (crash-truncated) last line.

    A malformed line anywhere *but* the end means real corruption and
    raises :class:`CheckpointError`.
    """
    docs: List[Any] = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().split("\n")
    # A well-formed file ends with "\n", so the final split element is "".
    while lines and lines[-1] == "":
        lines.pop()
    for i, line in enumerate(lines):
        try:
            docs.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # torn tail from a crash mid-append; WAL semantics
            raise CheckpointError(
                f"corrupt journal {path!r}: malformed line {i + 1} of {len(lines)}"
            ) from None
    return docs


# ---------------------------------------------------------------------------
# Canonical hashing & RNG state
# ---------------------------------------------------------------------------


def canonical_json(obj: Any) -> str:
    """Deterministic JSON rendering (sorted keys, tight separators)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def state_digest(obj: Any) -> str:
    """sha256 hex digest of an object's canonical JSON form."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def generator_state(gen) -> Dict[str, Any]:
    """JSON-safe snapshot of a ``numpy.random.Generator``'s state."""
    return _jsonify(gen.bit_generator.state)


def restore_generator(gen, state: Dict[str, Any]) -> None:
    """Restore a generator captured by :func:`generator_state` in place."""
    current = gen.bit_generator.state
    if state.get("bit_generator") != current.get("bit_generator"):
        raise CheckpointError(
            f"RNG kind mismatch: checkpoint has {state.get('bit_generator')!r}, "
            f"generator is {current.get('bit_generator')!r}"
        )
    gen.bit_generator.state = state


def _jsonify(obj: Any) -> Any:
    """Recursively convert numpy scalars/arrays to plain JSON types."""
    if isinstance(obj, dict):
        return {str(k): _jsonify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonify(v) for v in obj]
    if hasattr(obj, "item") and not isinstance(obj, (str, bytes)):
        try:
            return _jsonify(obj.tolist())
        except AttributeError:  # pragma: no cover - numpy scalars have tolist
            return obj.item()
    return obj


# ---------------------------------------------------------------------------
# Versioned checkpoint envelope
# ---------------------------------------------------------------------------


def save_checkpoint(path: str, kind: str, payload: Dict[str, Any]) -> None:
    """Atomically write one versioned checkpoint document."""
    write_json_atomic(
        path,
        {
            "magic": MAGIC,
            "version": FORMAT_VERSION,
            "kind": kind,
            "payload": payload,
        },
    )


def load_checkpoint(path: str, kind: Optional[str] = None) -> Tuple[str, Dict[str, Any]]:
    """Read and validate a checkpoint envelope; returns (kind, payload)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("magic") != MAGIC:
        raise CheckpointError(f"{path!r} is not a repro checkpoint")
    version = doc.get("version")
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has format version {version!r}; "
            f"this build reads version {FORMAT_VERSION}"
        )
    if kind is not None and doc.get("kind") != kind:
        raise CheckpointError(
            f"checkpoint {path!r} holds a {doc.get('kind')!r} snapshot, "
            f"expected {kind!r}"
        )
    payload = doc.get("payload")
    if not isinstance(payload, dict):
        raise CheckpointError(f"checkpoint {path!r} has no payload")
    return str(doc.get("kind")), payload


# ---------------------------------------------------------------------------
# Graceful shutdown
# ---------------------------------------------------------------------------


class GracefulShutdown:
    """Context manager turning SIGINT/SIGTERM into a cooperative flag.

    The first signal sets :attr:`triggered`; checkpoint-aware loops poll
    it at safe points, write their snapshot, and unwind.  The previous
    handlers are restored on the *first* signal, so a second Ctrl-C
    terminates immediately (the operator's escape hatch), and again on
    context exit.  Handler installation is skipped off the main thread
    (Python forbids it) and with ``install=False`` (tests drive
    :meth:`trip` directly).
    """

    SIGNALS = (_signal.SIGINT, _signal.SIGTERM)

    def __init__(self, install: bool = True) -> None:
        self._install = install
        self._previous: Dict[int, Any] = {}
        self.triggered = False
        self.signum: Optional[int] = None

    def __enter__(self) -> "GracefulShutdown":
        if self._install and threading.current_thread() is threading.main_thread():
            for signum in self.SIGNALS:
                self._previous[signum] = _signal.signal(signum, self._handle)
        return self

    def __exit__(self, *exc_info) -> None:
        self._restore()

    def _handle(self, signum, frame) -> None:
        self.trip(signum)

    def trip(self, signum: Optional[int] = None) -> None:
        """Mark shutdown requested (signal handler and test hook)."""
        self.triggered = True
        self.signum = signum
        self._restore()

    def _restore(self) -> None:
        for signum, previous in self._previous.items():
            _signal.signal(signum, previous)
        self._previous.clear()


# ---------------------------------------------------------------------------
# Simulation checkpointer
# ---------------------------------------------------------------------------

#: Payload kind of simulation snapshots.
SIMULATION_KIND = "simulation"

#: Payload kind of allocation-service snapshots: one envelope holding a
#: consistent cut of *every* shard (allocator state, applied-op sequence
#: number, backpressure breaker) taken under a full quiesce barrier, so
#: no operation is ever split across the cut.  Written by
#: :meth:`repro.service.AllocationService.snapshot`.
SERVICE_KIND = "service"


class SimulationCheckpointer:
    """Periodic + on-signal snapshots of one running simulation.

    Attach to a **freshly constructed** (not yet begun)
    :class:`~repro.sim.manager.WorkflowManager`.  The checkpointer
    subscribes to the manager's event stream (hashing every canonical
    trace line incrementally) and to the engine's post-event hook, where
    it enforces the snapshot policy:

    * ``every_events=N`` — snapshot after every N-th processed engine
      event (deterministic; tests and the bit-identical-resume proofs
      use this);
    * ``every_seconds=S`` — snapshot when S wall-clock seconds have
      passed since the last one (the production knob);
    * ``shutdown`` — a :class:`GracefulShutdown`; when tripped, one
      final snapshot is written and :class:`SimulationInterrupted` is
      raised out of the engine loop.

    :meth:`resume` replays a snapshot against the fresh manager and
    verifies bit-identity (clock, trace digest, allocator digest, RNG
    states) before handing control back.
    """

    def __init__(
        self,
        manager,
        path: str,
        every_events: Optional[int] = None,
        every_seconds: Optional[float] = None,
        shutdown: Optional[GracefulShutdown] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> None:
        if every_events is not None and every_events < 1:
            raise ValueError(f"every_events must be >= 1, got {every_events}")
        if every_seconds is not None and every_seconds <= 0:
            raise ValueError(f"every_seconds must be > 0, got {every_seconds}")
        self._manager = manager
        self._path = path
        self._every_events = every_events
        self._every_seconds = every_seconds
        self._shutdown = shutdown
        self._extra = dict(extra) if extra else {}
        self._hasher = hashlib.sha256()
        self._trace_events = 0
        self._last_wall = _time.monotonic()
        self._replaying = False
        self.snapshots_written = 0
        manager.add_event_listener(self._on_sim_event)
        manager.engine.add_listener(self._after_engine_event)

    @property
    def path(self) -> str:
        return self._path

    @property
    def trace_digest(self) -> str:
        return self._hasher.hexdigest()

    # -- hooks -----------------------------------------------------------------

    def _on_sim_event(self, event) -> None:
        from repro.sim.trace import format_event

        self._hasher.update(format_event(event).encode("utf-8"))
        self._hasher.update(b"\n")
        self._trace_events += 1

    def _after_engine_event(self) -> None:
        if self._replaying:
            return
        if self._shutdown is not None and self._shutdown.triggered:
            self.write()
            raise SimulationInterrupted(self._path, self._shutdown.signum)
        if (
            self._every_events is not None
            and self._manager.engine.events_processed % self._every_events == 0
        ):
            self.write()
        elif self._every_seconds is not None:
            now = _time.monotonic()
            if now - self._last_wall >= self._every_seconds:
                self.write()

    # -- snapshot --------------------------------------------------------------

    def payload(self) -> Dict[str, Any]:
        """The snapshot document for the manager's current state."""
        manager = self._manager
        engine = manager.engine
        doc: Dict[str, Any] = {
            "events": engine.events_processed,
            "now": engine.now,
            "workflow": manager.workflow.name,
            "n_tasks": len(manager.workflow),
            "algorithm": manager.algorithm_label,
            "completed": manager.completed_tasks,
            "trace_events": self._trace_events,
            "trace_digest": self.trace_digest,
            "allocator_digest": state_digest(manager.allocator.state_dict()),
            "pool_rng": manager.pool.rng_state(),
            "fault_rng": (
                manager.faults.rng_state() if manager.faults is not None else None
            ),
            "resilience_digest": (
                state_digest(manager.resilience.state_dict())
                if getattr(manager, "resilience", None) is not None
                else None
            ),
        }
        doc.update(self._extra)
        return doc

    def write(self) -> str:
        """Write one snapshot atomically; returns the path."""
        save_checkpoint(self._path, SIMULATION_KIND, self.payload())
        self.snapshots_written += 1
        self._last_wall = _time.monotonic()
        return self._path

    # -- resume ----------------------------------------------------------------

    def resume(self, payload: Dict[str, Any]) -> bool:
        """Replay ``payload`` against the fresh manager and verify it.

        Returns ``True`` if the replay already completed the workflow
        (the snapshot landed after the last event).  Raises
        :class:`CheckpointError` on any divergence — a refused resume is
        always safer than a silently wrong one.
        """
        manager = self._manager
        if payload.get("workflow") != manager.workflow.name or payload.get(
            "n_tasks"
        ) != len(manager.workflow):
            raise CheckpointError(
                f"snapshot is for workflow {payload.get('workflow')!r} "
                f"({payload.get('n_tasks')} tasks); manager runs "
                f"{manager.workflow.name!r} ({len(manager.workflow)} tasks)"
            )
        if payload.get("algorithm") != manager.algorithm_label:
            raise CheckpointError(
                f"snapshot is for algorithm {payload.get('algorithm')!r}; "
                f"manager runs {manager.algorithm_label!r}"
            )
        target = int(payload["events"])
        self._replaying = True
        try:
            manager.begin()
            done = manager.advance(stop_after_events=target)
        finally:
            self._replaying = False
        self._verify(payload, target)
        return done

    def _verify(self, payload: Dict[str, Any], target: int) -> None:
        manager = self._manager
        engine = manager.engine
        checks = [
            ("events", engine.events_processed, target),
            ("now", repr(engine.now), repr(float(payload["now"]))),
            ("trace_events", self._trace_events, int(payload["trace_events"])),
            ("trace_digest", self.trace_digest, payload["trace_digest"]),
            (
                "allocator_digest",
                state_digest(manager.allocator.state_dict()),
                payload["allocator_digest"],
            ),
            ("pool_rng", manager.pool.rng_state(), payload["pool_rng"]),
            (
                "fault_rng",
                manager.faults.rng_state() if manager.faults is not None else None,
                payload["fault_rng"],
            ),
            # `.get`: snapshots written before the resilience layer
            # existed verify as long as no policy is configured now.
            (
                "resilience_digest",
                (
                    state_digest(manager.resilience.state_dict())
                    if getattr(manager, "resilience", None) is not None
                    else None
                ),
                payload.get("resilience_digest"),
            ),
        ]
        for name, got, expected in checks:
            if got != expected:
                raise CheckpointError(
                    f"resume verification failed on {name}: replay produced "
                    f"{got!r}, snapshot recorded {expected!r} — the run is not "
                    "bit-identical (config or code changed since the snapshot)"
                )


def resume_simulation_checkpoint(
    manager,
    path: str,
    every_events: Optional[int] = None,
    every_seconds: Optional[float] = None,
    shutdown: Optional[GracefulShutdown] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Tuple["SimulationCheckpointer", bool]:
    """Load ``path`` and resume ``manager`` from it.

    Convenience wrapper: builds the checkpointer, loads the snapshot,
    replays, verifies.  Returns ``(checkpointer, workflow_done)``.
    """
    _, payload = load_checkpoint(path, kind=SIMULATION_KIND)
    checkpointer = SimulationCheckpointer(
        manager,
        path,
        every_events=every_events,
        every_seconds=every_seconds,
        shutdown=shutdown,
        extra=extra,
    )
    done = checkpointer.resume(payload)
    return checkpointer, done
