"""Crash-safe checkpointing: atomic writes, versioned snapshots, resume.

Production resource managers treat predictor/scheduler state as durable,
restartable state; this module gives the reproduction the same property
across its three layers:

* **Durable allocator state** — every algorithm and the
  :class:`~repro.core.allocator.TaskOrientedAllocator` expose
  ``state_dict()`` / ``load_state()`` built on the JSON-safe primitives
  here.  Serialization is *bit-exact*: float64 values round-trip through
  JSON's shortest-repr float encoding, prefix-sum buffers are stored
  verbatim (never recomputed, which would change rounding), and RNG
  states are captured via ``Generator.bit_generator.state``.
* **Resumable simulations** — the event queue holds closures and cannot
  be pickled, so a simulation snapshot is *replay-based*: it records how
  many engine events have been processed plus verification digests
  (trace hash, allocator state hash, pool/fault RNG states).  Resuming
  rebuilds the manager from its config, replays exactly that many events
  (the engine is deterministic, so the rebuilt state is bit-identical),
  verifies every digest, and continues.  A mismatch means the config or
  code changed and the checkpoint is refused rather than silently
  diverging.
* **Graceful shutdown** — :class:`GracefulShutdown` converts SIGINT /
  SIGTERM into a flag the :class:`SimulationCheckpointer` observes after
  every event: it writes one final snapshot, flushes atomically, and
  raises :class:`SimulationInterrupted` so the caller can exit cleanly
  with ``128 + signum``.

This module deliberately imports nothing from ``repro`` at module scope
(the core layer imports it), keeping the dependency graph acyclic.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal as _signal
import tempfile
import threading
import time as _time
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "FORMAT_VERSION",
    "FRAME_PREFIX",
    "CheckpointError",
    "JournalCorruptError",
    "JournalRecovery",
    "SimulationInterrupted",
    "GridInterrupted",
    "write_text_atomic",
    "write_json_atomic",
    "append_jsonl",
    "JournalWriter",
    "read_jsonl",
    "recover_jsonl",
    "repair_journal_tail",
    "quarantine_file",
    "encode_frame",
    "decode_frame",
    "set_fs_fault_injector",
    "file_digest",
    "canonical_json",
    "state_digest",
    "generator_state",
    "restore_generator",
    "save_checkpoint",
    "load_checkpoint",
    "GracefulShutdown",
    "SimulationCheckpointer",
]

#: Version of the on-disk checkpoint envelope.  Bumped on any change to
#: the payload schemas; loaders refuse versions they do not understand.
FORMAT_VERSION = 1

#: Magic identifying repro checkpoint files.
MAGIC = "repro-checkpoint"


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, read, or verified."""


class JournalCorruptError(CheckpointError):
    """A journal has a malformed record *before* its final line.

    A torn final line is normal crash debris and is silently dropped; a
    bad line mid-stream means the storage layer lied — bit rot, a short
    write that later got appended over, a truncated copy.  The error
    carries enough context to quarantine and report precisely instead of
    crashing whoever tried to read the journal.

    Attributes
    ----------
    path:
        The journal file.
    line:
        1-based line number of the first corrupt record.
    offset:
        Byte offset of that line's first byte.
    reason:
        What the frame/JSON decoder rejected.
    """

    def __init__(self, path: str, line: int, offset: int, reason: str) -> None:
        super().__init__(
            f"corrupt journal {path!r}: malformed line {line} "
            f"(byte offset {offset}): {reason}"
        )
        self.path = path
        self.line = line
        self.offset = offset
        self.reason = reason


@dataclass(frozen=True)
class JournalRecovery:
    """Report of what :func:`recover_jsonl` did about a corrupt journal."""

    path: str
    line: int
    offset: int
    reason: str
    docs_kept: int
    quarantined_to: Optional[str]


class SimulationInterrupted(RuntimeError):
    """A shutdown signal arrived mid-simulation; a snapshot was written.

    Attributes
    ----------
    path:
        Where the final snapshot landed.
    signum:
        The signal that triggered the shutdown (``None`` for a manual
        trip, e.g. in tests).
    """

    def __init__(self, path: str, signum: Optional[int]) -> None:
        super().__init__(f"simulation interrupted (signal {signum}); snapshot at {path}")
        self.path = path
        self.signum = signum


class GridInterrupted(RuntimeError):
    """A shutdown signal arrived mid-grid; completed cells are journaled.

    Attributes
    ----------
    signum:
        The triggering signal (``None`` for a manual trip).
    completed:
        Number of cells durably journaled before the interrupt.
    """

    def __init__(self, signum: Optional[int], completed: int) -> None:
        super().__init__(
            f"grid interrupted (signal {signum}) after {completed} journaled "
            "cells; relaunch with --resume to continue"
        )
        self.signum = signum
        self.completed = completed


# ---------------------------------------------------------------------------
# Checksummed journal frames
# ---------------------------------------------------------------------------

#: Prefix of version-1 checksummed journal frames.  A frame is one line,
#: ``F1 <payload-bytes> <crc32-hex8> <payload-json>`` — self-describing
#: (the header states the payload's byte length) and checksummed (CRC32
#: over the payload bytes).  The prefix cannot be confused with legacy
#: raw-JSON records (a JSON document never starts with ``F``), so
#: readers accept both formats line by line and old journals stay
#: readable forever.
FRAME_PREFIX = "F1 "

_CRC_HEX_DIGITS = 8


def encode_frame(doc: Any) -> str:
    """Render ``doc`` as one self-describing checksummed journal line."""
    payload = json.dumps(doc, indent=None, separators=(",", ":"))
    if "\n" in payload:  # pragma: no cover - json never emits raw newlines
        raise CheckpointError("journal documents must serialize to one line")
    raw = payload.encode("utf-8")
    return f"{FRAME_PREFIX}{len(raw)} {zlib.crc32(raw):08x} {payload}"


def decode_frame(line: str) -> Any:
    """Decode one frame line; raises :class:`ValueError` on any damage.

    The length check runs before the CRC so a truncated or extended
    payload reports the cheaper, more precise failure; the CRC then
    catches every single-bit flip (and all burst errors up to 32 bits)
    anywhere in the payload.
    """
    parts = line.split(" ", 3)
    if len(parts) != 4 or parts[0] != "F1":
        raise ValueError("truncated frame header")
    length_text, crc_text, payload = parts[1], parts[2], parts[3]
    if not (length_text and length_text.isascii() and length_text.isdigit()):
        raise ValueError(f"bad frame length field {length_text!r}")
    raw = payload.encode("utf-8")
    if len(raw) != int(length_text):
        raise ValueError(
            f"frame length mismatch: header says {length_text} bytes, "
            f"payload is {len(raw)}"
        )
    # Canonical lowercase hex only: int(x, 16) would also accept
    # "DCDD80AB", letting a case-flipping bit error (0x20) slip through.
    if len(crc_text) != _CRC_HEX_DIGITS or any(
        c not in "0123456789abcdef" for c in crc_text
    ):
        raise ValueError(f"bad frame crc field {crc_text!r}")
    expected_crc = int(crc_text, 16)
    actual_crc = zlib.crc32(raw)
    if actual_crc != expected_crc:
        raise ValueError(
            f"frame crc mismatch: header says {crc_text}, "
            f"payload hashes to {actual_crc:08x}"
        )
    try:
        return json.loads(payload)
    except json.JSONDecodeError as exc:  # pragma: no cover - writer bug
        raise ValueError(f"crc-valid frame holds invalid JSON: {exc}") from None


def _decode_journal_line(line: str) -> Any:
    """Decode one journal line, framed or legacy; raises ``ValueError``."""
    if line.startswith(FRAME_PREFIX):
        return decode_frame(line)
    return json.loads(line)


# ---------------------------------------------------------------------------
# Filesystem fault injection hook
# ---------------------------------------------------------------------------

#: The installed filesystem fault injector, or ``None`` — the default,
#: where every journal/snapshot write is plain direct IO.  Installed and
#: removed by :mod:`repro.faultfs` (a leaf module, so the dependency
#: graph stays acyclic); this module only holds the hook and pays a
#: single ``is None`` check on the hot path.
_FS_FAULTS: Optional[Any] = None


def set_fs_fault_injector(injector: Optional[Any]) -> Optional[Any]:
    """Install (``None``: remove) the filesystem fault injector.

    Returns the previously installed injector so tests can restore it.
    The injector must expose ``write(handle, text, path)`` and
    ``fsync(handle, path)``; see :class:`repro.faultfs.FsFaultInjector`.
    """
    global _FS_FAULTS
    previous = _FS_FAULTS
    _FS_FAULTS = injector
    return previous


def _fault_write(handle: Any, text: str, path: str) -> None:
    if _FS_FAULTS is None:
        handle.write(text)
    else:
        _FS_FAULTS.write(handle, text, path)


def _fault_fsync(handle: Any, path: str) -> None:
    if _FS_FAULTS is None:
        os.fsync(handle.fileno())
    else:
        _FS_FAULTS.fsync(handle, path)


# ---------------------------------------------------------------------------
# Atomic IO
# ---------------------------------------------------------------------------


def write_text_atomic(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp + fsync + os.replace).

    A crash at any point leaves either the old file or the new one —
    never a torn mix.  The temp file lives in the target's directory so
    the final ``os.replace`` stays on one filesystem.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            _fault_write(handle, text, path)
            handle.flush()
            _fault_fsync(handle, path)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def write_json_atomic(path: str, doc: Any) -> None:
    """Atomically write ``doc`` as JSON (exact float round-trip)."""
    write_text_atomic(path, json.dumps(doc, indent=None, separators=(",", ":")))


def append_jsonl(path: str, doc: Any) -> None:
    """Append one checksummed journal line durably (write + flush + fsync).

    The classic write-ahead-log append: a crash can tear at most the
    *final* line, which :func:`read_jsonl` tolerates and drops.  Records
    are written as checksummed frames (:func:`encode_frame`) so later
    bit rot is detected rather than silently decoded.
    """
    line = encode_frame(doc)
    with open(path, "a", encoding="utf-8") as handle:
        _fault_write(handle, line + "\n", path)
        handle.flush()
        _fault_fsync(handle, path)


class JournalWriter:
    """A held-open JSONL write-ahead log with group commit.

    :func:`append_jsonl` reopens the file and fsyncs per document —
    correct, but a per-operation fsync caps a high-rate writer at the
    disk's flush latency.  The allocation service instead drains its
    queue into batches and commits each batch with **one**
    flush + fsync (``sync="batch"``); a crash can then lose at most the
    *tail* of the final batch, which :func:`read_jsonl`'s torn-line
    tolerance plus the reader's sequence-number filter already handle.
    ``sync="op"`` restores the per-document fsync, ``sync="none"``
    leaves flushing to the OS (benchmarks and tests only).

    Records are written as checksummed frames (:func:`encode_frame`);
    all IO goes through the filesystem fault hook, so a seeded
    :class:`repro.faultfs.FsFaultInjector` can drive ENOSPC/EIO/short
    writes/failed fsyncs through this exact code path.  After a write or
    fsync failure the writer must be discarded and the file reopened —
    fsyncgate semantics: a failed fsync may have dropped the dirty pages,
    so retrying on the same handle would falsely report durability.
    """

    SYNC_MODES = ("batch", "op", "none")

    # reproflow: sync-boundary -- WAL open happens once per shard at startup/rotation, before traffic
    def __init__(self, path: str, sync: str = "batch") -> None:
        if sync not in self.SYNC_MODES:
            raise ValueError(f"sync must be one of {self.SYNC_MODES}, got {sync!r}")
        directory = os.path.dirname(os.path.abspath(path)) or "."
        os.makedirs(directory, exist_ok=True)
        self._path = path
        self._sync = sync
        self._handle = open(path, "a", encoding="utf-8")

    @property
    def path(self) -> str:
        return self._path

    # reproflow: sync-boundary -- the group commit is the service's deliberate durability stall (SERVICE.md "Durability")
    def append_many(self, docs: List[Any]) -> None:
        """Durably append ``docs`` in order with one group commit."""
        if not docs:
            return
        lines = [encode_frame(doc) for doc in docs]
        if self._sync == "op":
            for line in lines:
                _fault_write(self._handle, line + "\n", self._path)
                self._handle.flush()
                _fault_fsync(self._handle, self._path)
        else:
            _fault_write(self._handle, "\n".join(lines) + "\n", self._path)
            self._handle.flush()
            if self._sync == "batch":
                _fault_fsync(self._handle, self._path)

    def append(self, doc: Any) -> None:
        self.append_many([doc])

    def truncate(self) -> None:
        """Drop every journaled document (after a covering snapshot)."""
        self._handle.close()
        self._handle = open(self._path, "w", encoding="utf-8")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    # reproflow: sync-boundary -- final flush+fsync runs during shutdown/rotation, after the drain
    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            if self._sync != "none":
                _fault_fsync(self._handle, self._path)
            self._handle.close()

    def abandon(self) -> None:
        """Drop the handle without the final fsync (crash simulation).

        Everything already committed by ``append_many`` survives, but
        nothing is force-flushed to stable storage on the way out — the
        chaos crash points use this so a simulated death matches what a
        real ``kill -9`` leaves behind.  Also the exit path after a
        storage fault: a handle whose write or fsync failed must never
        be fsynced again, only dropped.
        """
        if not self._handle.closed:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover - a dying handle may complain
                pass

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_jsonl(path: str) -> List[Any]:
    """Read a JSONL journal, dropping a torn (crash-truncated) last line.

    Checksummed frames (:func:`encode_frame`) and legacy raw-JSON lines
    are both accepted, per line.  A malformed line anywhere *but* the
    end means real corruption and raises :class:`JournalCorruptError`
    carrying the path, line number, and byte offset; callers that can
    degrade (the allocation service, the grid runner) catch it and
    quarantine via :func:`recover_jsonl` instead of crashing at startup.
    """
    docs, corrupt = _scan_jsonl(path)
    if corrupt is not None:
        raise corrupt
    return docs


def _scan_jsonl(path: str) -> Tuple[List[Any], Optional[JournalCorruptError]]:
    """Decode the longest valid prefix; returns ``(docs, error-or-None)``."""
    docs: List[Any] = []
    # Binary read: bit rot can produce bytes that are not valid UTF-8,
    # which must surface as typed corruption, never UnicodeDecodeError.
    with open(path, "rb") as handle:
        blob = handle.read()
    lines = blob.split(b"\n")
    # A well-formed file ends with "\n", so the final split element is "".
    while lines and lines[-1] == b"":
        lines.pop()
    offset = 0
    for i, raw in enumerate(lines):
        try:
            docs.append(_decode_journal_line(raw.decode("utf-8")))
        except (ValueError, UnicodeDecodeError) as exc:
            # A torn write can never complete its trailing newline, so
            # an invalid final line is forgiven as crash debris ONLY
            # when the file does not end with "\n".  A newline-
            # terminated line was fully written once — if it no longer
            # decodes, the storage layer changed it afterwards.
            if i == len(lines) - 1 and not blob.endswith(b"\n"):
                break  # torn tail from a crash mid-append; WAL semantics
            return docs, JournalCorruptError(
                path, i + 1, offset, f"{exc} ({len(lines)} lines total)"
            )
        offset += len(raw) + 1
    return docs, None


def recover_jsonl(
    path: str, quarantine: bool = True
) -> Tuple[List[Any], Optional[JournalRecovery]]:
    """Best-effort journal read: longest valid prefix + recovery report.

    A healthy journal (including one with only a torn tail) returns
    ``(docs, None)`` and is left untouched.  For mid-stream corruption,
    the decoded prefix is returned and — with ``quarantine=True``, the
    default — the damaged file is moved into ``<path>.corrupt/`` so the
    next writer starts clean and the evidence survives for post-mortem
    (``repro-experiments fsck`` lists quarantine directories).
    """
    docs, corrupt = _scan_jsonl(path)
    if corrupt is None:
        return docs, None
    quarantined_to = quarantine_file(path) if quarantine else None
    return docs, JournalRecovery(
        path=path,
        line=corrupt.line,
        offset=corrupt.offset,
        reason=corrupt.reason,
        docs_kept=len(docs),
        quarantined_to=quarantined_to,
    )


def quarantine_file(path: str) -> str:
    """Move ``path`` into a sibling ``<path>.corrupt/`` directory.

    The original name is freed so a writer can start a clean file; the
    damaged bytes are preserved under a serial number for post-mortem.
    Returns the quarantine destination.
    """
    directory = path + ".corrupt"
    os.makedirs(directory, exist_ok=True)
    serial = len(os.listdir(directory)) + 1
    dest = os.path.join(directory, f"{serial:04d}-{os.path.basename(path)}")
    os.replace(path, dest)
    return dest


def repair_journal_tail(path: str) -> int:
    """Truncate torn trailing debris in place; returns bytes dropped.

    Reopening a journal for appends after a short or failed write must
    not leave a half-record mid-file: the next append would weld new
    frames onto the debris and turn harmless crash residue into
    mid-stream corruption.  Only *trailing* invalid data is dropped;
    invalid data followed by valid records is real corruption and
    raises :class:`JournalCorruptError` (use :func:`recover_jsonl`).
    """
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except FileNotFoundError:
        return 0
    lines = blob.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    keep = 0
    bad: Optional[Tuple[int, int, str]] = None  # (line, offset, reason)
    offset = 0
    for i, raw in enumerate(lines):
        try:
            _decode_journal_line(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            if bad is None:
                bad = (i + 1, offset, str(exc))
        else:
            if bad is not None:
                raise JournalCorruptError(path, bad[0], bad[1], bad[2])
            keep = offset + len(raw) + 1
        offset += len(raw) + 1
    if bad is not None and (bad[0] < len(lines) or blob.endswith(b"\n")):
        # Torn debris is at most ONE final line with no trailing
        # newline; anything else that fails to decode was fully
        # written once and later changed — corruption, not debris.
        raise JournalCorruptError(path, bad[0], bad[1], bad[2])
    keep = min(keep, len(blob))
    dropped = len(blob) - keep
    if dropped:
        with open(path, "rb+") as handle:
            handle.truncate(keep)
            handle.flush()
            os.fsync(handle.fileno())
    return dropped


# ---------------------------------------------------------------------------
# Canonical hashing & RNG state
# ---------------------------------------------------------------------------


def canonical_json(obj: Any) -> str:
    """Deterministic JSON rendering (sorted keys, tight separators)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def state_digest(obj: Any) -> str:
    """sha256 hex digest of an object's canonical JSON form."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def generator_state(gen) -> Dict[str, Any]:
    """JSON-safe snapshot of a ``numpy.random.Generator``'s state."""
    return _jsonify(gen.bit_generator.state)


def restore_generator(gen, state: Dict[str, Any]) -> None:
    """Restore a generator captured by :func:`generator_state` in place."""
    current = gen.bit_generator.state
    if state.get("bit_generator") != current.get("bit_generator"):
        raise CheckpointError(
            f"RNG kind mismatch: checkpoint has {state.get('bit_generator')!r}, "
            f"generator is {current.get('bit_generator')!r}"
        )
    gen.bit_generator.state = state


def _jsonify(obj: Any) -> Any:
    """Recursively convert numpy scalars/arrays to plain JSON types."""
    if isinstance(obj, dict):
        return {str(k): _jsonify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonify(v) for v in obj]
    if hasattr(obj, "item") and not isinstance(obj, (str, bytes)):
        try:
            return _jsonify(obj.tolist())
        except AttributeError:  # pragma: no cover - numpy scalars have tolist
            return obj.item()
    return obj


# ---------------------------------------------------------------------------
# Versioned checkpoint envelope
# ---------------------------------------------------------------------------


def save_checkpoint(path: str, kind: str, payload: Dict[str, Any]) -> str:
    """Atomically write one versioned checkpoint document.

    Returns the sha256 hex digest of the exact bytes written; the
    generational snapshot chain records it in its CURRENT pointer so a
    later reader can prove a snapshot file is byte-identical to what the
    writer produced (see :func:`file_digest`).
    """
    text = json.dumps(
        {
            "magic": MAGIC,
            "version": FORMAT_VERSION,
            "kind": kind,
            "payload": payload,
        },
        indent=None,
        separators=(",", ":"),
    )
    write_text_atomic(path, text)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def file_digest(path: str) -> str:
    """sha256 hex digest of a file's bytes (snapshot-chain verification)."""
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            hasher.update(chunk)
    return hasher.hexdigest()


def load_checkpoint(path: str, kind: Optional[str] = None) -> Tuple[str, Dict[str, Any]]:
    """Read and validate a checkpoint envelope; returns (kind, payload)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("magic") != MAGIC:
        raise CheckpointError(f"{path!r} is not a repro checkpoint")
    version = doc.get("version")
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has format version {version!r}; "
            f"this build reads version {FORMAT_VERSION}"
        )
    if kind is not None and doc.get("kind") != kind:
        raise CheckpointError(
            f"checkpoint {path!r} holds a {doc.get('kind')!r} snapshot, "
            f"expected {kind!r}"
        )
    payload = doc.get("payload")
    if not isinstance(payload, dict):
        raise CheckpointError(f"checkpoint {path!r} has no payload")
    return str(doc.get("kind")), payload


# ---------------------------------------------------------------------------
# Graceful shutdown
# ---------------------------------------------------------------------------


class GracefulShutdown:
    """Context manager turning SIGINT/SIGTERM into a cooperative flag.

    The first signal sets :attr:`triggered`; checkpoint-aware loops poll
    it at safe points, write their snapshot, and unwind.  The previous
    handlers are restored on the *first* signal, so a second Ctrl-C
    terminates immediately (the operator's escape hatch), and again on
    context exit.  Handler installation is skipped off the main thread
    (Python forbids it) and with ``install=False`` (tests drive
    :meth:`trip` directly).
    """

    SIGNALS = (_signal.SIGINT, _signal.SIGTERM)

    def __init__(self, install: bool = True) -> None:
        self._install = install
        self._previous: Dict[int, Any] = {}
        self.triggered = False
        self.signum: Optional[int] = None

    def __enter__(self) -> "GracefulShutdown":
        if self._install and threading.current_thread() is threading.main_thread():
            for signum in self.SIGNALS:
                self._previous[signum] = _signal.signal(signum, self._handle)
        return self

    def __exit__(self, *exc_info) -> None:
        self._restore()

    def _handle(self, signum, frame) -> None:
        self.trip(signum)

    def trip(self, signum: Optional[int] = None) -> None:
        """Mark shutdown requested (signal handler and test hook)."""
        self.triggered = True
        self.signum = signum
        self._restore()

    def _restore(self) -> None:
        for signum, previous in self._previous.items():
            _signal.signal(signum, previous)
        self._previous.clear()


# ---------------------------------------------------------------------------
# Simulation checkpointer
# ---------------------------------------------------------------------------

#: Payload kind of simulation snapshots.
SIMULATION_KIND = "simulation"

#: Payload kind of allocation-service snapshots: one envelope holding a
#: consistent cut of *every* shard (allocator state, applied-op sequence
#: number, backpressure breaker) taken under a full quiesce barrier, so
#: no operation is ever split across the cut.  Written by
#: :meth:`repro.service.AllocationService.snapshot`.
SERVICE_KIND = "service"


class SimulationCheckpointer:
    """Periodic + on-signal snapshots of one running simulation.

    Attach to a **freshly constructed** (not yet begun)
    :class:`~repro.sim.manager.WorkflowManager`.  The checkpointer
    subscribes to the manager's event stream (hashing every canonical
    trace line incrementally) and to the engine's post-event hook, where
    it enforces the snapshot policy:

    * ``every_events=N`` — snapshot after every N-th processed engine
      event (deterministic; tests and the bit-identical-resume proofs
      use this);
    * ``every_seconds=S`` — snapshot when S wall-clock seconds have
      passed since the last one (the production knob);
    * ``shutdown`` — a :class:`GracefulShutdown`; when tripped, one
      final snapshot is written and :class:`SimulationInterrupted` is
      raised out of the engine loop.

    :meth:`resume` replays a snapshot against the fresh manager and
    verifies bit-identity (clock, trace digest, allocator digest, RNG
    states) before handing control back.
    """

    def __init__(
        self,
        manager: Any,
        path: str,
        every_events: Optional[int] = None,
        every_seconds: Optional[float] = None,
        shutdown: Optional[GracefulShutdown] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> None:
        if every_events is not None and every_events < 1:
            raise ValueError(f"every_events must be >= 1, got {every_events}")
        if every_seconds is not None and every_seconds <= 0:
            raise ValueError(f"every_seconds must be > 0, got {every_seconds}")
        self._manager = manager
        self._path = path
        self._every_events = every_events
        self._every_seconds = every_seconds
        self._shutdown = shutdown
        self._extra = dict(extra) if extra else {}
        self._hasher = hashlib.sha256()
        self._trace_events = 0
        self._last_wall = _time.monotonic()
        self._replaying = False
        self.snapshots_written = 0
        manager.add_event_listener(self._on_sim_event)
        manager.engine.add_listener(self._after_engine_event)

    @property
    def path(self) -> str:
        return self._path

    @property
    def trace_digest(self) -> str:
        return self._hasher.hexdigest()

    # -- hooks -----------------------------------------------------------------

    def _on_sim_event(self, event) -> None:
        from repro.sim.trace import format_event

        self._hasher.update(format_event(event).encode("utf-8"))
        self._hasher.update(b"\n")
        self._trace_events += 1

    def _after_engine_event(self) -> None:
        if self._replaying:
            return
        if self._shutdown is not None and self._shutdown.triggered:
            self.write()
            raise SimulationInterrupted(self._path, self._shutdown.signum)
        if (
            self._every_events is not None
            and self._manager.engine.events_processed % self._every_events == 0
        ):
            self.write()
        elif self._every_seconds is not None:
            now = _time.monotonic()
            if now - self._last_wall >= self._every_seconds:
                self.write()

    # -- snapshot --------------------------------------------------------------

    def payload(self) -> Dict[str, Any]:
        """The snapshot document for the manager's current state."""
        manager = self._manager
        engine = manager.engine
        doc: Dict[str, Any] = {
            "events": engine.events_processed,
            "now": engine.now,
            "workflow": manager.workflow.name,
            "n_tasks": len(manager.workflow),
            "algorithm": manager.algorithm_label,
            "completed": manager.completed_tasks,
            "trace_events": self._trace_events,
            "trace_digest": self.trace_digest,
            "allocator_digest": state_digest(manager.allocator.state_dict()),
            "pool_rng": manager.pool.rng_state(),
            "fault_rng": (
                manager.faults.rng_state() if manager.faults is not None else None
            ),
            "resilience_digest": (
                state_digest(manager.resilience.state_dict())
                if getattr(manager, "resilience", None) is not None
                else None
            ),
        }
        doc.update(self._extra)
        return doc

    def write(self) -> str:
        """Write one snapshot atomically; returns the path."""
        save_checkpoint(self._path, SIMULATION_KIND, self.payload())
        self.snapshots_written += 1
        self._last_wall = _time.monotonic()
        return self._path

    # -- resume ----------------------------------------------------------------

    def resume(self, payload: Dict[str, Any]) -> bool:
        """Replay ``payload`` against the fresh manager and verify it.

        Returns ``True`` if the replay already completed the workflow
        (the snapshot landed after the last event).  Raises
        :class:`CheckpointError` on any divergence — a refused resume is
        always safer than a silently wrong one.
        """
        manager = self._manager
        if payload.get("workflow") != manager.workflow.name or payload.get(
            "n_tasks"
        ) != len(manager.workflow):
            raise CheckpointError(
                f"snapshot is for workflow {payload.get('workflow')!r} "
                f"({payload.get('n_tasks')} tasks); manager runs "
                f"{manager.workflow.name!r} ({len(manager.workflow)} tasks)"
            )
        if payload.get("algorithm") != manager.algorithm_label:
            raise CheckpointError(
                f"snapshot is for algorithm {payload.get('algorithm')!r}; "
                f"manager runs {manager.algorithm_label!r}"
            )
        target = int(payload["events"])
        self._replaying = True
        try:
            manager.begin()
            done = manager.advance(stop_after_events=target)
        finally:
            self._replaying = False
        self._verify(payload, target)
        return done

    def _verify(self, payload: Dict[str, Any], target: int) -> None:
        manager = self._manager
        engine = manager.engine
        checks = [
            ("events", engine.events_processed, target),
            ("now", repr(engine.now), repr(float(payload["now"]))),
            ("trace_events", self._trace_events, int(payload["trace_events"])),
            ("trace_digest", self.trace_digest, payload["trace_digest"]),
            (
                "allocator_digest",
                state_digest(manager.allocator.state_dict()),
                payload["allocator_digest"],
            ),
            ("pool_rng", manager.pool.rng_state(), payload["pool_rng"]),
            (
                "fault_rng",
                manager.faults.rng_state() if manager.faults is not None else None,
                payload["fault_rng"],
            ),
            # `.get`: snapshots written before the resilience layer
            # existed verify as long as no policy is configured now.
            (
                "resilience_digest",
                (
                    state_digest(manager.resilience.state_dict())
                    if getattr(manager, "resilience", None) is not None
                    else None
                ),
                payload.get("resilience_digest"),
            ),
        ]
        for name, got, expected in checks:
            if got != expected:
                raise CheckpointError(
                    f"resume verification failed on {name}: replay produced "
                    f"{got!r}, snapshot recorded {expected!r} — the run is not "
                    "bit-identical (config or code changed since the snapshot)"
                )


def resume_simulation_checkpoint(
    manager: Any,
    path: str,
    every_events: Optional[int] = None,
    every_seconds: Optional[float] = None,
    shutdown: Optional[GracefulShutdown] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Tuple["SimulationCheckpointer", bool]:
    """Load ``path`` and resume ``manager`` from it.

    Convenience wrapper: builds the checkpointer, loads the snapshot,
    replays, verifies.  Returns ``(checkpointer, workflow_done)``.
    """
    _, payload = load_checkpoint(path, kind=SIMULATION_KIND)
    checkpointer = SimulationCheckpointer(
        manager,
        path,
        every_events=every_events,
        every_seconds=every_seconds,
        shutdown=shutdown,
        extra=extra,
    )
    done = checkpointer.resume(payload)
    return checkpointer, done
