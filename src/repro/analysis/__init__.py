"""``reprolint`` — AST-based determinism & crash-safety analysis.

The repo's reproducibility guarantees (bit-identical parallel grids,
digest-verified resume, golden traces, seeded fault injection) depend
on coding invariants that runtime tests only catch when a test happens
to exercise the offending path.  This package enforces them statically:

* ``python -m repro.analysis src`` — CLI with text/JSON output, inline
  ``# reprolint: disable=RULE`` pragmas, and a committed baseline;
* ``tests/analysis/test_reprolint_repo.py`` — the same sweep as part of
  the tier-1 pytest run;
* the CI ``lint`` lane — reprolint next to ruff and mypy.

Rule catalog and extension guide: ``docs/ANALYSIS.md``.  The package is
deliberately stdlib-only.
"""

from __future__ import annotations

from repro.analysis.baseline import (
    Baseline,
    BaselineDiff,
    diff_against_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.core import (
    Finding,
    ModuleSource,
    Project,
    Rule,
    Severity,
    all_rules,
    format_pragma,
    get_rule,
    parse_pragma,
    register_rule,
)
from repro.analysis.runner import (
    analyze_paths,
    analyze_project,
    analyze_sources,
    collect_modules,
    main,
)

__all__ = [
    "Baseline",
    "BaselineDiff",
    "Finding",
    "ModuleSource",
    "Project",
    "Rule",
    "Severity",
    "all_rules",
    "analyze_paths",
    "analyze_project",
    "analyze_sources",
    "collect_modules",
    "diff_against_baseline",
    "format_pragma",
    "get_rule",
    "load_baseline",
    "main",
    "parse_pragma",
    "register_rule",
    "write_baseline",
]
