"""Shared AST helpers for reprolint rules.

The rules need to answer "what does this call actually invoke?" in the
presence of aliased imports (``import time as _time``, ``import numpy
as np``, ``from random import randint as ri``).  :class:`ImportMap`
records the module/member bindings of a file and
:func:`resolve_call_target` flattens a call's function expression to a
fully qualified dotted origin (``numpy.random.seed``,
``time.monotonic``, ``datetime.datetime.now``) when it can.

Resolution is intentionally best-effort: it only follows top-level
names bound by import statements, never dataflow.  That keeps rules
fast and predictable — anything the resolver cannot see simply does
not fire, and the runtime test layers remain the backstop.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "ImportMap",
    "dotted_name",
    "function_defs",
    "resolve_call_target",
    "self_attribute_fields",
]


class ImportMap:
    """Local name -> imported origin bindings for one module."""

    def __init__(self) -> None:
        #: local alias -> dotted module name, e.g. ``{"np": "numpy"}``.
        self.modules: Dict[str, str] = {}
        #: local alias -> (module, member), e.g. ``{"ri": ("random", "randint")}``.
        self.members: Dict[str, Tuple[str, str]] = {}

    @classmethod
    def from_tree(cls, tree: ast.AST) -> "ImportMap":
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # ``import a.b`` binds ``a`` to package ``a``;
                    # ``import a.b as c`` binds ``c`` to module ``a.b``.
                    imports.modules[local] = alias.name if alias.asname else local
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports: out of resolver scope
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    imports.members[alias.asname or alias.name] = (node.module, alias.name)
        return imports

    def resolve_name(self, name: str) -> Optional[str]:
        """Dotted origin of a bare name, if bound by an import."""
        if name in self.members:
            module, member = self.members[name]
            return f"{module}.{member}"
        if name in self.modules:
            return self.modules[name]
        return None


def dotted_name(node: ast.AST) -> Optional[List[str]]:
    """Flatten ``a.b.c`` into ``["a", "b", "c"]`` (None for non-chains)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def resolve_call_target(imports: ImportMap, func: ast.AST) -> Optional[str]:
    """Fully qualified dotted origin of a call's function expression.

    ``np.random.seed`` (with ``import numpy as np``) resolves to
    ``numpy.random.seed``; ``monotonic`` (with ``from time import
    monotonic``) resolves to ``time.monotonic``; ``datetime.now`` (with
    ``from datetime import datetime``) resolves to
    ``datetime.datetime.now``.  Returns ``None`` when the base name is
    not import-bound.
    """
    if isinstance(func, ast.Name):
        return imports.resolve_name(func.id)
    parts = dotted_name(func)
    if not parts:
        return None
    origin = imports.resolve_name(parts[0])
    if origin is None:
        return None
    return ".".join([origin, *parts[1:]])


def function_defs(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    """Every (sync) function definition in the tree, including methods."""
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            yield node


def self_attribute_fields(fn: ast.FunctionDef) -> frozenset:
    """Instance fields a method touches: ``self.X`` mentions, minus calls.

    Attributes used purely as bound-method call targets
    (``self._rebuild()``) are excluded — they are behaviour, not
    serialized state — while reads, writes, and mutations
    (``self._rng``, ``self._cache.clear`` receivers, subscripts) count.
    Used by the ``state_dict``/``load_state`` field-set diff.
    """
    args = fn.args.posonlyargs + fn.args.args
    if not args:
        return frozenset()
    self_name = args[0].arg
    call_funcs = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            call_funcs.add(id(node.func))
    fields = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == self_name
            and id(node) not in call_funcs
        ):
            fields.add(node.attr)
    return frozenset(fields)
