"""SARIF 2.1.0 export for reprolint/reproflow findings.

CI uploads the lint lane's results as a SARIF artifact so code-scanning
UIs can render them.  The emitter produces a minimal-but-valid document
(single run, one ``reportingDescriptor`` per rule that actually fired,
one ``result`` per finding).  Because the container has no jsonschema
package, :func:`validate_sarif` is a hand-written structural check of
the subset of the 2.1.0 schema we emit — the tests run every produced
document through it, and CI fails the lane if validation reports
problems.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.core import Finding, Severity

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "to_sarif", "validate_sarif", "write_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def to_sarif(
    findings: Sequence[Finding],
    *,
    tool_name: str = "reprolint",
    tool_version: Optional[str] = None,
    rule_descriptions: Optional[Mapping[str, str]] = None,
) -> Dict[str, object]:
    """Render findings as a SARIF 2.1.0 document (a JSON-ready dict)."""
    descriptions = dict(rule_descriptions or {})
    rules: Dict[str, Dict[str, object]] = {}
    results: List[Dict[str, object]] = []
    for finding in findings:
        if finding.rule not in rules:
            descriptor: Dict[str, object] = {
                "id": finding.rule,
                "name": finding.name,
                "defaultConfiguration": {"level": _LEVELS[finding.severity]},
            }
            description = descriptions.get(finding.rule)
            if description:
                descriptor["shortDescription"] = {"text": description}
            rules[finding.rule] = descriptor
        results.append(
            {
                "ruleId": finding.rule,
                "level": _LEVELS[finding.severity],
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": finding.path},
                            "region": {
                                "startLine": max(1, finding.line),
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
                "fingerprints": {"reprolint/v1": finding.fingerprint},
            }
        )
    driver: Dict[str, object] = {
        "name": tool_name,
        "rules": [rules[rule_id] for rule_id in sorted(rules, key=lambda r: (len(r), r))],
    }
    if tool_version is not None:
        driver["version"] = tool_version
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def write_sarif(
    path: str,
    findings: Sequence[Finding],
    *,
    tool_name: str = "reprolint",
    rule_descriptions: Optional[Mapping[str, str]] = None,
) -> None:
    """Serialize findings to ``path``, validating the document first."""
    document = to_sarif(
        findings, tool_name=tool_name, rule_descriptions=rule_descriptions
    )
    problems = validate_sarif(document)
    if problems:  # pragma: no cover - emitter and validator move together
        raise ValueError("invalid SARIF produced: " + "; ".join(problems))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def validate_sarif(document: object) -> List[str]:
    """Structurally validate the SARIF subset this module emits.

    Returns a list of problem strings (empty when the document is
    valid).  Covers the required properties and types of the SARIF
    2.1.0 schema for ``sarifLog``, ``run``, ``tool``,
    ``reportingDescriptor``, ``result``, and ``physicalLocation``.
    """
    problems: List[str] = []

    def check(condition: bool, message: str) -> bool:
        if not condition:
            problems.append(message)
        return condition

    if not check(isinstance(document, dict), "document is not an object"):
        return problems
    assert isinstance(document, dict)
    check(document.get("version") == SARIF_VERSION, "version must be '2.1.0'")
    runs = document.get("runs")
    if not check(isinstance(runs, list) and len(runs) > 0, "runs must be a non-empty array"):
        return problems
    assert isinstance(runs, list)
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        if not check(isinstance(run, dict), f"{where} is not an object"):
            continue
        tool = run.get("tool")
        if check(isinstance(tool, dict), f"{where}.tool missing or not an object"):
            assert isinstance(tool, dict)
            driver = tool.get("driver")
            if check(
                isinstance(driver, dict), f"{where}.tool.driver missing or not an object"
            ):
                assert isinstance(driver, dict)
                check(
                    isinstance(driver.get("name"), str) and bool(driver.get("name")),
                    f"{where}.tool.driver.name must be a non-empty string",
                )
                rules = driver.get("rules", [])
                if check(isinstance(rules, list), f"{where}.tool.driver.rules not an array"):
                    assert isinstance(rules, list)
                    for j, rule in enumerate(rules):
                        rwhere = f"{where}.tool.driver.rules[{j}]"
                        if check(isinstance(rule, dict), f"{rwhere} is not an object"):
                            assert isinstance(rule, dict)
                            check(
                                isinstance(rule.get("id"), str) and bool(rule.get("id")),
                                f"{rwhere}.id must be a non-empty string",
                            )
        results = run.get("results", [])
        if not check(isinstance(results, list), f"{where}.results is not an array"):
            continue
        assert isinstance(results, list)
        for j, result in enumerate(results):
            problems.extend(_validate_result(result, f"{where}.results[{j}]"))
    return problems


def _validate_result(result: object, where: str) -> List[str]:
    problems: List[str] = []
    if not isinstance(result, dict):
        return [f"{where} is not an object"]
    message = result.get("message")
    if not (isinstance(message, dict) and isinstance(message.get("text"), str)):
        problems.append(f"{where}.message.text must be a string")
    level = result.get("level")
    if level is not None and level not in ("none", "note", "warning", "error"):
        problems.append(f"{where}.level must be one of none/note/warning/error")
    rule_id = result.get("ruleId")
    if rule_id is not None and not isinstance(rule_id, str):
        problems.append(f"{where}.ruleId must be a string")
    locations = result.get("locations", [])
    if not isinstance(locations, list):
        return problems + [f"{where}.locations is not an array"]
    for k, location in enumerate(locations):
        lwhere = f"{where}.locations[{k}]"
        if not isinstance(location, dict):
            problems.append(f"{lwhere} is not an object")
            continue
        physical = location.get("physicalLocation")
        if physical is None:
            continue
        if not isinstance(physical, dict):
            problems.append(f"{lwhere}.physicalLocation is not an object")
            continue
        artifact = physical.get("artifactLocation")
        if isinstance(artifact, dict):
            uri = artifact.get("uri")
            if uri is not None and not isinstance(uri, str):
                problems.append(f"{lwhere}...artifactLocation.uri must be a string")
        elif artifact is not None:
            problems.append(f"{lwhere}.physicalLocation.artifactLocation is not an object")
        region = physical.get("region")
        if isinstance(region, dict):
            for field in ("startLine", "startColumn", "endLine", "endColumn"):
                value = region.get(field)
                if value is not None and not (isinstance(value, int) and value >= 1):
                    problems.append(f"{lwhere}...region.{field} must be an integer >= 1")
        elif region is not None:
            problems.append(f"{lwhere}.physicalLocation.region is not an object")
    return problems
