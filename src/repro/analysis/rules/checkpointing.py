"""Crash-safety rules: snapshot symmetry and atomic artifact writes.

R3 ``state-symmetry``
    A class that can serialize itself (``state_dict``) must also be
    able to restore (``load_state`` method or ``from_state``
    classmethod), and vice versa.  When both ``state_dict`` and
    ``load_state`` exist, the sets of ``self.<field>`` instance
    attributes they touch must match — a field serialized but never
    restored (or restored but never saved) is exactly the bug that
    makes a resumed run diverge from an uninterrupted one.
R4 ``raw-artifact-write``
    File writes outside :mod:`repro.checkpoint` must go through its
    atomic helpers (``write_text_atomic`` / ``write_json_atomic`` /
    ``append_jsonl``).  A bare ``open(path, "w")``, ``json.dump`` or
    ``Path.write_text`` can leave a torn half-file behind a crash,
    which the resume machinery would then trust.
R9 ``raw-durable-write``
    Stricter than R4 for the service's durable storage: any builtin
    ``open()`` in write mode whose path expression mentions a
    ``*.wal`` or ``*.snapshot*`` file must live in
    :mod:`repro.checkpoint`.  WAL and snapshot files carry CRC32
    frames, digests, and fsyncgate handle discipline — a raw write
    from anywhere else bypasses all three and plants corruption the
    recovery path will later quarantine.  Unlike R4 this rule has no
    package-level exemptions beyond ``repro/checkpoint.py`` itself.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Optional

from repro.analysis._ast_utils import ImportMap, resolve_call_target, self_attribute_fields
from repro.analysis.core import Finding, ModuleSource, Project, Rule, register_rule

__all__ = ["RawArtifactWriteRule", "RawDurableWriteRule", "StateSymmetryRule"]

#: Modules allowed to perform raw writes: the atomic-write helpers
#: themselves, and the analysis package (stdlib-only by design, with
#: its own minimal atomic writer for baselines).
WRITE_EXEMPT_PREFIXES = ("repro/checkpoint.py", "repro/analysis")

#: ``open()`` mode characters that make a call a write.
_WRITE_MODE_CHARS = frozenset("wax+")


def _restore_methods(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    methods: Dict[str, ast.FunctionDef] = {}
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name in (
            "state_dict",
            "load_state",
            "from_state",
        ):
            methods[stmt.name] = stmt
    return methods


@register_rule
class StateSymmetryRule(Rule):
    id = "R3"
    name = "state-symmetry"
    description = (
        "classes defining state_dict must define load_state/from_state (and vice "
        "versa), with matching serialized/restored field sets"
    )

    def check(self, module: ModuleSource, project: Project) -> Iterable[Finding]:
        if module.tree is None or not module.in_package("repro"):
            return
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            methods = _restore_methods(cls)
            save = methods.get("state_dict")
            load = methods.get("load_state")
            build = methods.get("from_state")
            if save is not None and load is None and build is None:
                yield self.finding(
                    module,
                    save,
                    f"{cls.name}.state_dict has no restore counterpart; define "
                    "load_state (in place) or a from_state classmethod so "
                    "checkpoints of this class can be resumed",
                )
            if save is None and (load is not None or build is not None):
                other = load if load is not None else build
                assert other is not None
                yield self.finding(
                    module,
                    other,
                    f"{cls.name}.{other.name} restores state that nothing "
                    "serializes; define the matching state_dict",
                )
            if save is not None and load is not None:
                saved = self_attribute_fields(save)
                restored = self_attribute_fields(load)
                missing = sorted(saved - restored)
                extra = sorted(restored - saved)
                if missing or extra:
                    details = []
                    if missing:
                        details.append(
                            "serialized but never restored: " + ", ".join(missing)
                        )
                    if extra:
                        details.append(
                            "restored but never serialized: " + ", ".join(extra)
                        )
                    yield self.finding(
                        module,
                        load,
                        f"{cls.name}.state_dict/load_state touch different field "
                        f"sets ({'; '.join(details)}); a resumed instance would "
                        "diverge from the original",
                    )


def _open_write_mode(call: ast.Call) -> Optional[str]:
    """The write-ish mode string of an ``open()`` call, if statically known."""
    mode_node: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode_node = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode_node = kw.value
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        if _WRITE_MODE_CHARS & set(mode_node.value):
            return mode_node.value
    return None


@register_rule
class RawArtifactWriteRule(Rule):
    id = "R4"
    name = "raw-artifact-write"
    description = (
        "artifact writes outside repro.checkpoint must use its atomic helpers "
        "(no bare open(..., 'w'), json.dump, or Path.write_text/write_bytes)"
    )

    def check(self, module: ModuleSource, project: Project) -> Iterable[Finding]:
        if module.tree is None or not module.in_package("repro"):
            return
        if module.in_package(*WRITE_EXEMPT_PREFIXES):
            return
        imports = ImportMap.from_tree(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                mode = _open_write_mode(node)
                if mode is not None:
                    yield self.finding(
                        module,
                        node,
                        f"bare open(..., {mode!r}) write; a crash mid-write leaves a "
                        "torn file — use repro.checkpoint.write_text_atomic or "
                        "append_jsonl",
                    )
                continue
            if isinstance(func, ast.Attribute) and func.attr in ("write_text", "write_bytes"):
                yield self.finding(
                    module,
                    node,
                    f"Path.{func.attr}() is not atomic (truncate-then-write); use "
                    "repro.checkpoint.write_text_atomic",
                )
                continue
            target = resolve_call_target(imports, func)
            if target in ("json.dump", "pickle.dump"):
                yield self.finding(
                    module,
                    node,
                    f"{target}() streams into an already-truncated file; serialize to "
                    "a string and use repro.checkpoint.write_json_atomic",
                )


#: Substrings that mark a path literal as durable service storage.
_DURABLE_PATH_MARKERS = (".wal", ".snapshot")


def _durable_path_marker(call: ast.Call) -> Optional[str]:
    """The durable-storage marker in the call's path argument, if any.

    Looks for a string literal anywhere in the path expression's
    subtree, so ``open(f"{d}/shard.wal", "a")``,
    ``open(os.path.join(d, "service.snapshot.json"), "w")`` and plain
    constants are all caught.
    """
    path_node: Optional[ast.expr] = None
    if call.args:
        path_node = call.args[0]
    for kw in call.keywords:
        if kw.arg == "file":
            path_node = kw.value
    if path_node is None:
        return None
    for node in ast.walk(path_node):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            for marker in _DURABLE_PATH_MARKERS:
                if marker in node.value:
                    return marker
    return None


@register_rule
class RawDurableWriteRule(Rule):
    id = "R9"
    name = "raw-durable-write"
    description = (
        "WAL/snapshot files must only be written by repro.checkpoint — a raw "
        "open() write bypasses CRC32 frames, digests, and fsync discipline"
    )

    def check(self, module: ModuleSource, project: Project) -> Iterable[Finding]:
        if module.tree is None or not module.in_package("repro"):
            return
        if module.in_package("repro/checkpoint.py"):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Name) and func.id == "open"):
                continue
            mode = _open_write_mode(node)
            if mode is None:
                continue
            marker = _durable_path_marker(node)
            if marker is not None:
                yield self.finding(
                    module,
                    node,
                    f"raw open(..., {mode!r}) on a '*{marker}*' path; durable "
                    "storage writes must go through repro.checkpoint "
                    "(JournalWriter / write_text_atomic / save_checkpoint) so "
                    "frames stay checksummed and fsync semantics hold",
                )
