"""Built-in reprolint rules.

Importing this package registers every rule with the central registry
in :mod:`repro.analysis.core`; ``all_rules()`` triggers that import
lazily, so adding a rule means adding a module here and importing it
below.  See ``docs/ANALYSIS.md`` for the catalog and the recipe for
writing a new rule.
"""

from __future__ import annotations

from repro.analysis.rules.checkpointing import (
    RawArtifactWriteRule,
    RawDurableWriteRule,
    StateSymmetryRule,
)
from repro.analysis.rules.cli_config import CliConfigDriftRule
from repro.analysis.rules.determinism import (
    GlobalRngRule,
    ImpureSnapshotRule,
    WallClockRule,
)
from repro.analysis.rules.robustness import ListenerPurityRule, SwallowedExceptRule

__all__ = [
    "CliConfigDriftRule",
    "GlobalRngRule",
    "ImpureSnapshotRule",
    "ListenerPurityRule",
    "RawArtifactWriteRule",
    "RawDurableWriteRule",
    "StateSymmetryRule",
    "SwallowedExceptRule",
    "WallClockRule",
]
