"""R7 ``cli-config-drift``: CLI flags and ``ExperimentConfig`` stay in sync.

The experiment CLI (``repro/cli.py``) and the shared
:class:`~repro.experiments.config.ExperimentConfig` dataclass evolve
together: every ``--flag`` must feed a config field (or be an
execution-only knob consumed by ``main``), and every config field must
be reachable from the CLI.  Drift in either direction is how "I reran
it with the same command" quietly stops meaning "same experiment".

Three checks, each anchored where the fix belongs:

* a parsed flag whose ``dest`` is never read (``args.<dest>``) in
  ``cli.py`` — dead flag, reported on the ``add_argument`` call;
* a keyword passed to ``ExperimentConfig(...)`` or ``config.with_(...)``
  in ``cli.py`` that is not a declared field — stale rename, reported
  at the call;
* a config field never set by any ``ExperimentConfig(...)``/``with_``
  call in ``cli.py`` — unreachable knob, reported on the field's line
  in ``config.py`` (internal fields carry an inline pragma there).

This is a cross-file rule: it needs both modules in the analyzed set
and stays silent when either is absent.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from repro.analysis.core import Finding, ModuleSource, Project, Rule, register_rule

__all__ = ["CliConfigDriftRule"]

CLI_PATH = "repro/cli.py"
CONFIG_PATH = "repro/experiments/config.py"
CONFIG_CLASS = "ExperimentConfig"

#: Local names an ``argparse.Namespace`` is conventionally bound to.
NAMESPACE_NAMES = frozenset({"args", "namespace", "ns", "opts"})


def _flag_dests(tree: ast.Module) -> List[Tuple[str, str, ast.Call]]:
    """(dest, display-flag, call-node) for every ``add_argument`` call."""
    flags = []
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "add_argument"
        ):
            continue
        option: Optional[str] = None
        for arg in node.args:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                if arg.value.startswith("--") or option is None:
                    option = arg.value
                if arg.value.startswith("--"):
                    break
        dest: Optional[str] = None
        for kw in node.keywords:
            if kw.arg == "dest" and isinstance(kw.value, ast.Constant):
                dest = str(kw.value.value)
        if dest is None and option is not None:
            dest = option.lstrip("-").replace("-", "_")
        if option is not None and dest is not None:
            flags.append((dest, option, node))
    return flags


def _namespace_reads(tree: ast.Module) -> Set[str]:
    reads = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in NAMESPACE_NAMES
        ):
            reads.add(node.attr)
    return reads


def _config_call_keywords(tree: ast.Module) -> List[Tuple[str, ast.Call]]:
    """Keywords passed to ``ExperimentConfig(...)`` or ``*.with_(...)``."""
    keywords = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        is_ctor = isinstance(node.func, ast.Name) and node.func.id == CONFIG_CLASS
        is_with = isinstance(node.func, ast.Attribute) and node.func.attr == "with_"
        if not (is_ctor or is_with):
            continue
        for kw in node.keywords:
            if kw.arg is not None:
                keywords.append((kw.arg, node))
    return keywords


def _config_fields(tree: ast.Module) -> List[Tuple[str, int]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == CONFIG_CLASS:
            return [
                (stmt.target.id, stmt.lineno)
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
            ]
    return []


@register_rule
class CliConfigDriftRule(Rule):
    id = "R7"
    name = "cli-config-drift"
    description = (
        "every CLI flag must be consumed, every ExperimentConfig keyword must be a "
        "real field, and every field must be reachable from the CLI"
    )

    def check(self, module: ModuleSource, project: Project) -> Iterable[Finding]:
        if module.tree is None:
            return
        if module.package_path == CLI_PATH:
            yield from self._check_cli(module, project)
        elif module.package_path == CONFIG_PATH:
            yield from self._check_config(module, project)

    def _check_cli(self, module: ModuleSource, project: Project) -> Iterable[Finding]:
        assert module.tree is not None
        reads = _namespace_reads(module.tree)
        for dest, option, node in _flag_dests(module.tree):
            if dest not in reads:
                yield self.finding(
                    module,
                    node,
                    f"flag {option!r} is parsed but args.{dest} is never read; "
                    "wire it into ExperimentConfig or delete it",
                )
        config_mod = project.get(CONFIG_PATH)
        if config_mod is None or config_mod.tree is None:
            return
        fields = {name for name, _ in _config_fields(config_mod.tree)}
        if not fields:
            return
        for keyword, node in _config_call_keywords(module.tree):
            if keyword not in fields:
                yield self.finding(
                    module,
                    node,
                    f"ExperimentConfig has no field {keyword!r} (stale rename?); "
                    f"declared fields: {', '.join(sorted(fields))}",
                )

    def _check_config(self, module: ModuleSource, project: Project) -> Iterable[Finding]:
        assert module.tree is not None
        cli_mod = project.get(CLI_PATH)
        if cli_mod is None or cli_mod.tree is None:
            return
        wired = {kw for kw, _ in _config_call_keywords(cli_mod.tree)}
        for name, lineno in _config_fields(module.tree):
            if name not in wired:
                yield self.finding(
                    module,
                    lineno,
                    f"ExperimentConfig.{name} cannot be set from the CLI; add a "
                    "flag in repro/cli.py or mark it internal with a pragma",
                )
