"""Failure-handling rules: swallowed exceptions and listener purity.

R5 ``swallowed-except``
    In ``repro.sim`` / ``repro.core`` / ``repro.checkpoint``, a bare
    ``except:`` — or an ``except Exception:``/``except BaseException:``
    whose body is only ``pass``/``...``/``continue`` — silently eats
    the invariant-checker and checkpoint errors those layers exist to
    raise.  Catch something specific or handle the error.
R6 ``listener-purity``
    Functions registered via ``engine.add_listener`` run after every
    event to *observe* (invariant checks, snapshot pacing).  The engine
    contract forbids them from scheduling events; mutating the clock or
    worker-pool capacity from a listener would corrupt the very replay
    determinism the observers audit.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Union

from repro.analysis._ast_utils import dotted_name
from repro.analysis.core import Finding, ModuleSource, Project, Rule, register_rule

__all__ = ["ListenerPurityRule", "SwallowedExceptRule"]

#: Exception names whose blanket capture counts as "broad".
BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})

#: Attributes a post-event listener may not assign to (the engine clock).
CLOCK_ATTRS = frozenset({"now", "_now", "_last_event_time"})

#: Calls a post-event listener may not make: event scheduling (the
#: engine contract) and direct worker/pool capacity mutation.
FORBIDDEN_LISTENER_CALLS = frozenset(
    {
        "schedule",
        "schedule_at",
        "preempt_worker",
        "degrade_worker",
        "degrade",
        "add_worker",
        "remove_worker",
    }
)

#: Attributes a listener may not assign to on any object (capacity).
CAPACITY_ATTRS = frozenset({"capacity", "_capacity"})


def _is_noop_body(body: List[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or bare `...`
        return False
    return True


@register_rule
class SwallowedExceptRule(Rule):
    id = "R5"
    name = "swallowed-except"
    description = (
        "no bare except / no-op 'except Exception: pass' in repro.sim, "
        "repro.core, or repro.checkpoint"
    )

    def check(self, module: ModuleSource, project: Project) -> Iterable[Finding]:
        if module.tree is None:
            return
        if not module.in_package("repro/sim", "repro/core", "repro/checkpoint.py"):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare 'except:' also swallows KeyboardInterrupt and the "
                    "invariant checker's violations; catch a specific exception",
                )
                continue
            names = _exception_names(node.type)
            if names & BROAD_EXCEPTIONS and _is_noop_body(node.body):
                yield self.finding(
                    module,
                    node,
                    f"'except {'/'.join(sorted(names & BROAD_EXCEPTIONS))}' with a "
                    "no-op body silently discards errors in a determinism-critical "
                    "path; handle or re-raise",
                )


def _exception_names(node: ast.expr) -> frozenset:
    if isinstance(node, ast.Tuple):
        names = set()
        for elt in node.elts:
            names |= _exception_names(elt)
        return frozenset(names)
    parts = dotted_name(node)
    return frozenset({parts[-1]}) if parts else frozenset()


@register_rule
class ListenerPurityRule(Rule):
    id = "R6"
    name = "listener-purity"
    description = (
        "engine post-event listeners must not schedule events, assign the engine "
        "clock, or mutate worker/pool capacity"
    )

    def check(self, module: ModuleSource, project: Project) -> Iterable[Finding]:
        if module.tree is None or not module.in_package("repro"):
            return
        for call in ast.walk(module.tree):
            if not (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "add_listener"
                and call.args
            ):
                continue
            listener = call.args[0]
            body = self._resolve_listener(module, listener)
            if body is None:
                continue
            label = self._listener_label(listener)
            yield from self._audit(module, body, label)

    @staticmethod
    def _listener_label(listener: ast.expr) -> str:
        parts = dotted_name(listener)
        if parts:
            return ".".join(parts)
        return "<lambda>" if isinstance(listener, ast.Lambda) else "<listener>"

    def _resolve_listener(
        self, module: ModuleSource, listener: ast.expr
    ) -> Optional[Union[ast.Lambda, ast.FunctionDef]]:
        if isinstance(listener, ast.Lambda):
            return listener
        parts = dotted_name(listener)
        if parts is None or module.tree is None:
            return None
        target_name = parts[-1]
        if len(parts) == 1:
            for node in module.tree.body:
                if isinstance(node, ast.FunctionDef) and node.name == target_name:
                    return node
            return None
        # ``self._method`` / ``obj.method``: match any same-module method.
        for cls in ast.walk(module.tree):
            if isinstance(cls, ast.ClassDef):
                for stmt in cls.body:
                    if isinstance(stmt, ast.FunctionDef) and stmt.name == target_name:
                        return stmt
        return None

    def _audit(
        self,
        module: ModuleSource,
        body: Union[ast.Lambda, ast.FunctionDef],
        label: str,
    ) -> Iterable[Finding]:
        for node in ast.walk(body):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Attribute):
                    if target.attr in CLOCK_ATTRS:
                        yield self.finding(
                            module,
                            node,
                            f"listener {label} assigns engine clock attribute "
                            f"'.{target.attr}'; listeners observe, they never "
                            "steer time",
                        )
                    elif target.attr in CAPACITY_ATTRS:
                        yield self.finding(
                            module,
                            node,
                            f"listener {label} mutates capacity attribute "
                            f"'.{target.attr}'; capacity changes must flow through "
                            "scheduled pool events",
                        )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in FORBIDDEN_LISTENER_CALLS
            ):
                yield self.finding(
                    module,
                    node,
                    f"listener {label} calls '.{node.func.attr}()'; post-event "
                    "listeners may not schedule events or mutate pool capacity "
                    "(engine contract)",
                )
