"""Determinism rules: wall-clock reads, global RNG, impure snapshots.

These guard the properties the test layers assert dynamically — golden
traces, bit-identical parallel grids, digest-verified resume — by
rejecting the source patterns that break them:

R1 ``wall-clock``
    ``time.time()`` / ``time.monotonic()`` / ``datetime.now()`` inside
    ``repro.sim`` or ``repro.core``.  The simulation owns its clock
    (``engine.now``); a wall-clock read there makes results depend on
    host speed.  (``repro.checkpoint`` legitimately reads the wall
    clock to pace snapshots and is outside the scope.)
R2 ``global-rng``
    Module-level ``random.*`` draws or legacy ``numpy.random.*``
    global-state calls anywhere in ``src/``.  Every stream must be an
    owned, seeded ``random.Random`` / ``numpy.random.Generator`` so a
    checkpoint can capture and restore it exactly.
R8 ``impure-snapshot``
    ``state_dict`` bodies may not draw from an RNG or read a clock:
    serializing state must never advance it, or snapshot-and-continue
    diverges from never-snapshotting.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis._ast_utils import ImportMap, resolve_call_target
from repro.analysis.core import Finding, ModuleSource, Project, Rule, register_rule

__all__ = ["GlobalRngRule", "ImpureSnapshotRule", "WallClockRule"]

#: Fully-qualified callables that read the wall clock.
CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``random`` module attributes that are *not* global-state draws
#: (constructors and types; instances made from them are fine).
RANDOM_ALLOWED = frozenset({"Random", "SystemRandom"})

#: ``numpy.random`` attributes that construct owned generators rather
#: than touching the legacy global state.
NUMPY_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "RandomState",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

#: Method names that draw from (and therefore advance) an RNG stream.
RNG_DRAW_METHODS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "exponential",
        "gauss",
        "integers",
        "lognormvariate",
        "normal",
        "normalvariate",
        "paretovariate",
        "poisson",
        "randint",
        "random",
        "randrange",
        "sample",
        "shuffle",
        "standard_normal",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)


def _clock_calls(imports: ImportMap, tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            target = resolve_call_target(imports, node.func)
            if target in CLOCK_CALLS:
                yield node, target


@register_rule
class WallClockRule(Rule):
    id = "R1"
    name = "wall-clock"
    description = (
        "no wall-clock reads (time.time/monotonic, datetime.now/today) in repro.sim/repro.core"
    )

    def check(self, module: ModuleSource, project: Project) -> Iterable[Finding]:
        if module.tree is None or not module.in_package("repro/sim", "repro/core"):
            return
        for node, target in _clock_calls(ImportMap.from_tree(module.tree), module.tree):
            yield self.finding(
                module,
                node,
                f"wall-clock read {target}() in simulation/allocator code; "
                "use the engine clock (engine.now) so runs replay identically",
            )


@register_rule
class GlobalRngRule(Rule):
    id = "R2"
    name = "global-rng"
    description = (
        "no global/unseeded RNG (random.* module functions, legacy numpy.random.* "
        "global state) anywhere in src/"
    )

    def check(self, module: ModuleSource, project: Project) -> Iterable[Finding]:
        if module.tree is None:
            return
        imports = ImportMap.from_tree(module.tree)
        # from-imports of draw functions are flagged at the import line,
        # which also covers later bare-name call sites.
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and not node.level:
                if node.module == "random":
                    for alias in node.names:
                        if alias.name not in RANDOM_ALLOWED and alias.name != "*":
                            yield self.finding(
                                module,
                                node,
                                f"'from random import {alias.name}' binds a global-state "
                                "draw; construct a seeded random.Random instance instead",
                            )
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name not in NUMPY_RANDOM_ALLOWED and alias.name != "*":
                            yield self.finding(
                                module,
                                node,
                                f"'from numpy.random import {alias.name}' uses the legacy "
                                "global state; use numpy.random.default_rng(seed)",
                            )
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            target = resolve_call_target(imports, node.func)
            if target is None:
                continue
            if target.startswith("random.") and target.count(".") == 1:
                member = target.split(".", 1)[1]
                if member not in RANDOM_ALLOWED:
                    yield self.finding(
                        module,
                        node,
                        f"global RNG draw {target}(); every stream must be an owned, "
                        "seeded random.Random so checkpoints can capture it",
                    )
            elif target.startswith("numpy.random."):
                member = target.split(".")[2]
                if member not in NUMPY_RANDOM_ALLOWED:
                    yield self.finding(
                        module,
                        node,
                        f"legacy numpy global-state call {target}(); use an owned "
                        "numpy.random.default_rng(seed) Generator",
                    )


@register_rule
class ImpureSnapshotRule(Rule):
    id = "R8"
    name = "impure-snapshot"
    description = (
        "state_dict bodies must not draw RNG values or read clocks — "
        "serializing state may never advance it"
    )

    def check(self, module: ModuleSource, project: Project) -> Iterable[Finding]:
        if module.tree is None:
            return
        imports = ImportMap.from_tree(module.tree)
        for fn in ast.walk(module.tree):
            if not (isinstance(fn, ast.FunctionDef) and fn.name == "state_dict"):
                continue
            for node, target in _clock_calls(imports, fn):
                yield self.finding(
                    module,
                    node,
                    f"state_dict reads the clock via {target}(); snapshot envelopes "
                    "must be reproducible byte-for-byte",
                )
            for node in ast.walk(fn):
                if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                    continue
                if node.func.attr in RNG_DRAW_METHODS:
                    yield self.finding(
                        module,
                        node,
                        f"state_dict draws from an RNG (.{node.func.attr}()); "
                        "serialize generator state with repro.checkpoint.generator_state "
                        "instead of sampling",
                    )
