"""Project-wide symbol table and call graph for the reproflow analyses.

The graph layer answers three questions the per-file AST rules cannot:

* **Who is who** — every function and method in the project gets a
  stable module-qualified name (``repro.service.shards.AllocationShard.
  _commit_inner``) derived from its package path, so identities survive
  formatting and reordering.
* **Who calls whom** — call expressions are resolved through aliased
  imports, ``self``, parameter/variable annotations, class attribute
  types inferred from ``__init__`` bodies, and constructor calls, then
  classified as *internal* edges (both ends in the project) or
  *external* targets (``os.fsync``, ``time.sleep``...).  Resolution is
  deliberately best-effort and sound-by-silence: a call the resolver
  cannot type simply produces no edge, and the runtime test layers stay
  the backstop.
* **What colour is a function** — ``async def`` vs sync, plus the
  *sync-boundary* annotation: a function whose ``def`` line (or the
  line above it) carries ``# reproflow: sync-boundary -- <reason>`` is
  a sanctioned place for blocking I/O, and path searches stop there.

Everything is pure stdlib and deterministic: same sources in, same
graph out, independent of dict iteration order (all adjacency lists are
sorted).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis._ast_utils import ImportMap, dotted_name
from repro.analysis.core import ModuleSource, Project

__all__ = [
    "FILE_HANDLE",
    "SYNC_BOUNDARY_RE",
    "CallEdge",
    "CallGraph",
    "ClassInfo",
    "FunctionInfo",
    "module_dotted_name",
]

FunctionAst = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Pseudo-type assigned to names bound from ``open()`` / ``os.fdopen()``:
#: method calls on such receivers (``.write``, ``.flush``) are file I/O.
FILE_HANDLE = "<file-handle>"

#: A deliberate blocking choke point: ``# reproflow: sync-boundary -- reason``.
SYNC_BOUNDARY_RE = re.compile(
    r"#\s*reproflow:\s*sync-boundary(?:\s*(?:--|:)\s*(?P<reason>.*))?"
)

#: Builtins treated as call targets even though no import binds them.
_BUILTIN_CALLS = frozenset({"open", "print", "input"})

#: Constructors producing a file handle.
_FILE_FACTORIES = frozenset({"open", "os.fdopen", "io.open", "tempfile.NamedTemporaryFile"})


def module_dotted_name(package_path: str) -> str:
    """``repro/service/shards.py`` -> ``repro.service.shards``."""
    path = package_path
    if path.endswith("/__init__.py"):
        path = path[: -len("/__init__.py")]
    elif path.endswith(".py"):
        path = path[:-3]
    return path.replace("/", ".")


@dataclass
class FunctionInfo:
    """One function or method, with its resolved identity and colouring."""

    qualname: str
    module: ModuleSource
    node: FunctionAst
    is_async: bool
    cls: Optional[str] = None  # owning class qualname, if a method
    #: Reason text of a ``# reproflow: sync-boundary`` annotation
    #: (empty string for an annotation without a reason), or ``None``.
    sync_boundary: Optional[str] = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def line(self) -> int:
        return self.node.lineno

    def __repr__(self) -> str:
        return f"FunctionInfo({self.qualname!r}, async={self.is_async})"


@dataclass
class ClassInfo:
    """One class: its methods, declared bases, and inferred attribute types."""

    qualname: str
    module: ModuleSource
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Base classes as resolved dotted names (best-effort).
    bases: List[str] = field(default_factory=list)
    #: ``self.<attr>`` -> inferred type (a class qualname or FILE_HANDLE).
    attr_types: Dict[str, str] = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"ClassInfo({self.qualname!r}, methods={sorted(self.methods)})"


@dataclass(frozen=True)
class CallEdge:
    """One resolved call site."""

    caller: str
    callee: str
    node: ast.Call
    internal: bool

    @property
    def line(self) -> int:
        return self.node.lineno


class _ModuleContext:
    """Per-module resolution context: imports + top-level symbol map."""

    def __init__(self, module: ModuleSource, dotted: str) -> None:
        self.module = module
        self.dotted = dotted
        assert module.tree is not None
        self.imports = ImportMap.from_tree(module.tree)
        #: top-level name -> function/class qualname in this module.
        self.top_level: Dict[str, str] = {}


class CallGraph:
    """The whole-program call graph over a :class:`Project`.

    Build once with :meth:`build`; every analysis shares the instance.
    """

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self._contexts: Dict[str, _ModuleContext] = {}
        #: caller qualname -> outgoing edges, in source order.
        self.edges: Dict[str, List[CallEdge]] = {}
        #: callee qualname -> incoming internal edges.
        self.reverse: Dict[str, List[CallEdge]] = {}
        #: caller qualname -> {id(call node) -> resolved target}.
        self._by_call_node: Dict[str, Dict[int, CallEdge]] = {}
        #: Supplementary documents for doc-aware analyses (F5 reads
        #: ``docs/SERVICE.md`` here); display path -> text.  Populated by
        #: the flow runner, empty when no docs are available.
        self.docs: Dict[str, str] = {}

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(cls, project: Project) -> "CallGraph":
        graph = cls()
        modules = sorted(
            (m for m in project if m.tree is not None),
            key=lambda m: m.package_path,
        )
        for module in modules:
            graph._register_module(module)
        for ctx in graph._contexts.values():
            graph._infer_class_attrs(ctx)
        for info in graph._functions_sorted():
            graph._build_edges(info)
        return graph

    def _functions_sorted(self) -> List[FunctionInfo]:
        return [self.functions[name] for name in sorted(self.functions)]

    def _register_module(self, module: ModuleSource) -> None:
        dotted = module_dotted_name(module.package_path)
        ctx = _ModuleContext(module, dotted)
        self._contexts[dotted] = ctx
        assert module.tree is not None
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._register_function(ctx, node, prefix=dotted, cls=None)
            elif isinstance(node, ast.ClassDef):
                self._register_class(ctx, node)

    def _register_class(self, ctx: _ModuleContext, node: ast.ClassDef) -> None:
        qualname = f"{ctx.dotted}.{node.name}"
        info = ClassInfo(qualname=qualname, module=ctx.module, node=node)
        for base in node.bases:
            resolved = self._resolve_dotted(ctx, base)
            if resolved is not None:
                info.bases.append(resolved)
        self.classes[qualname] = info
        ctx.top_level[node.name] = qualname
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._register_function(ctx, item, prefix=qualname, cls=qualname)
                info.methods[item.name] = fn

    def _register_function(
        self,
        ctx: _ModuleContext,
        node: FunctionAst,
        prefix: str,
        cls: Optional[str],
    ) -> FunctionInfo:
        qualname = f"{prefix}.{node.name}"
        info = FunctionInfo(
            qualname=qualname,
            module=ctx.module,
            node=node,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            cls=cls,
            sync_boundary=self._sync_boundary(ctx.module, node),
        )
        self.functions[qualname] = info
        if cls is None:
            ctx.top_level[node.name] = qualname
        # Nested defs become their own nodes under the parent's qualname.
        for inner in ast.walk(node):
            if inner is node:
                continue
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._enclosing_def(node, inner) is node:
                    self._register_function(ctx, inner, prefix=qualname, cls=cls)
        return info

    @staticmethod
    def _enclosing_def(root: FunctionAst, target: ast.AST) -> Optional[ast.AST]:
        """The innermost def/class between ``root`` and ``target``."""
        enclosing: Optional[ast.AST] = None

        def visit(node: ast.AST, current: ast.AST) -> None:
            nonlocal enclosing
            for child in ast.iter_child_nodes(node):
                if child is target:
                    enclosing = current
                    return
                nxt = (
                    child
                    if isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                    )
                    else current
                )
                visit(child, nxt)
                if enclosing is not None:
                    return

        visit(root, root)
        return enclosing

    @staticmethod
    def _sync_boundary(module: ModuleSource, node: FunctionAst) -> Optional[str]:
        for lineno in (node.lineno, node.lineno - 1):
            if 1 <= lineno <= len(module.lines):
                match = SYNC_BOUNDARY_RE.search(module.lines[lineno - 1])
                if match is not None:
                    return (match.group("reason") or "").strip()
        return None

    # -- type/annotation resolution --------------------------------------------

    def _resolve_dotted(self, ctx: _ModuleContext, expr: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain to a dotted origin."""
        parts = dotted_name(expr)
        if not parts:
            return None
        base = parts[0]
        if base in ctx.top_level and len(parts) == 1:
            return ctx.top_level[base]
        origin = ctx.imports.resolve_name(base)
        if origin is not None:
            return ".".join([origin, *parts[1:]])
        if base in ctx.top_level:
            return ".".join([ctx.top_level[base], *parts[1:]])
        return None

    def resolve_in_module(self, module: ModuleSource, expr: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain against ``module``'s namespace.

        Public variant of :meth:`_resolve_dotted` for analyses that need
        to identify non-call references (raised exception classes,
        ``except`` handler types, module constants).
        """
        ctx = self._contexts.get(module_dotted_name(module.package_path))
        if ctx is None:
            return None
        return self._resolve_dotted(ctx, expr)

    def _resolve_annotation(self, ctx: _ModuleContext, expr: ast.AST) -> Optional[str]:
        """A type annotation -> class qualname (or FILE_HANDLE), best-effort."""
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            try:
                parsed = ast.parse(expr.value, mode="eval").body
            except SyntaxError:
                return None
            return self._resolve_annotation(ctx, parsed)
        if isinstance(expr, (ast.Name, ast.Attribute)):
            resolved = self._resolve_dotted(ctx, expr)
            if resolved is not None and resolved in self.classes:
                return resolved
            if resolved in ("typing.TextIO", "typing.BinaryIO", "typing.IO"):
                return FILE_HANDLE
            return None
        if isinstance(expr, ast.Subscript):
            # Optional[X], List[X], "X | None" — first resolvable element wins.
            for child in ast.walk(expr.slice):
                if isinstance(child, (ast.Name, ast.Attribute)):
                    resolved = self._resolve_annotation(ctx, child)
                    if resolved is not None:
                        return resolved
            return None
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.BitOr):
            return self._resolve_annotation(ctx, expr.left) or self._resolve_annotation(
                ctx, expr.right
            )
        return None

    def _constructed_class(self, ctx: _ModuleContext, value: ast.AST) -> Optional[str]:
        """Type of ``value`` when it is a constructor or file-factory call."""
        if not isinstance(value, ast.Call):
            return None
        target = self._resolve_dotted(ctx, value.func)
        if target is None and isinstance(value.func, ast.Name):
            if value.func.id in _BUILTIN_CALLS:
                target = value.func.id
        if target is None:
            return None
        if target in _FILE_FACTORIES:
            return FILE_HANDLE
        if target in self.classes:
            return target
        return None

    def _infer_class_attrs(self, ctx: _ModuleContext) -> None:
        """Populate ``ClassInfo.attr_types`` from every method body."""
        for cls in self.classes.values():
            if cls.module is not ctx.module:
                continue
            for method in cls.methods.values():
                self_name = _self_name(method.node)
                if self_name is None:
                    continue
                for node in ast.walk(method.node):
                    target: Optional[ast.expr] = None
                    value: Optional[ast.AST] = None
                    annotation: Optional[ast.AST] = None
                    if isinstance(node, ast.AnnAssign):
                        target, value, annotation = node.target, node.value, node.annotation
                    elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                        target, value = node.targets[0], node.value
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == self_name
                    ):
                        continue
                    attr = target.attr
                    inferred: Optional[str] = None
                    if annotation is not None:
                        inferred = self._resolve_annotation(ctx, annotation)
                    if inferred is None and value is not None:
                        inferred = self._constructed_class(ctx, value)
                    if inferred is not None and attr not in cls.attr_types:
                        cls.attr_types[attr] = inferred

    # -- method lookup ---------------------------------------------------------

    def lookup_method(self, cls_qualname: str, name: str) -> Optional[FunctionInfo]:
        """Resolve ``name`` on a class, walking declared bases depth-first."""
        seen: Set[str] = set()
        stack = [cls_qualname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            if name in cls.methods:
                return cls.methods[name]
            stack.extend(cls.bases)
        return None

    # -- edge construction -----------------------------------------------------

    def _local_env(self, ctx: _ModuleContext, info: FunctionInfo) -> Dict[str, str]:
        """Parameter/local name -> type (class qualname or FILE_HANDLE)."""
        env: Dict[str, str] = {}
        args = info.node.args
        all_args = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        if info.cls is not None and all_args:
            env[all_args[0].arg] = info.cls
        for arg in all_args:
            if arg.annotation is not None:
                resolved = self._resolve_annotation(ctx, arg.annotation)
                if resolved is not None:
                    env[arg.arg] = resolved
        for node in self._own_body_walk(info.node):
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                resolved = self._resolve_annotation(ctx, node.annotation)
                if resolved is not None:
                    env.setdefault(node.target.id, resolved)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    inferred = self._constructed_class(ctx, node.value)
                    if inferred is not None:
                        env.setdefault(target.id, inferred)
            elif isinstance(node, (ast.For, ast.AsyncFor)) and isinstance(
                node.target, ast.Name
            ):
                # ``for shard in self._shards`` — annotations record the
                # element type (List[AllocationShard] resolves to the
                # class), so the loop variable gets that type.
                element = self._type_of_simple(ctx, env, node.iter)
                if element is not None:
                    env.setdefault(node.target.id, element)
            elif isinstance(node, ast.withitem) and isinstance(
                node.optional_vars, ast.Name
            ):
                # ``with open(path) as handle`` — the bound name takes the
                # constructed type (usually FILE_HANDLE).
                inferred = self._constructed_class(ctx, node.context_expr)
                if inferred is not None:
                    env.setdefault(node.optional_vars.id, inferred)
        return env

    def _type_of_simple(
        self, ctx: _ModuleContext, env: Dict[str, str], expr: ast.AST
    ) -> Optional[str]:
        """Type of a Name / ``self.attr`` / constructor expression."""
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            base_type = env.get(expr.value.id)
            if base_type is not None and base_type in self.classes:
                return self.classes[base_type].attr_types.get(expr.attr)
            return None
        if isinstance(expr, ast.Call):
            return self._constructed_class(ctx, expr)
        return None

    @staticmethod
    def _own_body_walk(fn: FunctionAst) -> Iterator[ast.AST]:
        """Walk a function body without descending into nested defs."""
        stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _type_of(
        self,
        ctx: _ModuleContext,
        info: FunctionInfo,
        env: Dict[str, str],
        expr: ast.AST,
    ) -> Optional[str]:
        return self._type_of_simple(ctx, env, expr)

    def _resolve_call(
        self,
        ctx: _ModuleContext,
        info: FunctionInfo,
        env: Dict[str, str],
        local_defs: Dict[str, str],
        call: ast.Call,
    ) -> Optional[Tuple[str, bool]]:
        """Resolve one call to ``(target, internal)`` or ``None``."""
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in local_defs:
                return local_defs[name], True
            if name in ctx.top_level:
                target = ctx.top_level[name]
                return self._constructor_or_function(target)
            origin = ctx.imports.resolve_name(name)
            if origin is not None:
                return self._constructor_or_function(origin)
            if name in _BUILTIN_CALLS:
                return name, False
            return None
        if isinstance(func, ast.Attribute):
            receiver_type = self._type_of(ctx, info, env, func.value)
            if receiver_type == FILE_HANDLE:
                return f"{FILE_HANDLE}.{func.attr}", False
            if receiver_type is not None and receiver_type in self.classes:
                method = self.lookup_method(receiver_type, func.attr)
                if method is not None:
                    return method.qualname, True
                return f"{receiver_type}.{func.attr}", False
            dotted = self._resolve_dotted(ctx, func)
            if dotted is not None:
                return self._constructor_or_function(dotted)
            return None
        return None

    def _constructor_or_function(self, target: str) -> Tuple[str, bool]:
        if target in self.functions:
            return target, True
        if target in self.classes:
            init = self.lookup_method(target, "__init__")
            if init is not None:
                return init.qualname, True
            return target, True  # class without __init__: edge to the class
        if target in _FILE_FACTORIES:
            return target, False
        return target, False

    def _build_edges(self, info: FunctionInfo) -> None:
        ctx = self._contexts[module_dotted_name(info.module.package_path)]
        env = self._local_env(ctx, info)
        local_defs: Dict[str, str] = {}
        for child in ast.iter_child_nodes(info.node):
            for node in ast.walk(child):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested = f"{info.qualname}.{node.name}"
                    if nested in self.functions:
                        local_defs.setdefault(node.name, nested)
        edges: List[CallEdge] = []
        for node in self._own_body_walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            resolved = self._resolve_call(ctx, info, env, local_defs, node)
            if resolved is None:
                continue
            target, internal = resolved
            edges.append(
                CallEdge(caller=info.qualname, callee=target, node=node, internal=internal)
            )
        edges.sort(key=lambda e: (e.node.lineno, e.node.col_offset, e.callee))
        self.edges[info.qualname] = edges
        by_node: Dict[int, CallEdge] = {}
        for edge in edges:
            by_node[id(edge.node)] = edge
            if edge.internal:
                self.reverse.setdefault(edge.callee, []).append(edge)
        self._by_call_node[info.qualname] = by_node

    # -- queries ---------------------------------------------------------------

    def outgoing(self, qualname: str) -> Sequence[CallEdge]:
        return self.edges.get(qualname, ())

    def incoming(self, qualname: str) -> Sequence[CallEdge]:
        return self.reverse.get(qualname, ())

    def edge_for_call(self, caller: str, call: ast.Call) -> Optional[CallEdge]:
        return self._by_call_node.get(caller, {}).get(id(call))

    def reachable(
        self,
        roots: Iterable[str],
        blocked: Iterable[str] = (),
        enter_roots: bool = True,
    ) -> Set[str]:
        """Internal-edge reachability from ``roots``.

        ``blocked`` functions are never *entered*: an edge into one is
        dropped, so nothing beyond it is reached through that path.
        With ``enter_roots=False`` blocked roots are skipped entirely.
        """
        blocked_set = set(blocked)
        seen: Set[str] = set()
        stack: List[str] = []
        for root in roots:
            if root in blocked_set and not enter_roots:
                continue
            if root not in seen:
                seen.add(root)
                stack.append(root)
        while stack:
            current = stack.pop()
            for edge in self.edges.get(current, ()):
                if not edge.internal:
                    continue
                callee = edge.callee
                if callee in blocked_set or callee in seen:
                    continue
                seen.add(callee)
                stack.append(callee)
        return seen

    def signature(self) -> Tuple[Tuple[str, str, bool], ...]:
        """Order-independent structural fingerprint (for stability tests)."""
        rows: Set[Tuple[str, str, bool]] = set()
        for edges in self.edges.values():
            for edge in edges:
                rows.add((edge.caller, edge.callee, edge.internal))
        return tuple(sorted(rows))


def _self_name(fn: FunctionAst) -> Optional[str]:
    args = [*fn.args.posonlyargs, *fn.args.args]
    return args[0].arg if args else None
