"""F3 ``taint-lane``: wall-clock/RNG values must not reach durable lanes.

The local rules R1/R2/R8 reject wall-clock and global-RNG *call sites*
in the packages where they are banned outright.  F3 covers the lanes
where the ban is about *where the value ends up*: a ``time.time()`` or
``uuid.uuid4()`` read is fine for pacing or logging, but the moment the
value flows into a ``state_dict()`` return, a WAL frame payload, or a
wire protocol response, replays stop being bit-identical.

The engine is a flow-insensitive interprocedural taint analysis with
callee summaries: per function it tracks which locals/attributes carry
values originating at a source call, and summarises (a) which taint
reaches the return value and (b) which parameters flow into a sink.
Summaries propagate over the call graph to a fixpoint, so a source in
``__init__`` stored on ``self`` and encoded onto the wire three calls
later is still caught.  Findings are anchored at the **source** call
site — one ``# reprolint: disable=F3`` pragma (with a reason) at the
source silences every lane it feeds.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.core import Finding, ModuleSource, Project
from repro.analysis.flow.base import FlowAnalysis, register_flow_analysis
from repro.analysis.flow.graph import CallGraph, FunctionInfo
from repro.analysis.rules.determinism import CLOCK_CALLS, RNG_DRAW_METHODS

__all__ = ["SINK_CALLS", "SOURCE_CALLS", "TaintLaneAnalysis"]

#: Fully-qualified calls whose return value is tainted (beyond the
#: clock reads shared with R1 and the global-RNG draws shared with R2).
SOURCE_CALLS = frozenset(CLOCK_CALLS) | frozenset(
    {"uuid.uuid1", "uuid.uuid4", "os.urandom"}
)

#: Call targets that are durable/wire lanes: any tainted argument is a
#: violation.
SINK_CALLS: Dict[str, str] = {
    "repro.checkpoint.JournalWriter.append": "WAL frame payload (JournalWriter.append)",
    "repro.checkpoint.JournalWriter.append_many": (
        "WAL frame payload (JournalWriter.append_many)"
    ),
    "repro.checkpoint.append_jsonl": "WAL frame payload (append_jsonl)",
    "repro.checkpoint.encode_frame": "WAL frame payload (encode_frame)",
    "repro.service.protocol.encode": "wire payload (protocol.encode)",
    "repro.service.protocol.ok_response": "wire response (ok_response)",
    "repro.service.protocol.error_response": "wire response (error_response)",
}


@dataclass(frozen=True, order=True)
class _Src:
    """A concrete taint origin: one source call site."""

    path: str
    line: int
    col: int
    label: str


@dataclass(frozen=True, order=True)
class _Param:
    """Symbolic origin: taint entering through parameter ``index``."""

    index: int


Origin = Union[_Src, _Param]


@dataclass(frozen=True, order=True)
class _Sink:
    """One lane a tainted value reached."""

    label: str
    path: str
    line: int


@dataclass
class _Summary:
    """What a function does with taint, as seen by its callers."""

    returns: Set[Origin]
    sinks: Set[Tuple[int, _Sink]]

    def snapshot(self) -> Tuple[object, object]:
        return (frozenset(self.returns), frozenset(self.sinks))


def _is_source(target: Optional[str]) -> Optional[str]:
    """Short label if ``target`` is a taint source, else ``None``."""
    if target is None:
        return None
    if target in SOURCE_CALLS:
        return target
    if target.startswith("secrets."):
        return target
    if target.startswith("random."):
        tail = target.rsplit(".", 1)[-1]
        if tail in RNG_DRAW_METHODS or tail in {"getrandbits", "randbytes"}:
            return target
    if target.startswith("numpy.random."):
        tail = target.rsplit(".", 1)[-1]
        if tail in RNG_DRAW_METHODS:
            return target
    return None


@register_flow_analysis
class TaintLaneAnalysis(FlowAnalysis):
    id = "F3"
    name = "taint-lane"
    description = (
        "wall-clock / unseeded-RNG values flowing into state_dict() "
        "returns, WAL frame payloads, or protocol responses"
    )

    MAX_ROUNDS = 30

    def run(self, project: Project, graph: CallGraph) -> Iterable[Finding]:
        engine = _TaintEngine(graph)
        engine.solve()
        modules: Dict[str, ModuleSource] = {m.path: m for m in project}
        for src, sink in sorted(engine.findings):
            module = modules.get(src.path)
            if module is None:  # pragma: no cover - source is always scanned
                continue
            yield self.finding(
                module,
                src.line,
                f"nondeterministic value from `{src.label}()` flows into "
                f"{sink.label} at {sink.path}:{sink.line}; derive it from "
                "seeded/logical state or suppress at this source with a reason",
            )


class _TaintEngine:
    """Interprocedural fixpoint over function summaries + attr taint."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.summaries: Dict[str, _Summary] = {
            q: _Summary(returns=set(), sinks=set()) for q in graph.functions
        }
        #: ``(class_qualname, attr)`` -> concrete origins stored there.
        self.attr_taint: Dict[Tuple[str, str], Set[_Src]] = {}
        self.findings: Set[Tuple[_Src, _Sink]] = set()

    def solve(self) -> None:
        order = sorted(self.graph.functions)
        for _ in range(TaintLaneAnalysis.MAX_ROUNDS):
            before = (
                tuple(self.summaries[q].snapshot() for q in order),
                tuple(sorted((k, frozenset(v)) for k, v in self.attr_taint.items())),
            )
            for qualname in order:
                self._analyze(self.graph.functions[qualname], report=False)
            after = (
                tuple(self.summaries[q].snapshot() for q in order),
                tuple(sorted((k, frozenset(v)) for k, v in self.attr_taint.items())),
            )
            if after == before:
                break
        for qualname in order:
            self._analyze(self.graph.functions[qualname], report=True)

    # -- per-function analysis -------------------------------------------------

    def _analyze(self, info: FunctionInfo, report: bool) -> None:
        fn = _FunctionPass(self, info, report)
        fn.run()
        summary = self.summaries[info.qualname]
        summary.returns |= fn.returns
        summary.sinks |= fn.sinks


class _FunctionPass:
    """One flow-insensitive pass over a single function body."""

    def __init__(self, engine: _TaintEngine, info: FunctionInfo, report: bool) -> None:
        self.engine = engine
        self.graph = engine.graph
        self.info = info
        self.report = report
        self.returns: Set[Origin] = set()
        self.sinks: Set[Tuple[int, _Sink]] = set()
        args = info.node.args
        self.params: List[str] = [
            a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
        ]
        self.env: Dict[str, Set[Origin]] = {
            name: {_Param(i)} for i, name in enumerate(self.params)
        }
        self.self_name: Optional[str] = (
            self.params[0] if info.cls is not None and self.params else None
        )

    def run(self) -> None:
        statements = [
            node
            for node in self.graph._own_body_walk(self.info.node)
            if isinstance(node, (ast.stmt, ast.withitem))
        ]
        for _ in range(6):
            before = {name: set(taints) for name, taints in self.env.items()}
            for node in statements:
                self._statement(node)
            if self.env == before:
                break

    # -- statements ------------------------------------------------------------

    def _statement(self, node: Union[ast.stmt, ast.withitem]) -> None:
        if isinstance(node, ast.Assign):
            taint = self._expr(node.value)
            for target in node.targets:
                self._assign(target, taint)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._assign(node.target, self._expr(node.value))
        elif isinstance(node, ast.AugAssign):
            self._assign(node.target, self._expr(node.value), augment=True)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                taint = self._expr(node.value)
                self.returns |= taint
                if self.info.name == "state_dict":
                    sink = _Sink(
                        label="a state_dict() return",
                        path=self.info.module.path,
                        line=node.lineno,
                    )
                    self._hit_sink(taint, sink)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._assign(node.target, self._expr(node.iter))
        elif isinstance(node, ast.withitem):
            taint = self._expr(node.context_expr)
            if node.optional_vars is not None:
                self._assign(node.optional_vars, taint)
        else:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._expr(child)

    def _assign(
        self, target: ast.expr, taint: Set[Origin], augment: bool = False
    ) -> None:
        del augment  # |= below is already additive (flow-insensitive)
        if isinstance(target, ast.Name):
            self.env.setdefault(target.id, set()).update(taint)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, taint)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, taint)
        elif isinstance(target, ast.Subscript):
            # Storing a tainted element taints the container.
            self._expr(target.slice)
            self._assign(target.value, taint)
        elif isinstance(target, ast.Attribute):
            if (
                self.self_name is not None
                and isinstance(target.value, ast.Name)
                and target.value.id == self.self_name
                and self.info.cls is not None
            ):
                concrete = {o for o in taint if isinstance(o, _Src)}
                if concrete:
                    key = (self.info.cls, target.attr)
                    self.engine.attr_taint.setdefault(key, set()).update(concrete)
            else:
                self._expr(target.value)

    # -- expressions -----------------------------------------------------------

    def _expr(self, expr: ast.expr) -> Set[Origin]:
        if isinstance(expr, ast.Name):
            return set(self.env.get(expr.id, ()))
        if isinstance(expr, ast.Constant):
            return set()
        if isinstance(expr, ast.Attribute):
            taint: Set[Origin] = set(self._expr(expr.value))
            if (
                self.self_name is not None
                and isinstance(expr.value, ast.Name)
                and expr.value.id == self.self_name
                and self.info.cls is not None
            ):
                taint |= self.engine.attr_taint.get((self.info.cls, expr.attr), set())
            return taint
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.Await):
            return self._expr(expr.value)
        result: Set[Origin] = set()
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                result |= self._expr(child)
            elif isinstance(child, ast.comprehension):
                self._assign(child.target, self._expr(child.iter))
                for cond in child.ifs:
                    self._expr(cond)
        return result

    def _call(self, call: ast.Call) -> Set[Origin]:
        edge = self.graph.edge_for_call(self.info.qualname, call)
        target = edge.callee if edge is not None else None
        internal = edge.internal if edge is not None else False

        receiver_taint: Optional[Set[Origin]] = None
        if isinstance(call.func, ast.Attribute):
            receiver_taint = self._expr(call.func.value)
        elif not isinstance(call.func, ast.Name):
            receiver_taint = self._expr(call.func)

        positional: List[Set[Origin]] = []
        for arg in call.args:
            if isinstance(arg, ast.Starred):
                positional.append(self._expr(arg.value))
            else:
                positional.append(self._expr(arg))
        keyword_taints: Dict[str, Set[Origin]] = {}
        spilled: Set[Origin] = set()
        for kw in call.keywords:
            taint = self._expr(kw.value)
            if kw.arg is None:
                spilled |= taint
            else:
                keyword_taints[kw.arg] = taint
        all_args: Set[Origin] = set().union(*positional) if positional else set()
        for taint in keyword_taints.values():
            all_args |= taint
        all_args |= spilled
        if receiver_taint:
            all_args |= receiver_taint

        source = _is_source(target)
        if source is not None:
            origin = _Src(
                path=self.info.module.path,
                line=call.lineno,
                col=call.col_offset,
                label=source,
            )
            return all_args | {origin}

        if target is not None and target in SINK_CALLS:
            sink = _Sink(
                label=SINK_CALLS[target],
                path=self.info.module.path,
                line=call.lineno,
            )
            for taint in [*positional, *keyword_taints.values(), spilled]:
                self._hit_sink(taint, sink)
            return all_args

        if internal and target is not None and target in self.engine.summaries:
            return self._internal_call(
                call, target, receiver_taint, positional, keyword_taints
            )

        # Unknown/external call: taint flows through conservatively.
        return all_args

    def _internal_call(
        self,
        call: ast.Call,
        target: str,
        receiver_taint: Optional[Set[Origin]],
        positional: Sequence[Set[Origin]],
        keyword_taints: Dict[str, Set[Origin]],
    ) -> Set[Origin]:
        callee = self.graph.functions[target]
        summary = self.engine.summaries[target]
        bound = callee.cls is not None and isinstance(call.func, ast.Attribute)
        # Parameter-index -> caller taint for this call.
        by_index: Dict[int, Set[Origin]] = {}
        offset = 1 if bound else 0
        if bound and receiver_taint is not None:
            by_index[0] = set(receiver_taint)
        for i, taint in enumerate(positional):
            by_index.setdefault(i + offset, set()).update(taint)
        callee_params = [
            a.arg
            for a in [
                *callee.node.args.posonlyargs,
                *callee.node.args.args,
                *callee.node.args.kwonlyargs,
            ]
        ]
        for name, taint in keyword_taints.items():
            if name in callee_params:
                by_index.setdefault(callee_params.index(name), set()).update(taint)

        for index, sink in summary.sinks:
            self._hit_sink(by_index.get(index, set()), sink)

        result: Set[Origin] = set()
        for origin in summary.returns:
            if isinstance(origin, _Param):
                result |= by_index.get(origin.index, set())
            else:
                result.add(origin)
        return result

    # -- sinks -----------------------------------------------------------------

    def _hit_sink(self, taint: Set[Origin], sink: _Sink) -> None:
        for origin in taint:
            if isinstance(origin, _Src):
                if self.report:
                    self.engine.findings.add((origin, sink))
            else:
                self.sinks.add((origin.index, sink))
