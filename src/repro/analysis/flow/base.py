"""Registry and base class for the reproflow interprocedural analyses.

Flow analyses look like reprolint rules — id, kebab-case name,
severity, description, pragma-aware findings — but they run once per
*project* against a shared :class:`~repro.analysis.flow.graph.CallGraph`
instead of once per module, so they live in their own registry and do
not appear in :func:`repro.analysis.all_rules`.
"""

from __future__ import annotations

import abc
import ast
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.analysis.core import Finding, ModuleSource, Project, Severity
from repro.analysis.flow.graph import CallGraph

__all__ = [
    "FlowAnalysis",
    "all_flow_analyses",
    "get_flow_analysis",
    "register_flow_analysis",
]


class FlowAnalysis(abc.ABC):
    """Base class for whole-program analyses (F1 ...).

    Subclasses set the class attributes and yield :class:`Finding`
    objects from :meth:`run`.  Analyses must be deterministic and
    side-effect free: same project in, same findings out.  Pragma
    suppression is applied by the flow runner, not here — ``run`` just
    reports everything it sees.
    """

    #: Short stable identifier (``F1`` ...); used in pragmas and baselines.
    id: str = ""
    #: Human-readable kebab-case name, also accepted in pragmas.
    name: str = ""
    severity: Severity = Severity.ERROR
    #: One-line description shown by ``--list-rules`` and the docs.
    description: str = ""

    @abc.abstractmethod
    def run(self, project: Project, graph: CallGraph) -> Iterable[Finding]:
        """Yield findings for the whole project."""

    def finding(
        self,
        module: ModuleSource,
        node: Union[ast.AST, int],
        message: str,
    ) -> Finding:
        """Build a finding anchored at ``node`` (or a bare line number)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        return Finding(
            path=module.path,
            line=line,
            col=col,
            rule=self.id,
            name=self.name,
            severity=self.severity,
            message=message,
        )


_FLOW_REGISTRY: Dict[str, FlowAnalysis] = {}


def register_flow_analysis(cls: type) -> type:
    """Class decorator: instantiate and register a :class:`FlowAnalysis`."""
    if not issubclass(cls, FlowAnalysis):
        raise TypeError(f"{cls!r} is not a FlowAnalysis subclass")
    instance = cls()
    if not instance.id or not instance.name:
        raise ValueError(f"{cls.__name__} must define non-empty id and name")
    for existing in _FLOW_REGISTRY.values():
        if existing.id == instance.id or existing.name == instance.name:
            raise ValueError(
                f"duplicate flow analysis registration: {instance.id}/{instance.name} "
                f"collides with {existing.id}/{existing.name}"
            )
    _FLOW_REGISTRY[instance.id] = instance
    return cls


def all_flow_analyses() -> Tuple[FlowAnalysis, ...]:
    """Every registered flow analysis, ordered by id (F1, F2, ...)."""
    _ensure_builtin_analyses()
    return tuple(sorted(_FLOW_REGISTRY.values(), key=lambda a: (len(a.id), a.id)))


def get_flow_analysis(token: str) -> Optional[FlowAnalysis]:
    """Look a flow analysis up by id or name (case-insensitive)."""
    _ensure_builtin_analyses()
    token = token.lower()
    for analysis in _FLOW_REGISTRY.values():
        if analysis.id.lower() == token or analysis.name.lower() == token:
            return analysis
    return None


def _ensure_builtin_analyses() -> None:
    """Import the analysis modules so their registration decorators run."""
    from repro.analysis.flow import blocking as _f1  # noqa: F401
    from repro.analysis.flow import drift as _f5  # noqa: F401
    from repro.analysis.flow import errors as _f4  # noqa: F401
    from repro.analysis.flow import ownership as _f2  # noqa: F401
    from repro.analysis.flow import taint as _f3  # noqa: F401
