"""``reproflow`` — whole-program dataflow analyses over ``src/repro``.

The single-file AST rules in :mod:`repro.analysis.rules` catch local
violations; the conventions the allocation service lives by — one
writer task per shard, no blocking I/O on the event loop, every storage
fault mapped to a typed wire error, no wall-clock/RNG taint in durable
payloads, a drift-free wire vocabulary — are *interprocedural*.  This
package builds a project-wide symbol table and call graph
(:mod:`repro.analysis.flow.graph`) and runs five analyses on it:

===  =====================  ====================================================
F1   ``loop-blocking``      blocking primitives reachable from ``async def``
                            functions in ``repro.service`` outside the
                            sanctioned sync-boundary set
F2   ``single-writer``      mutation of protected shard state reachable
                            outside the writer-drain task and the sanctioned
                            ``apply_op``/recovery entry points
F3   ``taint-lane``         wall-clock / unseeded-RNG values flowing into
                            ``state_dict()`` returns, WAL payloads, or wire
                            responses (callee-summary propagation)
F4   ``untyped-escape``     storage exceptions whose call paths into the
                            server handler escape without a dedicated typed
                            wire mapping
F5   ``protocol-drift``     wire op vocabulary drift between ``protocol.py``,
                            server dispatch, the client SDKs, and SERVICE.md
===  =====================  ====================================================

Run them with ``python -m repro.analysis --flow src`` (gated against the
committed ``reproflow-baseline.json``; ``--sarif`` emits a SARIF 2.1.0
report).  Findings honour the same ``# reprolint: disable=F1`` pragmas
as the AST rules; deliberate synchronous choke points carry a
``# reproflow: sync-boundary -- <reason>`` annotation instead (see
``docs/ANALYSIS.md``).
"""

from __future__ import annotations

from repro.analysis.flow.base import (
    FlowAnalysis,
    all_flow_analyses,
    get_flow_analysis,
    register_flow_analysis,
)
from repro.analysis.flow.graph import CallEdge, CallGraph, ClassInfo, FunctionInfo
from repro.analysis.flow.runner import FlowReport, analyze_flow_project, analyze_flow_sources

__all__ = [
    "CallEdge",
    "CallGraph",
    "ClassInfo",
    "FlowAnalysis",
    "FlowReport",
    "FunctionInfo",
    "all_flow_analyses",
    "analyze_flow_project",
    "analyze_flow_sources",
    "get_flow_analysis",
    "register_flow_analysis",
]
