"""F2 ``single-writer``: shard state mutates only under the writer task.

Exactly-once allocation rests on a structural claim: the allocator, the
applied-op sequence number, and the dedup window of an
:class:`~repro.service.shards.AllocationShard` change *only* inside the
single writer-drain task (``_writer_loop`` and what it alone calls) or
the sanctioned recovery entry points (``restore``/``replay``/
``apply_op``).  Any other path to a mutation is a data race with the
writer — it would reorder the WAL against the applied state.

F2 checks the claim on the call graph: it collects every mutation site
of the protected state (attribute stores, mutating dict-method calls,
mutating :class:`TaskOrientedAllocator` method calls inside the service
package) and flags those whose enclosing function is reachable from an
entry point *without* passing through a sanctioned function.
Constructor bodies (``__init__``) are construction, not mutation, and
are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set, Tuple

from repro.analysis.core import Finding, Project
from repro.analysis.flow.base import FlowAnalysis, register_flow_analysis
from repro.analysis.flow.graph import CallGraph, FunctionInfo

__all__ = ["SingleWriterAnalysis"]


@register_flow_analysis
class SingleWriterAnalysis(FlowAnalysis):
    id = "F2"
    name = "single-writer"
    description = (
        "mutation of protected AllocationShard state reachable outside "
        "the writer task and sanctioned recovery entry points"
    )

    #: The class whose state is single-writer by contract.
    SHARD_CLASS = "repro.service.shards.AllocationShard"
    #: ``self.<attr>`` stores on the shard that count as mutations.
    PROTECTED_ATTRS = frozenset({"seq", "allocator", "_dedup"})
    #: Mutating method calls on a protected container attribute.
    MUTATING_CONTAINER_METHODS = frozenset(
        {"pop", "popitem", "clear", "update", "setdefault", "move_to_end"}
    )
    #: The allocator class and its mutating methods; calls to these from
    #: inside the service package are writer-only.
    ALLOCATOR_CLASS = "repro.core.allocator.TaskOrientedAllocator"
    ALLOCATOR_MUTATORS = frozenset(
        {"allocate", "allocate_retry", "observe", "load_state", "reset"}
    )
    #: Package whose allocator calls the analysis polices.
    SERVICE_PACKAGE = "repro/service"
    #: Functions allowed to mutate (and to lead to mutations): the
    #: writer-drain task and the recovery/replay entry points.
    SANCTIONED = frozenset(
        {
            "repro.service.shards.AllocationShard._writer_loop",
            "repro.service.shards.AllocationShard.restore",
            "repro.service.shards.AllocationShard.replay",
            "repro.service.shards.apply_op",
        }
    )

    def run(self, project: Project, graph: CallGraph) -> Iterable[Finding]:
        sites = self._mutation_sites(graph)
        if not sites:
            return
        # Everything reachable from outside the sanctioned set: start at
        # functions with no internal callers (the public surface) and
        # never step into a sanctioned function.
        entries = sorted(
            qualname
            for qualname in graph.functions
            if qualname not in self.SANCTIONED and not graph.incoming(qualname)
        )
        exposed = graph.reachable(entries, blocked=self.SANCTIONED)
        for info, node, description in sites:
            if info.qualname in self.SANCTIONED or info.qualname not in exposed:
                continue
            yield self.finding(
                info.module,
                node,
                f"{description} in `{info.qualname}` is reachable outside "
                "the shard writer task (sanctioned entry points: "
                f"{', '.join(sorted(q.rsplit('.', 1)[-1] for q in self.SANCTIONED))}); "
                "route the mutation through the writer queue",
            )

    # -- mutation-site collection ----------------------------------------------

    def _mutation_sites(
        self, graph: CallGraph
    ) -> List[Tuple[FunctionInfo, ast.AST, str]]:
        sites: List[Tuple[FunctionInfo, ast.AST, str]] = []
        shard = graph.classes.get(self.SHARD_CLASS)
        shard_methods: Set[str] = set()
        if shard is not None:
            shard_methods = {
                m.qualname for m in shard.methods.values() if m.name != "__init__"
            }
        for qualname in sorted(graph.functions):
            info = graph.functions[qualname]
            if qualname in shard_methods:
                sites.extend(self._self_mutations(info, graph))
            if info.module.in_package(self.SERVICE_PACKAGE):
                sites.extend(self._allocator_mutations(info, graph))
        return sites

    def _self_mutations(
        self, info: FunctionInfo, graph: CallGraph
    ) -> List[Tuple[FunctionInfo, ast.AST, str]]:
        args = info.node.args
        all_args = [*args.posonlyargs, *args.args]
        if not all_args:
            return []
        self_name = all_args[0].arg
        sites: List[Tuple[FunctionInfo, ast.AST, str]] = []

        def is_protected(expr: ast.AST) -> bool:
            return (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == self_name
                and expr.attr in self.PROTECTED_ATTRS
            )

        for node in graph._own_body_walk(info.node):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if is_protected(target):
                        sites.append(
                            (info, node, f"store to protected `self.{target.attr}`")
                        )
                    elif isinstance(target, ast.Subscript) and is_protected(
                        target.value
                    ):
                        assert isinstance(target.value, ast.Attribute)
                        sites.append(
                            (
                                info,
                                node,
                                f"item store into protected `self.{target.value.attr}`",
                            )
                        )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and is_protected(target.value):
                        assert isinstance(target.value, ast.Attribute)
                        sites.append(
                            (
                                info,
                                node,
                                f"item delete from protected `self.{target.value.attr}`",
                            )
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in self.MUTATING_CONTAINER_METHODS
                    and is_protected(func.value)
                ):
                    assert isinstance(func.value, ast.Attribute)
                    sites.append(
                        (
                            info,
                            node,
                            f"mutating `{func.attr}()` on protected "
                            f"`self.{func.value.attr}`",
                        )
                    )
        return sites

    def _allocator_mutations(
        self, info: FunctionInfo, graph: CallGraph
    ) -> List[Tuple[FunctionInfo, ast.AST, str]]:
        sites: List[Tuple[FunctionInfo, ast.AST, str]] = []
        prefix = self.ALLOCATOR_CLASS + "."
        for edge in graph.outgoing(info.qualname):
            if not edge.callee.startswith(prefix):
                continue
            method = edge.callee[len(prefix) :]
            if method in self.ALLOCATOR_MUTATORS:
                sites.append(
                    (info, edge.node, f"allocator mutation `{method}()`")
                )
        return sites
