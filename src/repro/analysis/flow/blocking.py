"""F1 ``loop-blocking``: blocking primitives reachable from the event loop.

The allocation daemon is a single asyncio process; one synchronous
``os.fsync`` on the event loop stalls *every* connection and shard.  The
service survives because blocking I/O is confined to a small set of
deliberate choke points (the WAL group commit, the quiesced snapshot
cut, startup recovery) — each annotated in source with
``# reproflow: sync-boundary -- <reason>``.

F1 proves the confinement: starting from every ``async def`` in
``repro.service``, it walks the call graph (never descending into a
sync-boundary function) and flags any reachable call to a blocking
primitive — ``os.fsync``, ``time.sleep``, ``subprocess``, ``open``, or
``write``/``flush`` on a file handle — with the path that reaches it.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.core import Finding, Project
from repro.analysis.flow.base import FlowAnalysis, register_flow_analysis
from repro.analysis.flow.graph import FILE_HANDLE, CallGraph

__all__ = ["BLOCKING_CALLS", "FILE_BLOCKING_METHODS", "LoopBlockingAnalysis"]

#: External call targets that block the calling thread.
BLOCKING_CALLS = frozenset(
    {
        "os.fsync",
        "os.fdatasync",
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.create_connection",
        "open",
        "io.open",
        "os.fdopen",
        "tempfile.NamedTemporaryFile",
        "tempfile.mkstemp",
    }
)

#: Methods on a file handle that perform blocking I/O.
FILE_BLOCKING_METHODS = frozenset({"write", "writelines", "flush"})


@register_flow_analysis
class LoopBlockingAnalysis(FlowAnalysis):
    id = "F1"
    name = "loop-blocking"
    description = (
        "blocking I/O primitives reachable from async service functions "
        "outside annotated sync boundaries"
    )

    #: Package prefix whose ``async def`` functions root the search.
    ASYNC_ROOT_PACKAGE = "repro/service"

    def run(self, project: Project, graph: CallGraph) -> Iterable[Finding]:
        roots = sorted(
            info.qualname
            for info in graph.functions.values()
            if info.is_async
            and info.module.in_package(self.ASYNC_ROOT_PACKAGE)
            and info.sync_boundary is None
        )
        # BFS with a parent map so every finding can show one example
        # path from an async root to the blocking call.
        parent: Dict[str, Optional[str]] = {}
        queue: "deque[str]" = deque()
        for root in roots:
            if root not in parent:
                parent[root] = None
                queue.append(root)
        while queue:
            current = queue.popleft()
            for edge in graph.outgoing(current):
                if not edge.internal or edge.callee in parent:
                    continue
                callee_info = graph.functions.get(edge.callee)
                if callee_info is not None and callee_info.sync_boundary is not None:
                    continue  # sanctioned choke point: do not descend
                parent[edge.callee] = current
                queue.append(edge.callee)

        seen_sites: Set[Tuple[str, int, int]] = set()
        for qualname in sorted(parent):
            info = graph.functions.get(qualname)
            if info is None:
                continue
            for edge in graph.outgoing(qualname):
                if edge.internal or not self._is_blocking(edge.callee):
                    continue
                site = (info.module.path, edge.node.lineno, edge.node.col_offset)
                if site in seen_sites:
                    continue
                seen_sites.add(site)
                chain = self._chain(parent, qualname)
                yield self.finding(
                    info.module,
                    edge.node,
                    f"blocking call `{self._label(edge.callee)}` runs on the "
                    f"event loop via {' -> '.join(chain)}; route it through "
                    "asyncio.to_thread or annotate the containing function "
                    "with `# reproflow: sync-boundary -- <reason>`",
                )

    @staticmethod
    def _is_blocking(target: str) -> bool:
        if target in BLOCKING_CALLS:
            return True
        prefix = FILE_HANDLE + "."
        return target.startswith(prefix) and target[len(prefix) :] in FILE_BLOCKING_METHODS

    @staticmethod
    def _label(target: str) -> str:
        prefix = FILE_HANDLE + "."
        if target.startswith(prefix):
            return f"<file>.{target[len(prefix):]}"
        return target

    @staticmethod
    def _chain(parent: Dict[str, Optional[str]], qualname: str) -> List[str]:
        chain = [qualname]
        current = qualname
        while True:
            upstream = parent.get(current)
            if upstream is None:
                break
            chain.append(upstream)
            current = upstream
        chain.reverse()
        return chain
