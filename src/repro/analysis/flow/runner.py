"""Driver for the reproflow interprocedural analyses.

Mirrors :mod:`repro.analysis.runner` one level up: build a
:class:`Project`, build the shared :class:`CallGraph` once, run every
registered :class:`FlowAnalysis` over it, honour inline
``# reprolint: disable=F…`` pragmas, and report.  The CLI integration
(``python -m repro.analysis --flow``) lives in the top-level runner;
this module is the library surface the tests use.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.core import Finding, ModuleSource, Project, Severity
from repro.analysis.flow.base import FlowAnalysis, all_flow_analyses
from repro.analysis.flow.graph import CallGraph

__all__ = [
    "DEFAULT_FLOW_BASELINE_NAME",
    "FlowReport",
    "analyze_flow_paths",
    "analyze_flow_project",
    "analyze_flow_sources",
    "load_default_docs",
]

#: Committed baseline for flow findings (kept separate from the
#: per-module reprolint baseline so the two lanes gate independently).
DEFAULT_FLOW_BASELINE_NAME = "reproflow-baseline.json"

#: Documents the flow runner feeds to doc-aware analyses (F5) when they
#: exist relative to the working directory.
DEFAULT_DOC_PATHS: Tuple[str, ...] = ("docs/SERVICE.md",)


@dataclass
class FlowReport:
    """Outcome of one whole-program analysis run."""

    #: Findings that survived pragma suppression, in stable order.
    findings: List[Finding]
    #: Per-analysis-id count of pragma-suppressed findings.
    suppressed: Dict[str, int] = field(default_factory=dict)
    #: The shared call graph (exposed for tests and tooling).
    graph: Optional[CallGraph] = None


def load_default_docs(root: str = ".") -> Dict[str, str]:
    """Read the default doc set (missing files are simply absent)."""
    docs: Dict[str, str] = {}
    for rel in DEFAULT_DOC_PATHS:
        full = os.path.join(root, rel)
        if os.path.isfile(full):
            with open(full, "r", encoding="utf-8") as handle:
                docs[rel] = handle.read()
    return docs


def analyze_flow_project(
    project: Project,
    analyses: Optional[Iterable[FlowAnalysis]] = None,
    docs: Optional[Dict[str, str]] = None,
) -> FlowReport:
    """Run flow analyses over ``project``, honouring inline pragmas."""
    active = tuple(analyses) if analyses is not None else all_flow_analyses()
    findings: List[Finding] = []
    suppressed: Dict[str, int] = {analysis.id: 0 for analysis in active}
    for module in project:
        if module.parse_error is not None:
            err = module.parse_error
            findings.append(
                Finding(
                    path=module.path,
                    line=err.lineno or 1,
                    col=(err.offset or 1) - 1,
                    rule="R0",
                    name="parse-error",
                    severity=Severity.ERROR,
                    message=f"could not parse: {err.msg}",
                )
            )
    graph = CallGraph.build(project)
    if docs:
        graph.docs.update(docs)
    by_path: Dict[str, ModuleSource] = {m.path: m for m in project}
    for analysis in active:
        for finding in analysis.run(project, graph):
            module = by_path.get(finding.path)
            if module is not None and module.suppressed(
                finding.line, finding.rule, finding.name
            ):
                suppressed[analysis.id] += 1
            else:
                findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return FlowReport(findings=findings, suppressed=suppressed, graph=graph)


def analyze_flow_paths(
    paths: Sequence[str],
    analyses: Optional[Iterable[FlowAnalysis]] = None,
    docs: Optional[Dict[str, str]] = None,
) -> FlowReport:
    """Walk files/directories and run the flow analyses over them."""
    from repro.analysis.runner import collect_modules

    project = collect_modules(paths)
    if docs is None:
        docs = load_default_docs()
    return analyze_flow_project(project, analyses=analyses, docs=docs)


def analyze_flow_sources(
    sources: Sequence[Tuple[str, str]],
    analyses: Optional[Iterable[FlowAnalysis]] = None,
    docs: Optional[Dict[str, str]] = None,
) -> List[Finding]:
    """Analyze in-memory ``(virtual_path, text)`` pairs (test fixtures)."""
    project = Project(ModuleSource(path=path, text=text) for path, text in sources)
    return analyze_flow_project(project, analyses=analyses, docs=docs or {}).findings
