"""F4 ``untyped-escape``: storage faults must map to typed wire errors.

The wire contract in ``SERVICE.md`` promises that storage trouble
surfaces to clients as *typed* error responses (``storage_unavailable``
with a ``retry_after`` hint), never as a dropped connection or a generic
``internal`` error.  The promise is easy to break: a new call path from
a server handler into :mod:`repro.checkpoint` can raise
``CheckpointError``/``JournalCorruptError`` straight through the
handler, and nothing in the local rules notices.

F4 computes, for every function, the set of monitored exception *raise
sites* that can escape it — propagating through internal call edges and
absorbing at ``try``/``except`` blocks whose handler names the
monitored class (or a monitored ancestor).  A broad ``except
Exception``/bare ``except`` does **not** absorb: routing a storage
fault through the generic internal-error path is exactly the drift this
analysis exists to catch.  A handler whose body contains a bare
``raise`` re-raises, so it does not absorb either.  Any monitored raise
site that escapes a server *handler root* is flagged at the raise site.

Handler roots are the connection callbacks: ``async def`` functions in
``repro.service.server`` that are passed **by reference** as a call
argument somewhere in that module (``asyncio.start_server(
self._handle_connection, ...)``).  Lifecycle functions such as
``run_daemon`` are deliberately not roots — a recovery failure at
startup is fail-fast by design and never reaches a client connection.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import Finding, ModuleSource, Project
from repro.analysis.flow.base import FlowAnalysis, register_flow_analysis
from repro.analysis.flow.graph import CallGraph, FunctionInfo

__all__ = ["UntypedEscapeAnalysis"]


@dataclass(frozen=True, order=True)
class _RaiseSite:
    """One ``raise`` of a monitored exception class."""

    exc: str
    path: str
    line: int
    col: int


@dataclass(frozen=True)
class _Guard:
    """One ``except`` clause an event is lexically inside."""

    #: Resolved handler class qualnames (empty for a bare ``except``).
    types: Tuple[str, ...]
    #: Bare ``except:`` / ``except BaseException`` — catches at runtime
    #: but is not a *typed* mapping.
    catch_all: bool
    #: Handler body contains a bare ``raise`` — the exception continues.
    reraises: bool


@register_flow_analysis
class UntypedEscapeAnalysis(FlowAnalysis):
    id = "F4"
    name = "untyped-escape"
    description = (
        "StorageUnavailable/CheckpointError raise sites that escape "
        "server handlers without a typed wire error mapping"
    )

    #: Exception classes whose escape into the transport breaks the
    #: wire contract.
    MONITORED = frozenset(
        {
            "repro.service.shards.StorageUnavailable",
            "repro.checkpoint.CheckpointError",
            "repro.checkpoint.JournalCorruptError",
        }
    )
    #: Declared subclass -> parent, for handler matching.
    HIERARCHY: Dict[str, str] = {
        "repro.checkpoint.JournalCorruptError": "repro.checkpoint.CheckpointError",
    }
    #: Module whose parentless async functions are the handler roots.
    SERVER_MODULE = "repro.service.server"

    MAX_ROUNDS = 30

    def run(self, project: Project, graph: CallGraph) -> Iterable[Finding]:
        escapes = self._solve(graph)
        modules: Dict[str, ModuleSource] = {m.path: m for m in project}
        reported: Set[_RaiseSite] = set()
        for root in self._handler_roots(graph):
            for site in sorted(escapes.get(root, frozenset())):
                if site in reported:
                    continue
                reported.add(site)
                module = modules.get(site.path)
                if module is None:  # pragma: no cover - sites come from project
                    continue
                short = site.exc.rsplit(".", 1)[-1]
                yield self.finding(
                    module,
                    site.line,
                    f"`{short}` raised here can escape server handler "
                    f"`{root}` untyped; map it to a typed wire error "
                    "(error_response with a stable code) before the "
                    "transport sees it",
                )

    def _handler_roots(self, graph: CallGraph) -> List[str]:
        """Async functions in the server module registered as callbacks.

        A function reference passed as a call argument (not called) in
        the server module marks a transport entry point — exceptions
        escaping it hit the socket, not a caller.
        """
        prefix = self.SERVER_MODULE + "."
        server_async = {
            qualname: info
            for qualname, info in graph.functions.items()
            if info.is_async and qualname.startswith(prefix)
        }
        referenced: Set[str] = set()
        for info in server_async.values():
            assert info.module.tree is not None
            for node in ast.walk(info.module.tree):
                if not isinstance(node, ast.Call):
                    continue
                for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                    if isinstance(arg, ast.Attribute):
                        referenced.add(arg.attr)
                    elif isinstance(arg, ast.Name):
                        referenced.add(arg.id)
            break  # one walk of the server module covers every function
        return sorted(
            qualname
            for qualname, info in server_async.items()
            if info.name in referenced
        )

    # -- interprocedural escape summaries --------------------------------------

    def _solve(self, graph: CallGraph) -> Dict[str, FrozenSet[_RaiseSite]]:
        order = sorted(graph.functions)
        summaries: Dict[str, FrozenSet[_RaiseSite]] = {q: frozenset() for q in order}
        events = {q: self._events(graph, graph.functions[q]) for q in order}
        for _ in range(self.MAX_ROUNDS):
            changed = False
            for qualname in order:
                escaping: Set[_RaiseSite] = set()
                for node, guards, payload in events[qualname]:
                    if isinstance(payload, _RaiseSite):
                        candidates: FrozenSet[_RaiseSite] = frozenset({payload})
                    else:
                        candidates = summaries.get(payload, frozenset())
                    for site in candidates:
                        if not self._absorbed(site.exc, guards):
                            escaping.add(site)
                frozen = frozenset(escaping)
                if frozen != summaries[qualname]:
                    summaries[qualname] = frozen
                    changed = True
            if not changed:
                break
        return summaries

    def _events(
        self, graph: CallGraph, info: FunctionInfo
    ) -> List[Tuple[ast.AST, Tuple[_Guard, ...], object]]:
        """Raise/call events in ``info`` with their enclosing guards.

        ``payload`` is a :class:`_RaiseSite` for raise statements and the
        callee qualname (``str``) for internal call edges.
        """
        events: List[Tuple[ast.AST, Tuple[_Guard, ...], object]] = []

        def visit(stmts: Sequence[ast.stmt], guards: Tuple[_Guard, ...]) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    continue  # nested scope: its own summary covers it
                if isinstance(stmt, ast.Raise):
                    site = self._raise_site(graph, info, stmt)
                    if site is not None:
                        events.append((stmt, guards, site))
                for call in self._calls_in_stmt(stmt):
                    edge = graph.edge_for_call(info.qualname, call)
                    if edge is not None and edge.internal:
                        events.append((call, guards, edge.callee))
                if isinstance(stmt, ast.Try):
                    inner = guards + tuple(
                        self._guard(graph, info.module, h) for h in stmt.handlers
                    )
                    # Only the try body is protected by the handlers;
                    # handler bodies, else and finally propagate freely.
                    visit(stmt.body, inner)
                    for handler in stmt.handlers:
                        visit(handler.body, guards)
                    visit(stmt.orelse, guards)
                    visit(stmt.finalbody, guards)
                else:
                    for block in self._blocks(stmt):
                        visit(block, guards)

        visit(list(info.node.body), ())
        return events

    @staticmethod
    def _blocks(stmt: ast.stmt) -> Iterator[List[ast.stmt]]:
        for field in ("body", "orelse", "finalbody"):
            block = getattr(stmt, field, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                yield block
        cases = getattr(stmt, "cases", None)
        if isinstance(cases, list):  # match statements
            for case in cases:
                body = getattr(case, "body", None)
                if isinstance(body, list):
                    yield body

    @staticmethod
    def _calls_in_stmt(stmt: ast.stmt) -> Iterator[ast.Call]:
        """Call nodes in the statement's own expressions (not sub-blocks)."""
        own_exprs: List[ast.AST] = []
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, (ast.expr, ast.withitem)):
                own_exprs.append(child)
        stack: List[ast.AST] = list(own_exprs)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, ast.Call):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    def _raise_site(
        self, graph: CallGraph, info: FunctionInfo, stmt: ast.Raise
    ) -> Optional[_RaiseSite]:
        exc = stmt.exc
        if exc is None:
            return None  # bare re-raise: handled via guard.reraises
        target: ast.AST = exc.func if isinstance(exc, ast.Call) else exc
        resolved = graph.resolve_in_module(info.module, target)
        if resolved is None or resolved not in self.MONITORED:
            return None
        return _RaiseSite(
            exc=resolved,
            path=info.module.path,
            line=stmt.lineno,
            col=stmt.col_offset,
        )

    def _guard(
        self, graph: CallGraph, module: ModuleSource, handler: ast.ExceptHandler
    ) -> _Guard:
        types: List[str] = []
        catch_all = handler.type is None
        handler_types: List[ast.expr] = []
        if isinstance(handler.type, ast.Tuple):
            handler_types = list(handler.type.elts)
        elif handler.type is not None:
            handler_types = [handler.type]
        for expr in handler_types:
            resolved = graph.resolve_in_module(module, expr)
            if resolved is not None:
                types.append(resolved)
        reraises = any(
            isinstance(node, ast.Raise) and node.exc is None
            for node in ast.walk(handler)
        )
        return _Guard(types=tuple(types), catch_all=catch_all, reraises=reraises)

    def _absorbed(self, exc: str, guards: Tuple[_Guard, ...]) -> bool:
        """True when some enclosing handler gives ``exc`` a typed catch."""
        lineage = {exc}
        current = exc
        while current in self.HIERARCHY:
            current = self.HIERARCHY[current]
            lineage.add(current)
        for guard in guards:
            if guard.reraises:
                continue
            if any(t in lineage for t in guard.types):
                return True
        return False
