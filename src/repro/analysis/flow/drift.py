"""F5 ``protocol-drift``: one wire-op vocabulary across every surface.

The op names live in four places that can silently diverge:

1. ``repro.service.protocol.REQUEST_OPS`` — the authoritative set,
   assembled from constants in :mod:`repro.service.shards`;
2. the server dispatch (``op == "..."`` comparisons in
   ``repro.service.server``) — admin and batch ops must be dispatched
   explicitly (mutating ops ride the submit fallthrough);
3. the client SDKs — every class in ``repro.service.client`` that
   builds ``{"op": ...}`` request payloads should offer a typed helper
   for every op;
4. the ``docs/SERVICE.md`` *Wire protocol* table.

F5 folds the module-level constants (cross-module, through imported
names and tuple concatenation), harvests comparisons/payload literals,
parses the doc table when the runner supplied it, and flags any
asymmetric difference.  No dynamic information is used — everything is
literal/constant-foldable by design, which is itself part of the
contract this analysis protects.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.analysis.core import Finding, ModuleSource, Project
from repro.analysis.flow.base import FlowAnalysis, register_flow_analysis
from repro.analysis.flow.graph import CallGraph, module_dotted_name

__all__ = ["ProtocolDriftAnalysis"]

_Folded = Union[str, Tuple[str, ...]]

_DOC_ROW_RE = re.compile(r"^\|\s*`(?P<op>[a-z_]+)`\s*\|")


@register_flow_analysis
class ProtocolDriftAnalysis(FlowAnalysis):
    id = "F5"
    name = "protocol-drift"
    description = (
        "wire op vocabulary drift between protocol constants, server "
        "dispatch, client SDK helpers, and SERVICE.md"
    )

    #: Module holding the authoritative op set.
    PROTOCOL_MODULE = "repro.service.protocol"
    #: Name of the authoritative constant inside it.
    REQUEST_OPS_NAME = "REQUEST_OPS"
    #: Admin-op constant: these (plus the batch op) must be dispatched
    #: explicitly by the server; mutating ops use the submit fallthrough.
    ADMIN_OPS_NAME = "ADMIN_OPS"
    BATCH_OP = "allocate_batch"
    SERVER_MODULE = "repro.service.server"
    CLIENT_MODULE = "repro.service.client"
    #: Doc (key into ``graph.docs``) and the section holding the table.
    DOC_PATH = "docs/SERVICE.md"
    DOC_SECTION = "## Wire protocol"

    def run(self, project: Project, graph: CallGraph) -> Iterable[Finding]:
        folder = _ConstantFolder(project, graph)
        anchor = folder.assignment(self.PROTOCOL_MODULE, self.REQUEST_OPS_NAME)
        if anchor is None:
            return  # project does not contain the protocol module
        protocol_module, anchor_node = anchor
        request_ops = self._as_ops(
            folder.fold(self.PROTOCOL_MODULE, self.REQUEST_OPS_NAME)
        )
        if request_ops is None:
            yield self.finding(
                protocol_module,
                anchor_node,
                f"`{self.REQUEST_OPS_NAME}` is not constant-foldable to a "
                "tuple of string literals; the wire vocabulary must stay "
                "statically enumerable",
            )
            return
        admin_ops = self._as_ops(
            folder.fold(self.PROTOCOL_MODULE, self.ADMIN_OPS_NAME)
        ) or set()

        yield from self._check_server(graph, request_ops, admin_ops)
        yield from self._check_clients(graph, folder, request_ops)
        yield from self._check_docs(graph, protocol_module, anchor_node, request_ops)

    @staticmethod
    def _as_ops(folded: Optional[_Folded]) -> Optional[Set[str]]:
        if isinstance(folded, tuple) and all(isinstance(x, str) for x in folded):
            return set(folded)
        return None

    # -- server dispatch --------------------------------------------------------

    def _check_server(
        self, graph: CallGraph, request_ops: Set[str], admin_ops: Set[str]
    ) -> Iterable[Finding]:
        module = _module_by_dotted(graph, self.SERVER_MODULE)
        if module is None:
            return
        compared: Dict[str, ast.AST] = {}
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            exprs = [node.left, *node.comparators]
            if not any(self._mentions_op(e) for e in exprs):
                continue
            for expr in exprs:
                if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
                    compared.setdefault(expr.value, expr)
        for op, node in sorted(compared.items()):
            if op not in request_ops:
                yield self.finding(
                    module,
                    node,
                    f"server dispatch compares against op `{op}` which is "
                    f"not in {self.PROTOCOL_MODULE}.{self.REQUEST_OPS_NAME}",
                )
        must_dispatch = (admin_ops | {self.BATCH_OP}) & request_ops
        for op in sorted(must_dispatch - set(compared)):
            yield self.finding(
                module,
                1,
                f"server dispatch never handles op `{op}` (admin/batch ops "
                "need an explicit branch; only mutating ops may ride the "
                "submit fallthrough)",
            )

    @staticmethod
    def _mentions_op(expr: ast.AST) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id == "op":
                return True
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and node.value == "op"
            ):
                return True
        return False

    # -- client SDK surfaces ----------------------------------------------------

    def _check_clients(
        self, graph: CallGraph, folder: "_ConstantFolder", request_ops: Set[str]
    ) -> Iterable[Finding]:
        prefix = self.CLIENT_MODULE + "."
        for cls_qualname in sorted(graph.classes):
            if not cls_qualname.startswith(prefix):
                continue
            cls = graph.classes[cls_qualname]
            ops: Dict[str, ast.AST] = {}
            for method in cls.methods.values():
                for node in graph._own_body_walk(method.node):
                    if not isinstance(node, ast.Dict):
                        continue
                    for key, value in zip(node.keys, node.values):
                        if (
                            isinstance(key, ast.Constant)
                            and key.value == "op"
                        ):
                            literal = folder.fold_expr(method.module, value)
                            if isinstance(literal, str):
                                ops.setdefault(literal, value)
            if not ops:
                continue  # not a request-building SDK surface
            short = cls_qualname.rsplit(".", 1)[-1]
            for op, node in sorted(ops.items()):
                if op not in request_ops:
                    yield self.finding(
                        cls.module,
                        node,
                        f"client `{short}` sends op `{op}` which is not in "
                        f"{self.PROTOCOL_MODULE}.{self.REQUEST_OPS_NAME}",
                    )
            for op in sorted(request_ops - set(ops)):
                yield self.finding(
                    cls.module,
                    cls.node,
                    f"client `{short}` offers no helper for wire op `{op}`; "
                    "every op in REQUEST_OPS needs a typed SDK entry point",
                )

    # -- documentation ----------------------------------------------------------

    def _check_docs(
        self,
        graph: CallGraph,
        protocol_module: ModuleSource,
        anchor: ast.AST,
        request_ops: Set[str],
    ) -> Iterable[Finding]:
        text = graph.docs.get(self.DOC_PATH)
        if text is None:
            return  # doc not supplied (e.g. scanning a bare source tree)
        doc_ops = self._doc_ops(text)
        for op in sorted(request_ops - doc_ops):
            yield self.finding(
                protocol_module,
                anchor,
                f"wire op `{op}` is missing from the {self.DOC_PATH} "
                f"`{self.DOC_SECTION[3:]}` table",
            )
        for op in sorted(doc_ops - request_ops):
            yield self.finding(
                protocol_module,
                anchor,
                f"{self.DOC_PATH} documents wire op `{op}` which is not in "
                f"{self.REQUEST_OPS_NAME}",
            )

    def _doc_ops(self, text: str) -> Set[str]:
        ops: Set[str] = set()
        in_section = False
        for line in text.splitlines():
            if line.startswith("## "):
                in_section = line.strip() == self.DOC_SECTION
                continue
            if not in_section:
                continue
            match = _DOC_ROW_RE.match(line.strip())
            if match is not None:
                ops.add(match.group("op"))
        return ops


def _module_by_dotted(graph: CallGraph, dotted: str) -> Optional[ModuleSource]:
    ctx = graph._contexts.get(dotted)
    return ctx.module if ctx is not None else None


class _ConstantFolder:
    """Cross-module folding of string/tuple module-level constants."""

    def __init__(self, project: Optional[Project], graph: CallGraph) -> None:
        self.graph = graph
        #: module dotted name -> {top-level name -> value expression}.
        self._assigns: Dict[str, Dict[str, Tuple[ModuleSource, ast.expr]]] = {}
        modules: Iterable[ModuleSource]
        if project is not None:
            modules = [m for m in project if m.tree is not None]
        else:
            modules = [ctx.module for ctx in graph._contexts.values()]
        for module in modules:
            dotted = module_dotted_name(module.package_path)
            table: Dict[str, Tuple[ModuleSource, ast.expr]] = {}
            assert module.tree is not None
            for stmt in module.tree.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                ):
                    table[stmt.targets[0].id] = (module, stmt.value)
                elif (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.value is not None
                ):
                    table[stmt.target.id] = (module, stmt.value)
            self._assigns[dotted] = table

    def assignment(
        self, module_dotted: str, name: str
    ) -> Optional[Tuple[ModuleSource, ast.expr]]:
        return self._assigns.get(module_dotted, {}).get(name)

    def fold(
        self, module_dotted: str, name: str, _seen: Optional[Set[str]] = None
    ) -> Optional[_Folded]:
        seen = _seen if _seen is not None else set()
        key = f"{module_dotted}.{name}"
        if key in seen:
            return None  # cycle
        seen.add(key)
        entry = self.assignment(module_dotted, name)
        if entry is None:
            return None
        module, expr = entry
        return self.fold_expr(module, expr, seen)

    def fold_expr(
        self,
        module: ModuleSource,
        expr: ast.expr,
        _seen: Optional[Set[str]] = None,
    ) -> Optional[_Folded]:
        seen = _seen if _seen is not None else set()
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return expr.value
        if isinstance(expr, (ast.Tuple, ast.List)):
            parts: List[str] = []
            for element in expr.elts:
                folded = self.fold_expr(module, element, seen)
                if not isinstance(folded, str):
                    return None
                parts.append(folded)
            return tuple(parts)
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
            left = self.fold_expr(module, expr.left, seen)
            right = self.fold_expr(module, expr.right, seen)
            if isinstance(left, tuple) and isinstance(right, tuple):
                return left + right
            if isinstance(left, str) and isinstance(right, str):
                return left + right
            return None
        if isinstance(expr, (ast.Name, ast.Attribute)):
            resolved = self.graph.resolve_in_module(module, expr)
            if resolved is None:
                # A plain top-level name in the same module.
                if isinstance(expr, ast.Name):
                    dotted = module_dotted_name(module.package_path)
                    return self.fold(dotted, expr.id, seen)
                return None
            owner, _, name = resolved.rpartition(".")
            if owner in self._assigns:
                return self.fold(owner, name, seen)
            return None
        return None
