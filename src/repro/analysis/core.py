"""Core model of the ``reprolint`` static-analysis framework.

The repo's reproducibility story (bit-identical parallel grids,
digest-verified resume, golden traces) rests on whole-repo coding
invariants — no wall-clock reads in the simulation, no global RNG,
paired ``state_dict``/``load_state``, atomic artifact writes.  This
module defines the vocabulary every rule speaks:

``Finding``
    One violation: file, line, column, rule id, severity, message.
``Rule``
    Base class; concrete rules register themselves with
    :func:`register_rule` and implement :meth:`Rule.check`.
``ModuleSource`` / ``Project``
    A parsed source file (with its suppression pragmas) and the set of
    files being analyzed together (cross-file rules such as the
    CLI/config drift check need the whole project).

Suppression uses inline pragmas::

    risky_call()  # reprolint: disable=R4  # reason for the exemption

``disable=`` accepts a comma-separated list of rule ids (``R4``), rule
names (``raw-artifact-write``), or ``all``.  A trailing pragma
suppresses findings reported on its own line; a pragma on a
standalone comment line also covers the line below it (for statements
too long to carry the comment).  Everything else belongs in the
committed baseline file (see :mod:`repro.analysis.baseline`).

The framework is deliberately stdlib-only so the lint lane needs no
third-party installs beyond the interpreter.
"""

from __future__ import annotations

import abc
import ast
import re
from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Finding",
    "ModuleSource",
    "Project",
    "Rule",
    "Severity",
    "all_rules",
    "format_pragma",
    "get_rule",
    "parse_pragma",
    "register_rule",
]


class Severity(str, Enum):
    """How bad a finding is; both levels gate the lint lane."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """A single rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule: str
    name: str
    severity: Severity
    message: str

    @property
    def fingerprint(self) -> str:
        """Stable identity used for baseline matching."""
        return f"{self.path}:{self.rule}:{self.line}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "name": self.name,
            "severity": self.severity.value,
            "message": self.message,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule}[{self.name}] {self.severity.value}: {self.message}"
        )

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


# -- pragmas ---------------------------------------------------------------------------

#: Matches ``# reprolint: disable=R1,raw-artifact-write`` anywhere in a line.
PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*disable=(?P<rules>[A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
)

#: Token that suppresses every rule on the line.
ALL_RULES = "all"


def parse_pragma(line: str) -> Optional[FrozenSet[str]]:
    """Extract the suppressed rule tokens from one source line.

    Returns ``None`` when the line carries no pragma, otherwise the
    (lower-cased) set of rule ids/names.  ``disable=all`` yields the
    special token :data:`ALL_RULES`.
    """
    match = PRAGMA_RE.search(line)
    if match is None:
        return None
    tokens = {tok.strip().lower() for tok in match.group("rules").split(",")}
    return frozenset(tok for tok in tokens if tok)


def format_pragma(rules: Sequence[str]) -> str:
    """Render a pragma comment suppressing ``rules`` (inverse of parse)."""
    if not rules:
        raise ValueError("cannot format a pragma with no rules")
    return "# reprolint: disable=" + ",".join(rules)


# -- source model ----------------------------------------------------------------------


class ModuleSource:
    """One parsed Python file plus its suppression pragmas.

    ``path`` is how the file is reported; ``package_path`` is the
    import-root-relative path rules scope on (``repro/sim/engine.py``
    regardless of whether the tree was scanned as ``src/repro/...``).
    """

    def __init__(self, path: str, text: str, package_path: Optional[str] = None) -> None:
        self.path = path.replace("\\", "/")
        self.text = text
        self.package_path = (package_path or _strip_source_root(self.path)).replace("\\", "/")
        self.lines: List[str] = text.splitlines()
        self.parse_error: Optional[SyntaxError] = None
        try:
            self.tree: Optional[ast.Module] = ast.parse(text, filename=self.path)
        except SyntaxError as exc:
            self.tree = None
            self.parse_error = exc
        self._disabled: Dict[int, FrozenSet[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            tokens = parse_pragma(line)
            if tokens is None:
                continue
            self._disabled[lineno] = self._disabled.get(lineno, frozenset()) | tokens
            if line.lstrip().startswith("#"):
                # A standalone comment-line pragma also covers the next line.
                self._disabled[lineno + 1] = self._disabled.get(lineno + 1, frozenset()) | tokens

    def suppressed(self, line: int, rule_id: str, rule_name: str) -> bool:
        """True when a pragma on ``line`` disables the given rule."""
        tokens = self._disabled.get(line)
        if tokens is None:
            return False
        return ALL_RULES in tokens or rule_id.lower() in tokens or rule_name.lower() in tokens

    def in_package(self, *prefixes: str) -> bool:
        """True when this module lives under any of the package prefixes."""
        return any(
            self.package_path == p or self.package_path.startswith(p.rstrip("/") + "/")
            for p in prefixes
        )

    def __repr__(self) -> str:
        return f"ModuleSource({self.path!r})"


def _strip_source_root(path: str) -> str:
    """Drop everything up to and including a ``src/`` component."""
    parts = path.split("/")
    for i, part in enumerate(parts):
        if part == "src" and i + 1 < len(parts):
            return "/".join(parts[i + 1 :])
    return path


class Project:
    """The set of modules analyzed together (enables cross-file rules)."""

    def __init__(self, modules: Iterable[ModuleSource]) -> None:
        self.modules: List[ModuleSource] = list(modules)
        self._by_package: Dict[str, ModuleSource] = {m.package_path: m for m in self.modules}

    def get(self, package_path: str) -> Optional[ModuleSource]:
        return self._by_package.get(package_path)

    def __iter__(self) -> Iterator[ModuleSource]:
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)


# -- rules -----------------------------------------------------------------------------


class Rule(abc.ABC):
    """Base class for reprolint rules.

    Subclasses set the class attributes and yield :class:`Finding`
    objects from :meth:`check`.  Rules must be deterministic and
    side-effect free: same tree in, same findings out.
    """

    #: Short stable identifier (``R1`` ... ``R8``); used in pragmas and baselines.
    id: str = ""
    #: Human-readable kebab-case name, also accepted in pragmas.
    name: str = ""
    severity: Severity = Severity.ERROR
    #: One-line description shown by ``--list-rules`` and the docs.
    description: str = ""

    @abc.abstractmethod
    def check(self, module: ModuleSource, project: Project) -> Iterable[Finding]:
        """Yield findings for one module (``project`` gives cross-file context)."""

    def finding(
        self,
        module: ModuleSource,
        node: Union[ast.AST, int],
        message: str,
    ) -> Finding:
        """Build a finding anchored at ``node`` (or a bare line number)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        return Finding(
            path=module.path,
            line=line,
            col=col,
            rule=self.id,
            name=self.name,
            severity=self.severity,
            message=message,
        )


_REGISTRY: Dict[str, Rule] = {}


def register_rule(cls: type) -> type:
    """Class decorator: instantiate and register a :class:`Rule`."""
    if not issubclass(cls, Rule):
        raise TypeError(f"{cls!r} is not a Rule subclass")
    instance = cls()
    if not instance.id or not instance.name:
        raise ValueError(f"{cls.__name__} must define non-empty id and name")
    for existing in _REGISTRY.values():
        if existing.id == instance.id or existing.name == instance.name:
            raise ValueError(
                f"duplicate rule registration: {instance.id}/{instance.name} "
                f"collides with {existing.id}/{existing.name}"
            )
    _REGISTRY[instance.id] = instance
    return cls


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, ordered by id (R1, R2, ...)."""
    _ensure_builtin_rules()
    return tuple(sorted(_REGISTRY.values(), key=lambda r: (len(r.id), r.id)))


def get_rule(token: str) -> Optional[Rule]:
    """Look a rule up by id or name (case-insensitive)."""
    _ensure_builtin_rules()
    token = token.lower()
    for rule in _REGISTRY.values():
        if rule.id.lower() == token or rule.name.lower() == token:
            return rule
    return None


def _ensure_builtin_rules() -> None:
    """Import the rule modules so their ``register_rule`` calls run."""
    from repro.analysis import rules as _rules  # noqa: F401  (import registers)
