"""Committed-baseline support: adopt legacy findings, gate new ones.

A baseline file freezes the findings that existed when a rule was
introduced so the lint lane can fail on *new* violations immediately
while the backlog is burned down.  The workflow:

1. ``python -m repro.analysis src --write-baseline`` records today's
   findings into ``reprolint-baseline.json``.
2. CI and tier-1 run ``python -m repro.analysis src`` — any finding not
   in the baseline fails the build.
3. Fix commits shrink the baseline (stale entries are reported so the
   file never rots); the goal state, enforced by the acceptance tests,
   is an **empty** baseline.

Entries match on ``(path, rule, line)``.  The file is written
atomically (tmp + fsync + rename) for the same reason the checkpoint
layer does it: a torn baseline must never gate a merge.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence

from repro.analysis.core import Finding

__all__ = [
    "Baseline",
    "BaselineDiff",
    "DEFAULT_BASELINE_NAME",
    "diff_against_baseline",
    "load_baseline",
    "write_baseline",
]

DEFAULT_BASELINE_NAME = "reprolint-baseline.json"

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class Baseline:
    """Previously-adopted findings, keyed by fingerprint."""

    fingerprints: FrozenSet[str]
    entries: Sequence[Dict[str, object]]

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(fingerprints=frozenset(), entries=())


@dataclass(frozen=True)
class BaselineDiff:
    """Current findings split against a baseline."""

    new: List[Finding]
    adopted: List[Finding]
    stale: List[str]


def load_baseline(path: str) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    if not os.path.exists(path):
        return Baseline.empty()
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or doc.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"{path}: not a reprolint baseline (expected version {_FORMAT_VERSION})"
        )
    entries = doc.get("findings", [])
    fingerprints = frozenset(
        f"{entry['path']}:{entry['rule']}:{entry['line']}" for entry in entries
    )
    return Baseline(fingerprints=fingerprints, entries=tuple(entries))


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Atomically persist ``findings`` as the new baseline."""
    doc = {
        "version": _FORMAT_VERSION,
        "tool": "reprolint",
        "findings": [
            {
                "path": f.path,
                "rule": f.rule,
                "line": f.line,
                "message": f.message,
            }
            for f in sorted(findings, key=Finding.sort_key)
        ],
    }
    _write_text_atomic(path, json.dumps(doc, indent=2, sort_keys=True) + "\n")


def diff_against_baseline(findings: Sequence[Finding], baseline: Baseline) -> BaselineDiff:
    """Split findings into new vs adopted; report baseline entries gone stale."""
    new: List[Finding] = []
    adopted: List[Finding] = []
    seen: set = set()
    for finding in sorted(findings, key=Finding.sort_key):
        seen.add(finding.fingerprint)
        (adopted if finding.fingerprint in baseline.fingerprints else new).append(finding)
    stale = sorted(fp for fp in baseline.fingerprints if fp not in seen)
    return BaselineDiff(new=new, adopted=adopted, stale=stale)


def _write_text_atomic(path: str, text: str) -> None:
    """Minimal tmp+fsync+rename writer (keeps the analysis package stdlib-only)."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(prefix=".reprolint-", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise
