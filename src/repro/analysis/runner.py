"""reprolint driver: collect sources, run rules, report, gate on baseline.

Library entry points (used by the pytest integration and the fixture
tests):

* :func:`analyze_paths` — walk files/directories and return findings;
* :func:`analyze_sources` — analyze in-memory ``(path, text)`` pairs
  (fixtures assign virtual ``repro/...`` paths to exercise scoping);
* :func:`main` — the ``python -m repro.analysis`` CLI.

Exit codes: 0 clean (or fully baseline-adopted), 1 new findings or
unparseable sources, 2 usage errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    diff_against_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.core import (
    Finding,
    ModuleSource,
    Project,
    Rule,
    Severity,
    all_rules,
    get_rule,
)

__all__ = [
    "LintReport",
    "analyze_paths",
    "analyze_project",
    "analyze_project_report",
    "analyze_sources",
    "build_parser",
    "collect_modules",
    "main",
]

#: Directory names never descended into.
SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})


def collect_modules(paths: Sequence[str]) -> Project:
    """Build a :class:`Project` from files and directories."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames if d not in SKIP_DIRS)
                files.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames)
                    if name.endswith(".py")
                )
        elif path.endswith(".py"):
            files.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    modules = []
    for file_path in files:
        with open(file_path, "r", encoding="utf-8") as handle:
            text = handle.read()
        rel = os.path.relpath(file_path)
        modules.append(ModuleSource(path=rel, text=text))
    return Project(modules)


@dataclass
class LintReport:
    """Findings that survived pragmas plus what the pragmas ate."""

    findings: List[Finding]
    #: rule id -> count of findings suppressed by inline pragmas.
    suppressed: Dict[str, int] = field(default_factory=dict)


def analyze_project_report(
    project: Project, rules: Optional[Iterable[Rule]] = None
) -> LintReport:
    """Run every rule over every module, honouring inline pragmas."""
    active = tuple(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    suppressed: Dict[str, int] = {rule.id: 0 for rule in active}
    for module in project:
        if module.parse_error is not None:
            err = module.parse_error
            findings.append(
                Finding(
                    path=module.path,
                    line=err.lineno or 1,
                    col=(err.offset or 1) - 1,
                    rule="R0",
                    name="parse-error",
                    severity=Severity.ERROR,
                    message=f"could not parse: {err.msg}",
                )
            )
            continue
        for rule in active:
            for finding in rule.check(module, project):
                if module.suppressed(finding.line, finding.rule, finding.name):
                    suppressed[finding.rule] = suppressed.get(finding.rule, 0) + 1
                else:
                    findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return LintReport(findings=findings, suppressed=suppressed)


def analyze_project(project: Project, rules: Optional[Iterable[Rule]] = None) -> List[Finding]:
    """Back-compat wrapper over :func:`analyze_project_report`."""
    return analyze_project_report(project, rules=rules).findings


def analyze_paths(paths: Sequence[str], rules: Optional[Iterable[Rule]] = None) -> List[Finding]:
    return analyze_project(collect_modules(paths), rules=rules)


def analyze_sources(
    sources: Sequence[Tuple[str, str]], rules: Optional[Iterable[Rule]] = None
) -> List[Finding]:
    """Analyze in-memory ``(virtual_path, text)`` pairs (test fixtures)."""
    return analyze_project(
        Project(ModuleSource(path=path, text=text) for path, text in sources),
        rules=rules,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "reprolint: AST-based determinism & crash-safety checks for this repo "
            "(rule catalog in docs/ANALYSIS.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=f"baseline of adopted findings (default: {DEFAULT_BASELINE_NAME}, "
        "or reproflow-baseline.json with --flow; a missing file means an "
        "empty baseline)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="adopt the current findings into --baseline and exit 0",
    )
    parser.add_argument(
        "--rule",
        "--select",
        action="append",
        metavar="RULE",
        default=None,
        help="run only this rule/analysis id or name (repeatable; unknown "
        "ids exit 2)",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help="run the whole-program reproflow analyses (F1..) instead of "
        "the per-module rules",
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        default=None,
        help="also write the findings as a SARIF 2.1.0 report to FILE",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable report")
    parser.add_argument("--list-rules", action="store_true", help="print the rule catalog")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.analysis.flow.base import FlowAnalysis, all_flow_analyses, get_flow_analysis
    from repro.analysis.flow.runner import DEFAULT_FLOW_BASELINE_NAME, analyze_flow_paths

    args = build_parser().parse_args(argv)
    if args.baseline is None:
        args.baseline = (
            DEFAULT_FLOW_BASELINE_NAME if args.flow else DEFAULT_BASELINE_NAME
        )
    if args.list_rules:
        catalog = all_flow_analyses() if args.flow else all_rules()
        for entry in catalog:
            print(
                f"{entry.id:<4} {entry.name:<22} {entry.severity.value:<8} "
                f"{entry.description}"
            )
        return 0

    tool_name = "reproflow" if args.flow else "reprolint"
    suppressed: Dict[str, int] = {}
    if args.flow:
        analyses: Optional[List[FlowAnalysis]] = None
        if args.rule:
            analyses = []
            for token in args.rule:
                analysis = get_flow_analysis(token)
                if analysis is None:
                    print(
                        f"unknown flow analysis: {token!r} (see --flow --list-rules)",
                        file=sys.stderr,
                    )
                    return 2
                analyses.append(analysis)
        try:
            flow_report = analyze_flow_paths(args.paths, analyses=analyses)
        except FileNotFoundError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        findings = flow_report.findings
        suppressed = flow_report.suppressed
        descriptions = {a.id: a.description for a in (analyses or all_flow_analyses())}
    else:
        rules: Optional[List[Rule]] = None
        if args.rule:
            rules = []
            for token in args.rule:
                rule = get_rule(token)
                if rule is None:
                    print(f"unknown rule: {token!r} (see --list-rules)", file=sys.stderr)
                    return 2
                rules.append(rule)
        try:
            report = analyze_project_report(collect_modules(args.paths), rules=rules)
        except FileNotFoundError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        findings = report.findings
        suppressed = report.suppressed
        descriptions = {r.id: r.description for r in (rules or all_rules())}

    if args.sarif:
        from repro.analysis.sarif import write_sarif

        write_sarif(
            args.sarif, findings, tool_name=tool_name, rule_descriptions=descriptions
        )

    if args.write_baseline:
        write_baseline(args.baseline, findings)
        print(f"adopted {len(findings)} finding(s) into {args.baseline}")
        return 0

    baseline = load_baseline(args.baseline)
    diff = diff_against_baseline(findings, baseline)

    if args.json:
        print(
            json.dumps(
                {
                    "findings": [f.to_dict() for f in findings],
                    "new": [f.to_dict() for f in diff.new],
                    "adopted": [f.to_dict() for f in diff.adopted],
                    "stale_baseline": diff.stale,
                    "suppressed": suppressed,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for finding in diff.new:
            print(finding.render())
        if diff.adopted:
            print(f"[{tool_name}] {len(diff.adopted)} baseline-adopted finding(s) not shown")
        for fingerprint in diff.stale:
            print(
                f"[{tool_name}] stale baseline entry (fixed? regenerate with "
                f"--write-baseline): {fingerprint}"
            )
        summary = (
            f"[{tool_name}] {len(diff.new)} new finding(s) across "
            f"{len({f.path for f in diff.new})} file(s)"
            if diff.new
            else f"[{tool_name}] clean"
        )
        print(summary)

    return 1 if diff.new else 0
