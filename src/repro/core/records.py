"""Significance-weighted resource records of completed tasks.

Both bucketing algorithms operate on "a list of resource records of
completed tasks" (Section IV-A): one scalar peak-consumption value per
completed task, tagged with a *significance* weight.  More recent records
get larger significance so that, when a workflow changes phase, fresh
records dominate the bucket probabilities.  The paper sets the
significance of a record to the submitting task's ID (Section V-A); the
:class:`~repro.core.allocator.TaskOrientedAllocator` follows that default
and lets callers override it.

:class:`RecordList` keeps records sorted by value and exposes the numpy
views (values, significances, and their prefix sums) that the cost
kernels in :mod:`repro.core.cost` need for O(1) per-candidate expected
waste evaluation.

Storage is *array-backed*: three preallocated, amortized-doubling numpy
buffers (values, significances, task ids) plus two prefix-sum buffers
maintained **incrementally** — an insertion shifts only the suffix at or
after the insertion point and adds the new record's contribution to the
shifted prefix entries, so the simulator's update→predict alternation
costs one vectorized suffix shift instead of the full Python-object walk
the seed implementation paid per completed task (kept as
:class:`repro.core.records_legacy.LegacyRecordList` for the equivalence
tests and the perf baseline in ``benchmarks/perf/``).

A ``capacity`` bound turns the list into a *bounded record store*
(required once record counts reach 10^6+ — see docs/PERFORMANCE.md)
with a choice of compaction policy:

* ``"evict_min"`` — evict the single lowest-significance record per
  over-capacity append (the original sliding-window behaviour);
* ``"decay"`` — significance-decay compaction: let the list exceed
  capacity by one, then drop the lowest-significance ``slack``
  fraction in one vectorized batch, amortizing eviction cost;
* ``"reservoir"`` — deterministic (seeded) reservoir downsampling:
  once full, each arriving record replaces a uniformly drawn retained
  record with probability ``capacity / seen``, otherwise it is
  dropped — an unbiased sample of the whole stream.

The AWE impact of each policy is *measured*, not assumed: see the
capacity ablation in :mod:`repro.experiments.ablation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

#: Initial buffer capacity; buffers double whenever they fill.
_MIN_BUFFER = 32

#: Recognized compaction policies for capacity-bounded lists.
COMPACTION_POLICIES = ("evict_min", "decay", "reservoir")

#: Fraction of capacity cleared per ``"decay"`` compaction batch.
DECAY_SLACK = 0.1

#: Sentinel reported by :attr:`RecordList.last_eviction` when a batch
#: compaction ran (individual victims not enumerated).
BATCH_EVICTION = "batch"


@dataclass(frozen=True, order=True)
class ResourceRecord:
    """One completed task's peak consumption of a single resource.

    Ordering is by ``value`` (then significance, then task id) so records
    sort the way bucket construction needs them.

    Attributes
    ----------
    value:
        The task's observed peak consumption of the resource.
    significance:
        Recency/importance weight; larger means the record contributes
        more to bucket probabilities and estimates (Section IV-A).
    task_id:
        The submitting task's ID, for traceability (not used by the
        algorithms beyond the default ``significance = task_id`` rule).
    """

    value: float
    significance: float = 1.0
    task_id: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.value < 0 or self.value != self.value:
            raise ValueError(f"invalid record value: {self.value}")
        if self.significance <= 0 or self.significance != self.significance:
            raise ValueError(
                f"record significance must be positive, got {self.significance}"
            )


class RecordList:
    """A list of :class:`ResourceRecord` kept sorted by value.

    Records live in preallocated numpy buffers; an append finds its slot
    with ``np.searchsorted`` (value first, significance as the
    tie-breaker, insertion after equal keys — exactly the order the seed
    implementation's ``bisect.insort`` produced) and shifts only the
    suffix.  The significance prefix sums are maintained incrementally
    alongside, so the views below never require a full rebuild; they are
    materialized as read-only snapshot arrays once per mutation and
    cached until the next mutation (a burst of completions followed by
    one allocation request costs one snapshot — the update batching the
    paper describes in Section V-C).

    A ``capacity`` bound turns the list into a *bounded record store*:
    when full, appending compacts the list according to ``compaction``
    (see the module docstring).  The paper keeps all records; the bound
    exists for the million-record scaling work (docs/PERFORMANCE.md) and
    the >10k-task scaling study (E-X1 in DESIGN.md).
    """

    __slots__ = (
        "_capacity",
        "_compaction",
        "_rng",
        "_seen",
        "_last_eviction",
        "_n",
        "_values_buf",
        "_sigs_buf",
        "_tids_buf",
        "_sp_buf",
        "_svp_buf",
        "_values",
        "_sigs",
        "_sig_prefix",
        "_sigval_prefix",
    )

    def __init__(
        self,
        records: Iterable[ResourceRecord] = (),
        capacity: Optional[int] = None,
        compaction: str = "evict_min",
        seed: int = 0,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if compaction not in COMPACTION_POLICIES:
            raise ValueError(
                f"unknown compaction policy {compaction!r}; "
                f"expected one of {COMPACTION_POLICIES}"
            )
        self._capacity = capacity
        self._compaction = compaction
        self._rng = (
            np.random.default_rng(seed)
            if compaction == "reservoir" and capacity is not None
            else None
        )
        self._seen = 0
        self._last_eviction: object = None
        items = list(records)
        n = len(items)
        size = max(_MIN_BUFFER, n)
        self._values_buf = np.empty(size, dtype=np.float64)
        self._sigs_buf = np.empty(size, dtype=np.float64)
        self._tids_buf = np.empty(size, dtype=np.int64)
        self._sp_buf = np.empty(size, dtype=np.float64)
        self._svp_buf = np.empty(size, dtype=np.float64)
        self._n = 0
        self._invalidate()
        if self._rng is not None:
            # Reservoir semantics depend on arrival order: replay the
            # stream record by record through the sampling filter.
            for record in items:
                self.add(record.value, record.significance, record.task_id)
            return
        self._n = n
        if n:
            values = np.fromiter((r.value for r in items), np.float64, count=n)
            sigs = np.fromiter((r.significance for r in items), np.float64, count=n)
            tids = np.fromiter((r.task_id for r in items), np.int64, count=n)
            # Stable lexicographic sort by (value, significance) matches
            # sorted() on the dataclass ordering (task_id is compare=False).
            order = np.lexsort((sigs, values))
            self._values_buf[:n] = values[order]
            self._sigs_buf[:n] = sigs[order]
            self._tids_buf[:n] = tids[order]
            self._rebuild_prefixes()
        self._seen = n
        if capacity is not None and self._n > capacity:
            self._evict_to_capacity(capacity)
        self._invalidate()

    @classmethod
    def from_arrays(
        cls,
        values: np.ndarray,
        significances: Optional[np.ndarray] = None,
        task_ids: Optional[np.ndarray] = None,
        capacity: Optional[int] = None,
        compaction: str = "evict_min",
        seed: int = 0,
    ) -> "RecordList":
        """Bulk-ingest whole arrays in one vectorized sort.

        The streaming :meth:`add` path pays an O(n) suffix shift per
        record, which is the right trade for the simulator's one-at-a-
        time arrivals but makes *bulk* construction of a million-record
        list quadratic.  This constructor validates, sorts (stable
        ``lexsort`` on (value, significance), matching sequential
        insertion order for equal keys) and builds the prefix sums with
        one ``cumsum`` each — O(n log n) total.

        The prefix sums are rebuilt from scratch rather than maintained
        incrementally, so they can differ from a streaming build by
        float rounding (the views agree to tolerance, the record order
        exactly).  With ``compaction="reservoir"`` the stream order
        matters and the records are replayed through :meth:`add`.
        """
        values = np.ascontiguousarray(values, dtype=np.float64)
        n = values.size
        sigs = (
            np.ones(n, dtype=np.float64)
            if significances is None
            else np.ascontiguousarray(significances, dtype=np.float64)
        )
        tids = (
            np.full(n, -1, dtype=np.int64)
            if task_ids is None
            else np.ascontiguousarray(task_ids, dtype=np.int64)
        )
        if sigs.size != n or tids.size != n:
            raise ValueError("values, significances and task_ids must align")
        if n and (not np.all(np.isfinite(values)) or bool(np.any(values < 0))):
            raise ValueError("record values must be finite and non-negative")
        if n and (not np.all(np.isfinite(sigs)) or bool(np.any(sigs <= 0))):
            raise ValueError("record significances must be finite and positive")
        if compaction == "reservoir" and capacity is not None:
            new = cls(capacity=capacity, compaction=compaction, seed=seed)
            for i in range(n):
                new.add(float(values[i]), float(sigs[i]), int(tids[i]))
            return new
        new = cls(capacity=capacity, compaction=compaction, seed=seed)
        size = max(_MIN_BUFFER, n)
        if new._values_buf.size < size:
            new._grow_to(size)
        order = np.lexsort((sigs, values))
        new._values_buf[:n] = values[order]
        new._sigs_buf[:n] = sigs[order]
        new._tids_buf[:n] = tids[order]
        new._n = n
        new._seen = n
        new._rebuild_prefixes()
        if capacity is not None and n > capacity:
            new._evict_to_capacity(capacity)
        new._invalidate()
        return new

    # -- mutation ------------------------------------------------------------

    def append(self, record: ResourceRecord) -> Optional[int]:
        """Insert a record, keeping value order; compact if over capacity."""
        return self.add(record.value, record.significance, record.task_id)

    def add(
        self, value: float, significance: float = 1.0, task_id: int = -1
    ) -> Optional[int]:
        """Validate and append a record (the simulator's hot path).

        Returns the record's index in the sorted list after any
        compaction, or ``None`` when the record was not retained (the
        reservoir filter rejected it, or eviction removed it again).
        The eviction that accompanied the insert, if any, is reported by
        :attr:`last_eviction` — together they let incremental partition
        engines track the store without rescanning it.
        """
        if value < 0 or value != value:
            raise ValueError(f"invalid record value: {value}")
        if significance <= 0 or significance != significance:
            raise ValueError(
                f"record significance must be positive, got {significance}"
            )
        self._last_eviction = None
        self._seen += 1
        if (
            self._rng is not None
            and self._capacity is not None
            and self._n >= self._capacity
        ):
            # Reservoir downsampling (algorithm R): keep the arrival
            # with probability capacity / seen, replacing a uniformly
            # drawn retained record; otherwise drop it.  Seeded, so the
            # retained sample is a pure function of the stream.
            j = int(self._rng.integers(0, self._seen))
            if j >= self._capacity:
                self._invalidate()
                return None
            self._remove_at(j)
            pos = self._insert(float(value), float(significance), int(task_id))
            self._invalidate()
            return pos
        ins = self._insert(float(value), float(significance), int(task_id))
        pos: Optional[int] = ins
        if self._capacity is not None and self._n > self._capacity:
            target = self._capacity
            if self._compaction == "decay":
                # Significance-decay compaction: clear a slack fraction
                # in one vectorized batch so eviction cost amortizes to
                # one sort per slack*capacity inserts.
                target = max(1, self._capacity - int(self._capacity * DECAY_SLACK))
            victim = self._evict_to_capacity(target)
            if victim is None:
                # Batch compaction shifted an unknown set of indices;
                # callers resync via last_eviction == BATCH_EVICTION.
                pos = None
            elif victim == ins:
                pos = None
            elif victim < ins:
                pos = ins - 1
        self._invalidate()
        return pos

    def extend(self, records: Iterable[ResourceRecord]) -> None:
        if self._rng is not None and self._capacity is not None:
            for record in records:
                self.add(record.value, record.significance, record.task_id)
            return
        self._last_eviction = None
        for record in records:
            self._insert(record.value, record.significance, record.task_id)
            self._seen += 1
        if self._capacity is not None and self._n > self._capacity:
            self._evict_to_capacity(self._capacity)
        self._invalidate()

    def _insert(self, value: float, significance: float, task_id: int) -> int:
        n = self._n
        if n == self._values_buf.size:
            self._grow()
        values = self._values_buf
        sigs = self._sigs_buf
        # Position: after every record with a smaller (value, significance)
        # key and after equal keys — bisect.insort's resting place for the
        # seed's (value, significance)-ordered dataclass.
        lo = int(np.searchsorted(values[:n], value, side="left"))
        hi = int(np.searchsorted(values[:n], value, side="right"))
        if lo < hi:
            pos = lo + int(np.searchsorted(sigs[lo:hi], significance, side="right"))
        else:
            pos = lo
        sp = self._sp_buf
        svp = self._svp_buf
        tids = self._tids_buf
        if pos < n:
            # Overlapping slice assignments are safe: numpy buffers them.
            values[pos + 1 : n + 1] = values[pos:n]
            sigs[pos + 1 : n + 1] = sigs[pos:n]
            tids[pos + 1 : n + 1] = tids[pos:n]
            sp[pos + 1 : n + 1] = sp[pos:n]
            svp[pos + 1 : n + 1] = svp[pos:n]
        values[pos] = value
        sigs[pos] = significance
        tids[pos] = task_id
        sigval = significance * value
        base_sp = sp[pos - 1] if pos > 0 else 0.0
        base_svp = svp[pos - 1] if pos > 0 else 0.0
        sp[pos] = base_sp + significance
        svp[pos] = base_svp + sigval
        if pos < n:
            sp[pos + 1 : n + 1] += significance
            svp[pos + 1 : n + 1] += sigval
        self._n = n + 1
        return pos

    def _grow(self) -> None:
        self._grow_to(max(_MIN_BUFFER, 2 * self._values_buf.size))

    def _grow_to(self, size: int) -> None:
        for name in ("_values_buf", "_sigs_buf", "_tids_buf", "_sp_buf", "_svp_buf"):
            old = getattr(self, name)
            if old.size >= size:
                continue
            grown = np.empty(size, dtype=old.dtype)
            grown[: self._n] = old[: self._n]
            setattr(self, name, grown)

    def _evict_one(self) -> int:
        """Evict the single lowest-significance record; return its index.

        The steady state of a full ``evict_min`` window: one O(n) argmin
        instead of an O(n log n) sort per append.  Ties break on the
        lowest index, matching the seed's stable sort.
        """
        n = self._n
        victim = int(np.argmin(self._sigs_buf[:n]))
        self._last_eviction = (victim, float(self._values_buf[victim]))
        for name in ("_values_buf", "_sigs_buf", "_tids_buf"):
            buf = getattr(self, name)
            buf[victim : n - 1] = buf[victim + 1 : n]
        self._n = n - 1
        self._rebuild_prefixes()
        return victim

    def _remove_at(self, index: int) -> None:
        """Remove the record at sorted ``index`` (reservoir replacement)."""
        n = self._n
        self._last_eviction = (index, float(self._values_buf[index]))
        for name in ("_values_buf", "_sigs_buf", "_tids_buf"):
            buf = getattr(self, name)
            buf[index : n - 1] = buf[index + 1 : n]
        self._n = n - 1
        self._rebuild_prefixes()

    def _evict_to_capacity(self, target: int) -> Optional[int]:
        """Compact down to ``target`` records; lowest significance goes first.

        Evicted records are the oldest under the paper's significance =
        task-ID convention.  Over by one delegates to the argmin fast
        path and returns the victim's index; over by more runs a single
        vectorized batch eviction (one stable argsort + one boolean-mask
        compress per buffer) and returns ``None``, reporting
        :data:`BATCH_EVICTION` through :attr:`last_eviction`.
        """
        n = self._n
        excess = n - target
        if excess <= 0:
            return None
        if excess == 1:
            return self._evict_one()
        sigs = self._sigs_buf[:n]
        keep = np.ones(n, dtype=bool)
        keep[np.argsort(sigs, kind="stable")[:excess]] = False
        m = n - excess
        for name in ("_values_buf", "_sigs_buf", "_tids_buf"):
            buf = getattr(self, name)
            buf[:m] = buf[:n][keep]
        self._n = m
        self._last_eviction = BATCH_EVICTION
        self._rebuild_prefixes()
        return None

    def _rebuild_prefixes(self) -> None:
        n = self._n
        np.cumsum(self._sigs_buf[:n], out=self._sp_buf[:n])
        np.cumsum(self._sigs_buf[:n] * self._values_buf[:n], out=self._svp_buf[:n])

    def _invalidate(self) -> None:
        self._values = None
        self._sigs = None
        self._sig_prefix = None
        self._sigval_prefix = None

    def _snapshot_of(self, buf: np.ndarray) -> np.ndarray:
        arr = buf[: self._n].copy()
        arr.flags.writeable = False
        return arr

    # -- views ---------------------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        """Sorted record values as a read-only float64 array."""
        if self._values is None:
            self._values = self._snapshot_of(self._values_buf)
        return self._values

    @property
    def significances(self) -> np.ndarray:
        """Significances aligned with :attr:`values`."""
        if self._sigs is None:
            self._sigs = self._snapshot_of(self._sigs_buf)
        return self._sigs

    @property
    def task_ids(self) -> np.ndarray:
        """Task IDs aligned with :attr:`values` (read-only int64 array)."""
        arr = self._tids_buf[: self._n].copy()
        arr.flags.writeable = False
        return arr

    @property
    def sig_prefix(self) -> np.ndarray:
        """``sig_prefix[i]`` = sum of significances of records [0, i]."""
        if self._sig_prefix is None:
            self._sig_prefix = self._snapshot_of(self._sp_buf)
        return self._sig_prefix

    @property
    def sigval_prefix(self) -> np.ndarray:
        """``sigval_prefix[i]`` = sum of significance*value of records [0, i]."""
        if self._sigval_prefix is None:
            self._sigval_prefix = self._snapshot_of(self._svp_buf)
        return self._sigval_prefix

    # -- range queries ---------------------------------------------------------

    def sig_sum(self, lo: int, hi: int) -> float:
        """Total significance of records with indices in [lo, hi]."""
        self._check_range(lo, hi)
        sp = self._sp_buf
        return float(sp[hi] - (sp[lo - 1] if lo > 0 else 0.0))

    def weighted_mean(self, lo: int, hi: int) -> float:
        """Significance-weighted mean value over indices [lo, hi].

        This is the paper's estimator for the consumption of a task that
        falls in a bucket (the v_lo / v_hi / v_i formulas of Sections
        IV-B and IV-C).
        """
        self._check_range(lo, hi)
        sp, svp = self._sp_buf, self._svp_buf
        below_sig = sp[lo - 1] if lo > 0 else 0.0
        below_sigval = svp[lo - 1] if lo > 0 else 0.0
        total_sig = sp[hi] - below_sig
        return float((svp[hi] - below_sigval) / total_sig)

    def max_value(self, lo: int, hi: int) -> float:
        """Maximum value over indices [lo, hi] — just ``values[hi]`` since sorted."""
        self._check_range(lo, hi)
        return float(self._values_buf[hi])

    def _check_range(self, lo: int, hi: int) -> None:
        if not (0 <= lo <= hi < self._n):
            raise IndexError(
                f"record range [{lo}, {hi}] out of bounds for {self._n} records"
            )

    def values_at(self, indices: Sequence[int]) -> np.ndarray:
        """Record values at the given sorted indices.

        Unlike fancy-indexing the :attr:`values` view, this reads the
        backing buffer directly — O(len(indices)), not the O(n) snapshot
        copy — which is what keeps incremental partition maintenance
        independent of the record count (docs/PERFORMANCE.md).
        """
        return self._values_buf[: self._n][np.asarray(indices, dtype=np.intp)]

    def index_below(self, value: float) -> Optional[int]:
        """Index of the record with the largest value strictly below ``value``.

        Used by Exhaustive Bucketing's candidate-break-point mapping
        (Section IV-D, step 2): each evenly spaced candidate value is
        mapped "to the closest record that has a lower value than it".
        Returns ``None`` if every record's value is >= ``value``.
        """
        idx = int(np.searchsorted(self._values_buf[: self._n], value, side="left")) - 1
        return idx if idx >= 0 else None

    # -- container protocol ------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[ResourceRecord]:
        for i in range(self._n):
            yield ResourceRecord(
                value=float(self._values_buf[i]),
                significance=float(self._sigs_buf[i]),
                task_id=int(self._tids_buf[i]),
            )

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[ResourceRecord, List[ResourceRecord]]:
        if isinstance(index, slice):
            return [self._record_at(i) for i in range(*index.indices(self._n))]
        i = index if index >= 0 else self._n + index
        if not (0 <= i < self._n):
            raise IndexError(f"record index {index} out of range for {self._n} records")
        return self._record_at(i)

    def _record_at(self, i: int) -> ResourceRecord:
        return ResourceRecord(
            value=float(self._values_buf[i]),
            significance=float(self._sigs_buf[i]),
            task_id=int(self._tids_buf[i]),
        )

    def __bool__(self) -> bool:
        return self._n > 0

    def __repr__(self) -> str:
        if not self._n:
            return "RecordList(empty)"
        return (
            f"RecordList(n={self._n}, "
            f"min={self._values_buf[0]:g}, max={self._values_buf[self._n - 1]:g})"
        )

    # -- misc ---------------------------------------------------------------------

    @property
    def capacity(self) -> Optional[int]:
        return self._capacity

    @property
    def compaction(self) -> str:
        """The compaction policy of a capacity-bounded list."""
        return self._compaction

    @property
    def seen(self) -> int:
        """Total records ever offered, including compacted-away ones."""
        return self._seen

    @property
    def last_eviction(self) -> Union[None, Tuple[int, float], str]:
        """What the last mutation evicted, for incremental consumers.

        ``None`` (nothing evicted), ``(index, value)`` — the sorted
        index the record held when it was removed, and its value — or
        the :data:`BATCH_EVICTION` sentinel when a vectorized batch
        compaction dropped several records at once.  Transient: reset by
        the next mutation and not serialized (incremental consumers
        rebuild their caches on restore).
        """
        return self._last_eviction

    @property
    def nbytes(self) -> int:
        """Bytes held by the five preallocated buffers (footprint metric)."""
        return sum(
            getattr(self, name).nbytes
            for name in ("_values_buf", "_sigs_buf", "_tids_buf", "_sp_buf", "_svp_buf")
        )

    def total_significance(self) -> float:
        return float(self._sp_buf[self._n - 1]) if self._n else 0.0

    def snapshot(self) -> Tuple[ResourceRecord, ...]:
        """An immutable copy of the current records, in value order."""
        return tuple(self._record_at(i) for i in range(self._n))

    # -- checkpointing --------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-safe snapshot for checkpointing (see :mod:`repro.checkpoint`).

        The prefix-sum buffers are stored **verbatim**, not recomputed on
        restore: the incremental suffix-add maintenance in :meth:`_insert`
        rounds differently from ``np.cumsum``, so a recomputation would
        break the bit-identical-resume guarantee.  Python's JSON encoder
        uses ``repr`` (shortest round-trip) for floats, so every float64
        survives exactly.
        """
        from repro.checkpoint import generator_state

        n = self._n
        return {
            "capacity": self._capacity,
            "compaction": self._compaction,
            "seen": self._seen,
            "rng": None if self._rng is None else generator_state(self._rng),
            "values": self._values_buf[:n].tolist(),
            "significances": self._sigs_buf[:n].tolist(),
            "task_ids": self._tids_buf[:n].tolist(),
            "sig_prefix": self._sp_buf[:n].tolist(),
            "sigval_prefix": self._svp_buf[:n].tolist(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "RecordList":
        """Rebuild a list captured by :meth:`state_dict`, bit-exactly."""
        from repro.checkpoint import restore_generator

        values = state["values"]
        n = len(values)
        if not all(
            len(state[k]) == n
            for k in ("significances", "task_ids", "sig_prefix", "sigval_prefix")
        ):
            raise ValueError("inconsistent RecordList state: array lengths differ")
        # ``compaction``/``seen``/``rng`` default for pre-bounded-store
        # snapshots, which could only have been evict_min windows.
        new = cls(
            capacity=state["capacity"],
            compaction=state.get("compaction", "evict_min"),
        )
        new._grow_to(max(_MIN_BUFFER, n))
        new._values_buf[:n] = np.asarray(values, dtype=np.float64)
        new._sigs_buf[:n] = np.asarray(state["significances"], dtype=np.float64)
        new._tids_buf[:n] = np.asarray(state["task_ids"], dtype=np.int64)
        new._sp_buf[:n] = np.asarray(state["sig_prefix"], dtype=np.float64)
        new._svp_buf[:n] = np.asarray(state["sigval_prefix"], dtype=np.float64)
        new._n = n
        new._seen = int(state.get("seen", n))
        rng_state = state.get("rng")
        if rng_state is not None and new._rng is not None:
            restore_generator(new._rng, rng_state)
        new._invalidate()
        return new
