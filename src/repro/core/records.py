"""Significance-weighted resource records of completed tasks.

Both bucketing algorithms operate on "a list of resource records of
completed tasks" (Section IV-A): one scalar peak-consumption value per
completed task, tagged with a *significance* weight.  More recent records
get larger significance so that, when a workflow changes phase, fresh
records dominate the bucket probabilities.  The paper sets the
significance of a record to the submitting task's ID (Section V-A); the
:class:`~repro.core.allocator.TaskOrientedAllocator` follows that default
and lets callers override it.

:class:`RecordList` keeps records sorted by value and exposes the numpy
views (values, significances, and their prefix sums) that the cost
kernels in :mod:`repro.core.cost` need for O(1) per-candidate expected
waste evaluation.

Storage is *array-backed*: three preallocated, amortized-doubling numpy
buffers (values, significances, task ids) plus two prefix-sum buffers
maintained **incrementally** — an insertion shifts only the suffix at or
after the insertion point and adds the new record's contribution to the
shifted prefix entries, so the simulator's update→predict alternation
costs one vectorized suffix shift instead of the full Python-object walk
the seed implementation paid per completed task (kept as
:class:`repro.core.records_legacy.LegacyRecordList` for the equivalence
tests and the perf baseline in ``benchmarks/perf/``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

#: Initial buffer capacity; buffers double whenever they fill.
_MIN_BUFFER = 32


@dataclass(frozen=True, order=True)
class ResourceRecord:
    """One completed task's peak consumption of a single resource.

    Ordering is by ``value`` (then significance, then task id) so records
    sort the way bucket construction needs them.

    Attributes
    ----------
    value:
        The task's observed peak consumption of the resource.
    significance:
        Recency/importance weight; larger means the record contributes
        more to bucket probabilities and estimates (Section IV-A).
    task_id:
        The submitting task's ID, for traceability (not used by the
        algorithms beyond the default ``significance = task_id`` rule).
    """

    value: float
    significance: float = 1.0
    task_id: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.value < 0 or self.value != self.value:
            raise ValueError(f"invalid record value: {self.value}")
        if self.significance <= 0 or self.significance != self.significance:
            raise ValueError(
                f"record significance must be positive, got {self.significance}"
            )


class RecordList:
    """A list of :class:`ResourceRecord` kept sorted by value.

    Records live in preallocated numpy buffers; an append finds its slot
    with ``np.searchsorted`` (value first, significance as the
    tie-breaker, insertion after equal keys — exactly the order the seed
    implementation's ``bisect.insort`` produced) and shifts only the
    suffix.  The significance prefix sums are maintained incrementally
    alongside, so the views below never require a full rebuild; they are
    materialized as read-only snapshot arrays once per mutation and
    cached until the next mutation (a burst of completions followed by
    one allocation request costs one snapshot — the update batching the
    paper describes in Section V-C).

    A ``capacity`` bound turns the list into a sliding window over the
    *most significant* records: when full, appending evicts the record
    with the smallest significance.  The paper keeps all records; the
    bound exists for the >10k-task scaling study (E-X1 in DESIGN.md).
    """

    __slots__ = (
        "_capacity",
        "_n",
        "_values_buf",
        "_sigs_buf",
        "_tids_buf",
        "_sp_buf",
        "_svp_buf",
        "_values",
        "_sigs",
        "_sig_prefix",
        "_sigval_prefix",
    )

    def __init__(
        self,
        records: Iterable[ResourceRecord] = (),
        capacity: Optional[int] = None,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        items = list(records)
        n = len(items)
        size = max(_MIN_BUFFER, n)
        self._values_buf = np.empty(size, dtype=np.float64)
        self._sigs_buf = np.empty(size, dtype=np.float64)
        self._tids_buf = np.empty(size, dtype=np.int64)
        self._sp_buf = np.empty(size, dtype=np.float64)
        self._svp_buf = np.empty(size, dtype=np.float64)
        self._n = n
        if n:
            values = np.fromiter((r.value for r in items), np.float64, count=n)
            sigs = np.fromiter((r.significance for r in items), np.float64, count=n)
            tids = np.fromiter((r.task_id for r in items), np.int64, count=n)
            # Stable lexicographic sort by (value, significance) matches
            # sorted() on the dataclass ordering (task_id is compare=False).
            order = np.lexsort((sigs, values))
            self._values_buf[:n] = values[order]
            self._sigs_buf[:n] = sigs[order]
            self._tids_buf[:n] = tids[order]
            self._rebuild_prefixes()
        if capacity is not None and self._n > capacity:
            self._evict_to_capacity()
        self._invalidate()

    # -- mutation ------------------------------------------------------------

    def append(self, record: ResourceRecord) -> None:
        """Insert a record, keeping value order; evict if over capacity."""
        self._insert(record.value, record.significance, record.task_id)
        if self._capacity is not None and self._n > self._capacity:
            self._evict_to_capacity()
        self._invalidate()

    def add(self, value: float, significance: float = 1.0, task_id: int = -1) -> None:
        """Convenience: validate and append a record (the simulator's hot path)."""
        if value < 0 or value != value:
            raise ValueError(f"invalid record value: {value}")
        if significance <= 0 or significance != significance:
            raise ValueError(
                f"record significance must be positive, got {significance}"
            )
        self._insert(float(value), float(significance), int(task_id))
        if self._capacity is not None and self._n > self._capacity:
            self._evict_to_capacity()
        self._invalidate()

    def extend(self, records: Iterable[ResourceRecord]) -> None:
        for record in records:
            self._insert(record.value, record.significance, record.task_id)
        if self._capacity is not None and self._n > self._capacity:
            self._evict_to_capacity()
        self._invalidate()

    def _insert(self, value: float, significance: float, task_id: int) -> None:
        n = self._n
        if n == self._values_buf.size:
            self._grow()
        values = self._values_buf
        sigs = self._sigs_buf
        # Position: after every record with a smaller (value, significance)
        # key and after equal keys — bisect.insort's resting place for the
        # seed's (value, significance)-ordered dataclass.
        lo = int(np.searchsorted(values[:n], value, side="left"))
        hi = int(np.searchsorted(values[:n], value, side="right"))
        if lo < hi:
            pos = lo + int(np.searchsorted(sigs[lo:hi], significance, side="right"))
        else:
            pos = lo
        sp = self._sp_buf
        svp = self._svp_buf
        tids = self._tids_buf
        if pos < n:
            # Overlapping slice assignments are safe: numpy buffers them.
            values[pos + 1 : n + 1] = values[pos:n]
            sigs[pos + 1 : n + 1] = sigs[pos:n]
            tids[pos + 1 : n + 1] = tids[pos:n]
            sp[pos + 1 : n + 1] = sp[pos:n]
            svp[pos + 1 : n + 1] = svp[pos:n]
        values[pos] = value
        sigs[pos] = significance
        tids[pos] = task_id
        sigval = significance * value
        base_sp = sp[pos - 1] if pos > 0 else 0.0
        base_svp = svp[pos - 1] if pos > 0 else 0.0
        sp[pos] = base_sp + significance
        svp[pos] = base_svp + sigval
        if pos < n:
            sp[pos + 1 : n + 1] += significance
            svp[pos + 1 : n + 1] += sigval
        self._n = n + 1

    def _grow(self) -> None:
        new_size = max(_MIN_BUFFER, 2 * self._values_buf.size)
        for name in ("_values_buf", "_sigs_buf", "_tids_buf", "_sp_buf", "_svp_buf"):
            old = getattr(self, name)
            grown = np.empty(new_size, dtype=old.dtype)
            grown[: self._n] = old[: self._n]
            setattr(self, name, grown)

    def _evict_to_capacity(self) -> None:
        assert self._capacity is not None
        n = self._n
        excess = n - self._capacity
        if excess <= 0:
            return
        # Evict the lowest-significance records: they are the oldest under
        # the paper's significance = task-ID convention.  Ties break on
        # the lowest index, matching the seed's stable sort.
        sigs = self._sigs_buf[:n]
        if excess == 1:
            # Single eviction (the steady state of a full window): one
            # O(n) argmin instead of an O(n log n) sort per append.
            victim = int(np.argmin(sigs))
            for name in ("_values_buf", "_sigs_buf", "_tids_buf"):
                buf = getattr(self, name)
                buf[victim : n - 1] = buf[victim + 1 : n]
            self._n = n - 1
        else:
            drop = np.sort(np.argsort(sigs, kind="stable")[:excess])
            keep = np.setdiff1d(np.arange(n), drop, assume_unique=True)
            m = keep.size
            for name in ("_values_buf", "_sigs_buf", "_tids_buf"):
                buf = getattr(self, name)
                buf[:m] = buf[:n][keep]
            self._n = m
        self._rebuild_prefixes()

    def _rebuild_prefixes(self) -> None:
        n = self._n
        np.cumsum(self._sigs_buf[:n], out=self._sp_buf[:n])
        np.cumsum(self._sigs_buf[:n] * self._values_buf[:n], out=self._svp_buf[:n])

    def _invalidate(self) -> None:
        self._values = None
        self._sigs = None
        self._sig_prefix = None
        self._sigval_prefix = None

    def _snapshot_of(self, buf: np.ndarray) -> np.ndarray:
        arr = buf[: self._n].copy()
        arr.flags.writeable = False
        return arr

    # -- views ---------------------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        """Sorted record values as a read-only float64 array."""
        if self._values is None:
            self._values = self._snapshot_of(self._values_buf)
        return self._values

    @property
    def significances(self) -> np.ndarray:
        """Significances aligned with :attr:`values`."""
        if self._sigs is None:
            self._sigs = self._snapshot_of(self._sigs_buf)
        return self._sigs

    @property
    def task_ids(self) -> np.ndarray:
        """Task IDs aligned with :attr:`values` (read-only int64 array)."""
        arr = self._tids_buf[: self._n].copy()
        arr.flags.writeable = False
        return arr

    @property
    def sig_prefix(self) -> np.ndarray:
        """``sig_prefix[i]`` = sum of significances of records [0, i]."""
        if self._sig_prefix is None:
            self._sig_prefix = self._snapshot_of(self._sp_buf)
        return self._sig_prefix

    @property
    def sigval_prefix(self) -> np.ndarray:
        """``sigval_prefix[i]`` = sum of significance*value of records [0, i]."""
        if self._sigval_prefix is None:
            self._sigval_prefix = self._snapshot_of(self._svp_buf)
        return self._sigval_prefix

    # -- range queries ---------------------------------------------------------

    def sig_sum(self, lo: int, hi: int) -> float:
        """Total significance of records with indices in [lo, hi]."""
        self._check_range(lo, hi)
        sp = self._sp_buf
        return float(sp[hi] - (sp[lo - 1] if lo > 0 else 0.0))

    def weighted_mean(self, lo: int, hi: int) -> float:
        """Significance-weighted mean value over indices [lo, hi].

        This is the paper's estimator for the consumption of a task that
        falls in a bucket (the v_lo / v_hi / v_i formulas of Sections
        IV-B and IV-C).
        """
        self._check_range(lo, hi)
        sp, svp = self._sp_buf, self._svp_buf
        below_sig = sp[lo - 1] if lo > 0 else 0.0
        below_sigval = svp[lo - 1] if lo > 0 else 0.0
        total_sig = sp[hi] - below_sig
        return float((svp[hi] - below_sigval) / total_sig)

    def max_value(self, lo: int, hi: int) -> float:
        """Maximum value over indices [lo, hi] — just ``values[hi]`` since sorted."""
        self._check_range(lo, hi)
        return float(self._values_buf[hi])

    def _check_range(self, lo: int, hi: int) -> None:
        if not (0 <= lo <= hi < self._n):
            raise IndexError(
                f"record range [{lo}, {hi}] out of bounds for {self._n} records"
            )

    def index_below(self, value: float) -> Optional[int]:
        """Index of the record with the largest value strictly below ``value``.

        Used by Exhaustive Bucketing's candidate-break-point mapping
        (Section IV-D, step 2): each evenly spaced candidate value is
        mapped "to the closest record that has a lower value than it".
        Returns ``None`` if every record's value is >= ``value``.
        """
        idx = int(np.searchsorted(self._values_buf[: self._n], value, side="left")) - 1
        return idx if idx >= 0 else None

    # -- container protocol ------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[ResourceRecord]:
        for i in range(self._n):
            yield ResourceRecord(
                value=float(self._values_buf[i]),
                significance=float(self._sigs_buf[i]),
                task_id=int(self._tids_buf[i]),
            )

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[ResourceRecord, List[ResourceRecord]]:
        if isinstance(index, slice):
            return [self._record_at(i) for i in range(*index.indices(self._n))]
        i = index if index >= 0 else self._n + index
        if not (0 <= i < self._n):
            raise IndexError(f"record index {index} out of range for {self._n} records")
        return self._record_at(i)

    def _record_at(self, i: int) -> ResourceRecord:
        return ResourceRecord(
            value=float(self._values_buf[i]),
            significance=float(self._sigs_buf[i]),
            task_id=int(self._tids_buf[i]),
        )

    def __bool__(self) -> bool:
        return self._n > 0

    def __repr__(self) -> str:
        if not self._n:
            return "RecordList(empty)"
        return (
            f"RecordList(n={self._n}, "
            f"min={self._values_buf[0]:g}, max={self._values_buf[self._n - 1]:g})"
        )

    # -- misc ---------------------------------------------------------------------

    @property
    def capacity(self) -> Optional[int]:
        return self._capacity

    def total_significance(self) -> float:
        return float(self._sp_buf[self._n - 1]) if self._n else 0.0

    def snapshot(self) -> Tuple[ResourceRecord, ...]:
        """An immutable copy of the current records, in value order."""
        return tuple(self._record_at(i) for i in range(self._n))

    # -- checkpointing --------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-safe snapshot for checkpointing (see :mod:`repro.checkpoint`).

        The prefix-sum buffers are stored **verbatim**, not recomputed on
        restore: the incremental suffix-add maintenance in :meth:`_insert`
        rounds differently from ``np.cumsum``, so a recomputation would
        break the bit-identical-resume guarantee.  Python's JSON encoder
        uses ``repr`` (shortest round-trip) for floats, so every float64
        survives exactly.
        """
        n = self._n
        return {
            "capacity": self._capacity,
            "values": self._values_buf[:n].tolist(),
            "significances": self._sigs_buf[:n].tolist(),
            "task_ids": self._tids_buf[:n].tolist(),
            "sig_prefix": self._sp_buf[:n].tolist(),
            "sigval_prefix": self._svp_buf[:n].tolist(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "RecordList":
        """Rebuild a list captured by :meth:`state_dict`, bit-exactly."""
        values = state["values"]
        n = len(values)
        if not all(
            len(state[k]) == n
            for k in ("significances", "task_ids", "sig_prefix", "sigval_prefix")
        ):
            raise ValueError("inconsistent RecordList state: array lengths differ")
        new = cls(capacity=state["capacity"])
        size = max(_MIN_BUFFER, n)
        if new._values_buf.size < size:
            for name in ("_values_buf", "_sigs_buf", "_tids_buf", "_sp_buf", "_svp_buf"):
                old = getattr(new, name)
                setattr(new, name, np.empty(size, dtype=old.dtype))
        new._values_buf[:n] = np.asarray(values, dtype=np.float64)
        new._sigs_buf[:n] = np.asarray(state["significances"], dtype=np.float64)
        new._tids_buf[:n] = np.asarray(state["task_ids"], dtype=np.int64)
        new._sp_buf[:n] = np.asarray(state["sig_prefix"], dtype=np.float64)
        new._svp_buf[:n] = np.asarray(state["sigval_prefix"], dtype=np.float64)
        new._n = n
        new._invalidate()
        return new
