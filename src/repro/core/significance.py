"""Significance policies: how much weight a record carries.

The paper weights each record by a *significance* value so that recent
records dominate the bucket probabilities when a workflow changes
behaviour, and notes "there are many ways to set the significance value
of a task record.  In all experiments we simply set it to the task ID"
(Section V-A).  This module makes the policy pluggable:

* :class:`TaskIdSignificance` — the paper's choice: significance grows
  linearly with submission order, so a record's relative weight decays
  hyperbolically as newer tasks arrive.
* :class:`UniformSignificance` — no recency at all (the ablation E-X2
  baseline): every record weighs the same forever.
* :class:`ExponentialDecaySignificance` — geometric growth by
  ``1/decay`` per record: far more aggressive forgetting, useful for
  rapidly phasing workflows at the cost of statistical efficiency on
  stationary ones.
* :class:`WindowSignificance` — effectively a sliding window: records
  older than ``window`` submissions carry negligible weight.

Policies map a task ID to a weight; the
:class:`~repro.core.allocator.TaskOrientedAllocator` consults its
configured policy whenever ``observe`` is called without an explicit
significance.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, Type

__all__ = [
    "SignificancePolicy",
    "TaskIdSignificance",
    "UniformSignificance",
    "ExponentialDecaySignificance",
    "WindowSignificance",
    "SIGNIFICANCE_REGISTRY",
    "make_significance_policy",
]


class SignificancePolicy(abc.ABC):
    """Maps a completed task's ID to its record's significance."""

    name: str = ""

    @abc.abstractmethod
    def significance(self, task_id: int) -> float:
        """Weight for the record of the task with this submission ID.

        Must be strictly positive and non-decreasing in ``task_id`` —
        a later record may never weigh less than an earlier one, or the
        recency semantics invert.
        """

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


#: name -> policy class, for config-by-string.
SIGNIFICANCE_REGISTRY: Dict[str, Type[SignificancePolicy]] = {}


def _register(cls: Type[SignificancePolicy]) -> Type[SignificancePolicy]:
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a name")
    SIGNIFICANCE_REGISTRY[cls.name] = cls
    return cls


def make_significance_policy(name: str, **kwargs) -> SignificancePolicy:
    """Instantiate a registered significance policy by name."""
    try:
        cls = SIGNIFICANCE_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown significance policy {name!r}; "
            f"registered: {sorted(SIGNIFICANCE_REGISTRY)}"
        ) from None
    return cls(**kwargs)


@_register
class TaskIdSignificance(SignificancePolicy):
    """The paper's policy: significance = task ID (counted from 1)."""

    name = "task_id"

    def significance(self, task_id: int) -> float:
        return float(max(task_id, 0)) + 1.0


@_register
class UniformSignificance(SignificancePolicy):
    """Every record weighs the same: no recency (ablation baseline)."""

    name = "uniform"

    def significance(self, task_id: int) -> float:
        return 1.0


@_register
class ExponentialDecaySignificance(SignificancePolicy):
    """Record weight grows geometrically: weight ~ (1/decay)^task_id.

    With ``decay = 0.9``, a record ten submissions old carries ~35 % of
    the newest record's weight; the paper's linear policy would give it
    >90 %.  Weights are capped to stay finite over very long workflows
    by renormalizing the exponent base-point every ``rebase`` tasks —
    only *ratios* between records matter to the bucket probabilities.
    """

    name = "exponential_decay"

    def __init__(self, decay: float = 0.95, rebase: int = 500) -> None:
        if not (0.0 < decay < 1.0):
            raise ValueError(f"decay must be in (0, 1), got {decay}")
        if rebase < 1:
            raise ValueError(f"rebase must be >= 1, got {rebase}")
        self.decay = decay
        self.rebase = rebase
        # Growth per task, applied in log space to avoid overflow.
        self._log_growth = -math.log(decay)

    def significance(self, task_id: int) -> float:
        # Keep the exponent within float range: weights are relative, so
        # the offset only needs to be consistent within a record list's
        # lifetime; rebasing every `rebase` tasks bounds the exponent
        # while preserving the ordering and (approximately) the ratios
        # that matter — neighbours within a window of `rebase` tasks.
        exponent = min(task_id * self._log_growth, 600.0)
        return math.exp(exponent)


@_register
class WindowSignificance(SignificancePolicy):
    """Sliding-window forgetting: old records become negligible.

    Weight doubles every ``window / 10`` submissions (clamped into float
    range), so anything older than roughly one window carries < 0.1 %
    of the newest record's weight — a soft analogue of dropping records
    entirely, without mutating the record list.
    """

    name = "window"

    def __init__(self, window: int = 200) -> None:
        if window < 10:
            raise ValueError(f"window must be >= 10, got {window}")
        self.window = window
        self._log_growth = math.log(2.0) / (window / 10.0)

    def significance(self, task_id: int) -> float:
        exponent = min(task_id * self._log_growth, 600.0)
        return math.exp(exponent)
