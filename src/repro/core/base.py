"""Common interface for per-resource allocation algorithms.

Every algorithm in the paper's evaluation — the two bucketing algorithms
and the five alternatives — fits the same tiny contract, which mirrors
the two interactions of Figure 3a:

* :meth:`AllocationAlgorithm.update` — a completed task's resource
  record arrives (arrow 6 in the figure);
* :meth:`AllocationAlgorithm.predict` — the task scheduler asks for the
  allocation of a fresh task (arrows 2-3);
* :meth:`AllocationAlgorithm.predict_retry` — the scheduler asks for a
  re-allocation after a resource-exhaustion failure.

``predict``/``predict_retry`` return ``None`` when the algorithm has no
guidance; the :class:`~repro.core.allocator.TaskOrientedAllocator` then
applies the exploratory default or the doubling fallback (Section IV-A /
V-A).  One instance manages one (task category, resource) pair, which is
what makes the approach *general-purpose*: nothing but scalar consumption
records ever crosses the interface.
"""

from __future__ import annotations

import abc
from typing import ClassVar, Dict, Optional, Type

import numpy as np

from repro.checkpoint import CheckpointError, generator_state, restore_generator
from repro.core.buckets import BucketState
from repro.core.kernels import partition_stats
from repro.core.records import RecordList

__all__ = [
    "AllocationAlgorithm",
    "BucketingAlgorithm",
    "ALGORITHM_REGISTRY",
    "register_algorithm",
    "make_algorithm",
]


class AllocationAlgorithm(abc.ABC):
    """Per-(category, resource) allocation policy.

    Subclasses must set the class attribute :attr:`name` (the identifier
    used in the registry, experiment configs and result tables) and
    implement :meth:`update` and :meth:`predict`.
    """

    #: Registry/reporting identifier, e.g. ``"greedy_bucketing"``.
    name: ClassVar[str] = ""

    #: Whether the allocator should bootstrap this algorithm with the
    #: conservative exploratory allocation (1 core / 1 GB / 1 GB with
    #: doubling retries, Section V-A).  The paper's alternatives instead
    #: "allocate a whole machine" while exploring (Section V-C), so this
    #: defaults to False and the bucketing algorithms flip it.
    conservative_exploration: ClassVar[bool] = False

    #: Whether predict() is a pure function of the ingested records.
    #: True for the histogram/optimizer algorithms, letting the
    #: allocator cache one prediction per (category, state-version);
    #: False for the bucketing family, whose predictions are fresh
    #: probabilistic draws per request.
    deterministic_predictions: ClassVar[bool] = True

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng()

    # -- the contract -----------------------------------------------------------

    @abc.abstractmethod
    def update(self, value: float, significance: float = 1.0, task_id: int = -1) -> None:
        """Ingest a completed task's peak consumption of this resource."""

    @abc.abstractmethod
    def predict(self) -> Optional[float]:
        """Allocation for a fresh task, or ``None`` if no guidance yet."""

    def predict_retry(
        self, previous_allocation: float, observed_peak: float
    ) -> Optional[float]:
        """Allocation after the previous attempt exhausted its limit.

        ``observed_peak`` is the consumption observed before the kill
        (a lower bound on the task's true demand).  The default asks
        :meth:`predict` and returns that prediction only when it exceeds
        both the previous allocation and the observed peak; otherwise it
        returns ``None``, which delegates to the allocator's doubling
        fallback (Section IV-A).  Subclasses with retry structure (the
        bucketing algorithms) override this.
        """
        prediction = self.predict()
        if prediction is None:
            return None
        if prediction > max(previous_allocation, observed_peak):
            return prediction
        return None

    # -- shared conveniences ------------------------------------------------------

    @property
    @abc.abstractmethod
    def n_records(self) -> int:
        """How many completed-task records the algorithm has ingested."""

    def reset(self) -> None:
        """Forget all ingested records (used between experiment repeats)."""
        raise NotImplementedError

    # -- checkpointing ------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-safe snapshot of this instance (see :mod:`repro.checkpoint`).

        The envelope (algorithm name + RNG state) lives here; everything
        algorithm-specific comes from :meth:`_extra_state`.
        """
        return {
            "algorithm": self.name,
            "rng": generator_state(self._rng),
            "state": self._extra_state(),
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshot captured by :meth:`state_dict`, bit-exactly."""
        if state.get("algorithm") != self.name:
            raise CheckpointError(
                f"algorithm mismatch: snapshot is {state.get('algorithm')!r}, "
                f"instance is {self.name!r}"
            )
        restore_generator(self._rng, state["rng"])
        self._load_extra_state(state["state"])

    def _extra_state(self) -> dict:
        """Algorithm-specific mutable state; subclasses must override."""
        raise CheckpointError(
            f"{type(self).__name__} does not support checkpointing "
            "(no _extra_state implementation)"
        )

    def _load_extra_state(self, state: dict) -> None:
        raise CheckpointError(
            f"{type(self).__name__} does not support checkpointing "
            "(no _load_extra_state implementation)"
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(records={self.n_records})"


class BucketingAlgorithm(AllocationAlgorithm):
    """Shared machinery of Greedy and Exhaustive Bucketing.

    Maintains the sorted significance-weighted record list, rebuilds the
    bucket state *lazily* — a burst of completions with no interleaved
    allocation request triggers exactly one recomputation, the batching
    behaviour discussed with Table I (Section V-C) — and implements the
    shared prediction rules of Section IV-A on top of
    :class:`~repro.core.buckets.BucketState`.

    ``rebucket_interval`` bounds how often the (expensive) partition
    search actually runs: the break indices are recomputed from scratch
    only every k-th new record; in between, the cached partition is
    *re-anchored* onto the grown record list — each cached bucket
    boundary value is mapped back to the last record at or below it with
    one ``searchsorted``, and the bucket statistics are refreshed from
    the prefix sums (O(buckets), not O(records)).  The default k=1
    recomputes on every record, which is the paper-exact behaviour.

    Subclasses implement :meth:`compute_break_indices`, returning the
    sorted inclusive upper-end record indices of each bucket.
    """

    conservative_exploration: ClassVar[bool] = True
    deterministic_predictions: ClassVar[bool] = False

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        record_capacity: Optional[int] = None,
        rebucket_interval: int = 1,
        record_compaction: str = "evict_min",
    ) -> None:
        super().__init__(rng=rng)
        if rebucket_interval < 1:
            raise ValueError(
                f"rebucket_interval must be >= 1, got {rebucket_interval}"
            )
        self._records = RecordList(
            capacity=record_capacity, compaction=record_compaction
        )
        self._rebucket_interval = rebucket_interval
        self._state: Optional[BucketState] = None
        self._dirty = True
        self._recomputations = 0
        self._reanchors = 0
        self._updates_since_recompute = 0
        self._cached_break_values: Optional[np.ndarray] = None
        self._partition_engine = self._make_partition_engine()

    # -- subclass hooks ---------------------------------------------------------

    @abc.abstractmethod
    def compute_break_indices(self, records: RecordList) -> list:
        """Partition the record list; return sorted bucket-end indices."""

    def _make_partition_engine(self):
        """Optional incremental partition engine bound to ``self._records``.

        Subclasses return an object with ``observe(value, eviction)``,
        ``invalidate()``, ``cache_state()`` and ``restore_cache(state)``
        (see :class:`repro.core.exhaustive.IncrementalExhaustivePartition`)
        to have per-record mutations streamed into it; ``None`` (the
        default) keeps the classic recompute-from-scratch behaviour.
        The engine is re-created whenever the record list is replaced
        (:meth:`reset`, :meth:`_load_extra_state`).
        """
        return None

    @property
    def partition_engine(self):
        """The incremental partition engine, or ``None``."""
        return self._partition_engine

    # -- contract ----------------------------------------------------------------

    def update(self, value: float, significance: float = 1.0, task_id: int = -1) -> None:
        pos = self._records.add(value=value, significance=significance, task_id=task_id)
        engine = self._partition_engine
        if engine is not None:
            eviction = self._records.last_eviction
            # pos None with no eviction = the reservoir filter rejected
            # the arrival: nothing was inserted.
            inserted = None if (pos is None and eviction is None) else float(value)
            engine.observe(inserted, eviction, pos)
        self._dirty = True
        self._updates_since_recompute += 1

    def predict(self) -> Optional[float]:
        state = self.state
        if state is None:
            return None
        return state.first_allocation(self._rng)

    def predict_retry(
        self, previous_allocation: float, observed_peak: float
    ) -> Optional[float]:
        state = self.state
        if state is None:
            return None
        floor = max(previous_allocation, observed_peak)
        return state.retry_allocation(floor, self._rng)

    # -- state management -----------------------------------------------------------

    @property
    def state(self) -> Optional[BucketState]:
        """Current bucket state, recomputed on demand; None if no records.

        With the default ``rebucket_interval=1`` every new record forces
        a full partition search (paper-exact).  With a larger interval,
        intermediate states re-anchor the cached break values onto the
        grown record list, deferring the search until the k-th record.
        """
        if not self._records:
            return None
        if self._dirty or self._state is None:
            if (
                self._state is None
                or self._cached_break_values is None
                or self._updates_since_recompute >= self._rebucket_interval
            ):
                breaks = self.compute_break_indices(self._records)
                self._recomputations += 1
                self._updates_since_recompute = 0
            else:
                breaks = self._reanchor_break_indices()
                self._reanchors += 1
            # Stats are handed to the state via the precomputed fast
            # path (bit-identical to recomputation; see BucketState).
            # A partition engine that just scored this exact breaks
            # object hands back the winner's stats directly; otherwise
            # one O(buckets) pass over the prefix buffers rebuilds them.
            stats = None
            engine = self._partition_engine
            if engine is not None:
                consume = getattr(engine, "consume_stats", None)
                if consume is not None:
                    stats = consume(breaks)
            if stats is not None:
                # Engine-scored partition: breaks and stats are freshly
                # built by our own search, so the state adopts them
                # without re-validating (the trusted hot path).
                self._state = BucketState(
                    self._records, breaks, stats=stats, trusted=True
                )
            else:
                stats = partition_stats(self._records, breaks)
                self._state = BucketState(self._records, breaks, stats=stats)
            if self._rebucket_interval > 1:
                # Boundary values only feed re-anchoring, which never
                # runs at the paper-exact interval of 1 — skip the
                # buffer read on the per-decision hot path.
                self._cached_break_values = self._records.values_at(breaks)
            self._dirty = False
        return self._state

    def _reanchor_break_indices(self) -> list:
        """Map the cached bucket boundary values onto the current records.

        Each cached boundary was the maximum value of its bucket; after
        new insertions (or window evictions) the index of the last record
        at or below that value is found with one vectorized
        ``searchsorted``.  Degenerate boundaries (below every record, or
        collapsing onto the same record) drop out; the last record always
        terminates the partition.
        """
        assert self._cached_break_values is not None
        n = len(self._records)
        values = self._records._values_buf[:n]
        idx = np.searchsorted(values, self._cached_break_values, side="right") - 1
        idx = idx[idx >= 0]
        breaks: list = []
        for i in idx:
            i = int(i)
            if i >= n - 1:
                break
            if not breaks or i > breaks[-1]:
                breaks.append(i)
        breaks.append(n - 1)
        return breaks

    @property
    def records(self) -> RecordList:
        return self._records

    @property
    def n_records(self) -> int:
        return len(self._records)

    @property
    def recomputations(self) -> int:
        """How many times the full partition search actually ran."""
        return self._recomputations

    @property
    def reanchors(self) -> int:
        """How many states were built by re-anchoring the cached partition."""
        return self._reanchors

    @property
    def rebucket_interval(self) -> int:
        return self._rebucket_interval

    def reset(self) -> None:
        self._records = RecordList(
            capacity=self._records.capacity,
            compaction=self._records.compaction,
        )
        self._state = None
        self._dirty = True
        self._recomputations = 0
        self._reanchors = 0
        self._updates_since_recompute = 0
        self._cached_break_values = None
        self._partition_engine = self._make_partition_engine()

    # -- checkpointing ------------------------------------------------------------

    def _extra_state(self) -> dict:
        # The cached partition is serialized verbatim (it may be stale
        # relative to the records when `_dirty` — the lazy-recompute
        # window), and the recompute/re-anchor counters come along so a
        # restored instance takes the exact same recompute-vs-reanchor
        # decisions an uninterrupted run would.
        return {
            "records": self._records.state_dict(),
            "dirty": self._dirty,
            "recomputations": self._recomputations,
            "reanchors": self._reanchors,
            "updates_since_recompute": self._updates_since_recompute,
            "cached_break_values": (
                None
                if self._cached_break_values is None
                else self._cached_break_values.tolist()
            ),
            "bucket_state": (
                None if self._state is None else self._state.state_dict()
            ),
            # Incremental partition caches either serialize bit-exactly
            # (the greedy splice cache) or are rebuilt on load (the
            # exhaustive engine's exact counts return None here).
            "partition_cache": (
                None
                if self._partition_engine is None
                else self._partition_engine.cache_state()
            ),
        }

    def _load_extra_state(self, state: dict) -> None:
        self._records = RecordList.from_state(state["records"])
        self._partition_engine = self._make_partition_engine()
        if self._partition_engine is not None:
            cache = state.get("partition_cache")
            if cache is not None:
                self._partition_engine.restore_cache(cache)
        self._dirty = bool(state["dirty"])
        self._recomputations = int(state["recomputations"])
        self._reanchors = int(state["reanchors"])
        self._updates_since_recompute = int(state["updates_since_recompute"])
        cached = state["cached_break_values"]
        self._cached_break_values = (
            None if cached is None else np.asarray(cached, dtype=np.float64)
        )
        saved = state["bucket_state"]
        self._state = None if saved is None else BucketState.from_state(saved)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: Maps algorithm name -> class for every registered algorithm.
ALGORITHM_REGISTRY: Dict[str, Type[AllocationAlgorithm]] = {}


def register_algorithm(
    cls: Type[AllocationAlgorithm],
) -> Type[AllocationAlgorithm]:
    """Class decorator: add an algorithm to :data:`ALGORITHM_REGISTRY`."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty `name`")
    existing = ALGORITHM_REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(f"algorithm name {cls.name!r} already registered by {existing}")
    ALGORITHM_REGISTRY[cls.name] = cls
    return cls


def make_algorithm(name: str, **kwargs) -> AllocationAlgorithm:
    """Instantiate a registered algorithm by name.

    >>> from repro.core.base import make_algorithm
    >>> algo = make_algorithm("greedy_bucketing")
    >>> algo.name
    'greedy_bucketing'
    """
    try:
        cls = ALGORITHM_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; registered: {sorted(ALGORITHM_REGISTRY)}"
        ) from None
    return cls(**kwargs)
