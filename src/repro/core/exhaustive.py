"""Exhaustive Bucketing (Algorithm 2 of the paper).

Exhaustive Bucketing scores whole bucket *configurations* rather than
individual splits: for each candidate number of buckets ``k`` it builds
one configuration, computes its expected waste with the ``T[i][j]``
table of Section IV-C (:func:`repro.core.cost.exhaustive_cost`), and
keeps the cheapest configuration seen.

Enumerating all C(N, k) break-point combinations would be exponential in
the record count, so the paper replaces ``combinations(k, L)`` with the
evenly spaced candidate scheme of Section IV-D:

1. propose ``k - 1`` candidate break *values* ``v_max * i / k``,
2. map each value down to the nearest record strictly below it,
3. drop duplicate or empty mappings.

With the bucket count capped (the paper uses ``k <= 10``, observing that
real workflows rarely need more), each allocation costs one sort-order
walk plus at most ``K`` table evaluations of size <= K x K — this is why
Table I shows Exhaustive Bucketing scaling roughly linearly while Greedy
Bucketing's recursive scans blow up.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import BucketingAlgorithm, register_algorithm
from repro.core.kernels import VECTOR_KERNEL_MIN_BUCKETS, partition_waste_batch
from repro.core.records import BATCH_EVICTION, RecordList

__all__ = [
    "ExhaustiveBucketing",
    "IncrementalExhaustivePartition",
    "evenly_spaced_break_indices",
    "exhaustive_break_indices",
    "select_best_partition",
    "PAPER_MAX_BUCKETS",
]

#: The paper's cap on the bucket count (Section V-A).
PAPER_MAX_BUCKETS = 10


def evenly_spaced_break_indices(records: RecordList, k: int) -> List[int]:
    """The paper's surrogate for ``combinations(k, L)`` (Section IV-D).

    For a target of ``k`` buckets, propose candidate break values
    ``v_max * i / k`` for ``i = 1 .. k-1``, map each to the record with
    the largest value strictly below it, and deduplicate.  Returns the
    sorted inclusive bucket-end indices (always terminated by the last
    record index), which may describe fewer than ``k`` buckets when
    candidates collapse onto the same record or map below record 0.
    """
    if k < 1:
        raise ValueError(f"bucket count k must be >= 1, got {k}")
    n = len(records)
    if n == 0:
        raise ValueError("cannot compute break indices for an empty record list")
    last = n - 1
    if k == 1:
        return [last]
    values = records.values
    v_max = float(values[last])
    # All k-1 candidate values in one searchsorted: index_below(v) is
    # searchsorted(values, v, side="left") - 1, and because the
    # candidates ascend, the mapped indices are non-decreasing — keeping
    # the strictly increasing ones reproduces the one-at-a-time loop.
    candidates = v_max * np.arange(1, k, dtype=np.float64) / k
    idx = np.searchsorted(values, candidates, side="left") - 1
    idx = idx[(idx >= 0) & (idx < last)]
    if idx.size:
        keep = np.empty(idx.size, dtype=bool)
        keep[0] = True
        np.greater(idx[1:], idx[:-1], out=keep[1:])
        ends = idx[keep].tolist()
    else:
        ends = []
    ends.append(last)
    return ends


def select_best_partition(
    records: RecordList, configurations: Sequence[List[int]]
) -> List[int]:
    """Score candidate partitions and return the cheapest (Algorithm 2).

    Thin wrapper over :func:`_score_and_select`; see there for the
    scoring tiers and float-rounding contract.
    """
    return _score_and_select(records, configurations)[0]


def _score_and_select(
    records: RecordList,
    configurations: Sequence[List[int]],
    flat: Optional[List[int]] = None,
    want_stats: bool = False,
) -> Tuple[
    List[int], Optional[Tuple[List[float], List[float], List[float]]]
]:
    """Score candidate partitions; return the cheapest (Algorithm 2).

    The one scoring implementation shared by the full search and the
    incremental engine — both feed their candidate configurations
    through this function, so incremental-vs-full break-index equality
    reduces to candidate equality.  Ties favour the earliest
    configuration, i.e. fewer buckets when callers pass configurations
    in ascending ``k`` order (duplicate configurations score
    identically, so the first occurrence always wins).

    Scoring strategy is tiered on profile evidence (docs/PERFORMANCE.md),
    mirroring :func:`repro.core.kernels.partition_waste`:

    * At the paper's bucket cap (``K <= 10``) the whole pass runs as
      fused pure-Python loops over three bulk ``tolist()`` reads of the
      prefix buffers: per-bucket stats in the exact float-operation
      order of :func:`repro.core.kernels.partition_stats`, then the
      expected waste via the telescoped suffix-ratio identity (O(K) per
      configuration instead of the O(K^2) row recurrence).  At this
      size numpy dispatch overhead exceeds the arithmetic, so the
      interpreted loop wins ~2x.
    * Wide partitions (``>= VECTOR_KERNEL_MIN_BUCKETS`` buckets) switch
      to :func:`repro.core.kernels.partition_waste_batch`, one
      padded-matrix contraction scoring every configuration at once.

    Both tiers round identically *within themselves* and the tier choice
    depends only on the candidate configurations — shared by the full
    search and the incremental engine — so the selected breaks never
    depend on which caller asked.

    ``flat`` lets a caller that already holds the concatenated break
    indices skip re-flattening; ``want_stats`` additionally returns the
    winner's per-bucket ``(reps, probs, estimates)``, bit-identical to
    :func:`repro.core.kernels.partition_stats` on the winning breaks, so
    the state rebuild can skip its own prefix-buffer reads.
    """
    n = len(records)
    # Bulk-read every configuration's bucket boundaries off the prefix
    # buffers in one fancy-index + tolist per buffer: scalar numpy reads
    # (float(sp[hi]) per bucket) cost ~100 ns each in dispatch alone,
    # which at 10 configurations x 10 buckets per decision would rival
    # the scoring arithmetic itself.  The Python floats are the same
    # IEEE values either way.
    if flat is None:
        flat = [hi for breaks in configurations for hi in breaks]
    idx = np.asarray(flat, dtype=np.intp)
    widest = max(len(breaks) for breaks in configurations)
    if widest >= VECTOR_KERNEL_MIN_BUCKETS:
        s_arr = records._sp_buf[idx]
        sv_arr = records._svp_buf[idx]
        rep_arr = records._values_buf[idx]
        lengths = np.fromiter(
            (len(b) for b in configurations), dtype=np.intp, count=len(configurations)
        )
        # Segmented shift: within each configuration, bucket j's
        # "below" prefix is bucket j-1's inclusive prefix, 0 for the
        # first bucket.
        starts = np.zeros(len(configurations), dtype=np.intp)
        np.cumsum(lengths[:-1], out=starts[1:])
        prev_s = np.empty_like(s_arr)
        prev_s[1:] = s_arr[:-1]
        prev_s[starts] = 0.0
        prev_sv = np.empty_like(sv_arr)
        prev_sv[1:] = sv_arr[:-1]
        prev_sv[starts] = 0.0
        sig_arr = s_arr - prev_s
        probs_arr = sig_arr / records._sp_buf[n - 1]
        est_arr = (sv_arr - prev_sv) / sig_arr
        np.minimum(est_arr, rep_arr, out=est_arr)
        costs = partition_waste_batch(rep_arr, probs_arr, est_arr, lengths)
        best = int(np.argmin(costs))  # argmin keeps the first of any tie
        if not want_stats:
            return configurations[best], None
        lo = int(starts[best])
        hi = lo + len(configurations[best])
        # Elementwise numpy ops produce the same IEEE doubles as the
        # scalar partition_stats loop.
        return configurations[best], (
            rep_arr[lo:hi].tolist(),
            probs_arr[lo:hi].tolist(),
            est_arr[lo:hi].tolist(),
        )

    sig_at = records._sp_buf[idx].tolist()
    sigval_at = records._svp_buf[idx].tolist()
    rep_at = records._values_buf[idx].tolist()
    total_sig = float(records._sp_buf[n - 1])

    best_cost = float("inf")
    best_breaks: Optional[List[int]] = None
    best_pos = 0
    pos = 0
    for breaks in configurations:
        end = pos + len(breaks)
        # Single descending pass, no intermediate lists.  Stats fall out
        # of the per-bucket prefix differences in partition_stats'
        # operation order; the waste follows from the telescoped
        # identity of kernels.partition_waste_vector rearranged into
        # three accumulable sums:
        #
        #   cost = S * (A + D(0) * S - B)
        #
        # with S = sum p_i, A = sum p_i ws0_i / sfx_i,
        # D(i) = sum_{j >= i} p_j r_j / sfx_j (so the exclusive prefix
        # C_i = D(0) - D(i)), B = sum p_i D(i), ws0_i = sfx_pr_i -
        # est_i * sfx_i — everything a right-to-left running total.
        # This loop was the profiled floor of the incremental decision
        # at n = 10^6; fusing it saves ~340 list appends per decision.
        acc = 0.0
        acc_pr = 0.0
        a_sum = 0.0
        b_sum = 0.0
        d_sum = 0.0
        for j in range(end - 1, pos, -1):
            s_prev = sig_at[j - 1]
            sig = sig_at[j] - s_prev
            rep = rep_at[j]
            est = (sigval_at[j] - sigval_at[j - 1]) / sig
            if est > rep:
                est = rep
            p = sig / total_sig
            acc += p
            pr = p * rep
            acc_pr += pr
            a_sum += p * ((acc_pr - est * acc) / acc)
            d_sum += pr / acc
            b_sum += p * d_sum
        # First bucket: its "below" prefix is zero.
        sig = sig_at[pos]
        rep = rep_at[pos]
        est = sigval_at[pos] / sig
        if est > rep:
            est = rep
        p = sig / total_sig
        acc += p
        pr = p * rep
        acc_pr += pr
        a_sum += p * ((acc_pr - est * acc) / acc)
        d_sum += pr / acc
        b_sum += p * d_sum
        cost = acc * (a_sum + d_sum * acc - b_sum)
        if cost < best_cost:
            best_cost = cost
            best_breaks = breaks
            best_pos = pos
        pos = end
    assert best_breaks is not None  # callers always pass >= 1 configuration
    if not want_stats:
        return best_breaks, None
    # Winner stats, ascending, in partition_stats' exact operation
    # order (same input floats, same expressions — bit-identical).
    reps_w: List[float] = []
    probs_w: List[float] = []
    est_w: List[float] = []
    below_sig = 0.0
    below_sigval = 0.0
    for j in range(best_pos, best_pos + len(best_breaks)):
        s = sig_at[j]
        sv = sigval_at[j]
        sig = s - below_sig
        rep = rep_at[j]
        est = (sv - below_sigval) / sig
        if est > rep:
            est = rep
        reps_w.append(rep)
        probs_w.append(sig / total_sig)
        est_w.append(est)
        below_sig = s
        below_sigval = sv
    return best_breaks, (reps_w, probs_w, est_w)


def exhaustive_break_indices(
    records: RecordList, max_buckets: int = PAPER_MAX_BUCKETS
) -> List[int]:
    """Choose the cheapest evenly spaced configuration (Algorithm 2).

    Evaluates one configuration per candidate bucket count
    ``k = 1 .. max_buckets`` and returns the break indices minimizing the
    expected waste ``W_B``.  Ties favour fewer buckets (the single-bucket
    configuration is evaluated first).
    """
    if max_buckets < 1:
        raise ValueError(f"max_buckets must be >= 1, got {max_buckets}")
    return select_best_partition(
        records,
        [evenly_spaced_break_indices(records, k) for k in range(1, max_buckets + 1)],
    )


class IncrementalExhaustivePartition:
    """Maintain ``exhaustive_break_indices`` under streaming mutations.

    The full search is O(n) per decision at large n — not for the
    scoring (the candidate set is at most ``K(K-1)/2`` values) but for
    re-deriving every candidate's mapped record index from scratch
    against the whole value array.  This engine keeps those mappings
    *incrementally*: the mapped index of candidate value ``c`` is
    ``(#records with value < c) - 1`` (``searchsorted``-left semantics),
    and that count changes by exactly +1 per inserted value below ``c``
    and -1 per evicted value below ``c``.  Tracking the counts therefore
    costs one vectorized comparison against the candidate vector per
    record mutation, independent of the record count.

    The maintenance is **exact**, not approximate: candidate values are
    computed with the same float expression as
    :func:`evenly_spaced_break_indices` and the counts replicate
    ``searchsorted`` by construction, so :meth:`break_indices` feeds
    byte-identical configurations into the same
    :func:`select_best_partition` scorer as the full search — the engine
    is default-on at the paper-exact ``rebucket_interval=1``.

    Two events invalidate the counts wholesale: a change of the maximum
    record value (every candidate ``v_max * i / k`` moves) and a batch
    compaction (an unenumerated set of evictions).  Both mark the engine
    out of sync; the next query *resyncs* with one vectorized
    ``searchsorted`` of the candidate vector — O(C log n), still far
    below the full search's O(n) scan.  :meth:`cheaper_than_full`
    implements that cost comparison so callers can fall back to the
    full search when the record list is too small for the bookkeeping
    to pay off.
    """

    __slots__ = (
        "_records",
        "_max_buckets",
        "_i_arr",
        "_k_arr",
        "_cands",
        "_counts",
        "_base",
        "_min_cand",
        "_vmax",
        "_synced",
        "_last_breaks",
        "_last_stats",
        "_configs_cache",
        "_flat_cache",
        "_shifts_pending",
        "_low_slack",
        "incremental_updates",
        "resyncs",
        "queries",
    )

    def __init__(self, records: RecordList, max_buckets: int = PAPER_MAX_BUCKETS) -> None:
        if max_buckets < 1:
            raise ValueError(f"max_buckets must be >= 1, got {max_buckets}")
        self._records = records
        self._max_buckets = max_buckets
        # Flat candidate layout: for k = 2..K the k-1 fractions i/k live
        # at _offsets[k-2]:_offsets[k-1].  Candidate values are
        # (v_max * i) / k elementwise — the same float expression, and
        # therefore the same rounding, as evenly_spaced_break_indices.
        i_parts: List[np.ndarray] = []
        k_parts: List[np.ndarray] = []
        for k in range(2, max_buckets + 1):
            i_parts.append(np.arange(1, k, dtype=np.float64))
            k_parts.append(np.full(k - 1, float(k)))
        self._i_arr = (
            np.concatenate(i_parts) if i_parts else np.empty(0, dtype=np.float64)
        )
        self._k_arr = (
            np.concatenate(k_parts) if k_parts else np.empty(0, dtype=np.float64)
        )
        # Hot per-mutation state lives in plain Python lists, not
        # arrays: with at most K(K-1)/2 = 45 candidates the interpreted
        # loop in observe() is faster than two numpy dispatches — and
        # much faster right after RecordList._insert's multi-megabyte
        # suffix shift has evicted the ufunc machinery from cache.
        self._cands: Optional[List[float]] = None
        self._counts: Optional[List[int]] = None
        # Mutations strictly below every candidate shift all counts by
        # the same +-1; they are folded into this shared offset in O(1)
        # instead of touching the whole counts list.  Under the
        # heavy-tailed value distributions this engine targets, almost
        # every arrival lands below the smallest candidate (v_max / K),
        # so this is the common case.
        self._base = 0
        self._min_cand = 0.0
        self._vmax: Optional[float] = None
        self._synced = False
        # Winner stats of the most recent break_indices() call, handed
        # to BucketState via consume_stats() so the per-decision rebuild
        # skips a second pass over the prefix buffers.
        self._last_breaks: Optional[List[int]] = None
        self._last_stats: Optional[Tuple[List[float], List[float], List[float]]] = None
        # Configuration cache: an insert strictly below every candidate
        # (the _base fast path — the overwhelmingly common case under
        # heavy-tailed values) shifts every mapped index AND the last
        # index by exactly +1, so the previous decision's configurations
        # are reusable wholesale with a uniform +shift instead of being
        # refiltered from the counts.  _low_slack is how many such
        # shifts are safe before a candidate that was dropped for
        # mapping below index 0 would re-enter the valid range.
        self._configs_cache: Optional[List[List[int]]] = None
        self._flat_cache: Optional[List[int]] = None
        self._shifts_pending = 0
        self._low_slack = 0
        self.incremental_updates = 0
        self.resyncs = 0
        self.queries = 0

    @property
    def n_candidates(self) -> int:
        return int(self._i_arr.size)

    @property
    def synced(self) -> bool:
        return self._synced

    def invalidate(self) -> None:
        """Force a resync at the next query (restore, external mutation)."""
        self._synced = False

    def cache_state(self) -> None:
        """Nothing to serialize: the counts are exact and cheap to rebuild.

        The engine's candidate counts are a pure function of the record
        list, so a restored instance resyncs on its first query and is
        guaranteed to reproduce the pre-checkpoint break indices — the
        "rebuilt on load" arm of the checkpoint contract.
        """
        return None

    def restore_cache(self, state: object) -> None:
        self.invalidate()

    def observe(
        self,
        value: Optional[float],
        eviction: object,
        pos: Optional[int] = None,
    ) -> None:
        """Fold one :meth:`RecordList.add` outcome into the counts.

        ``value`` is the inserted value, or ``None`` when the reservoir
        filter rejected the arrival; ``eviction`` is the record list's
        :attr:`~repro.core.records.RecordList.last_eviction`.  ``pos``
        (the insert index) is accepted for engine-protocol uniformity
        but unused — the counts depend only on the inserted *value*.
        """
        if not self._synced:
            return
        if value is None and eviction is None:
            # No mutation at all (reservoir filter rejected the arrival).
            return
        if eviction == BATCH_EVICTION:
            # Batch compaction: victims unenumerated.
            self._synced = False
            return
        vmax = self._vmax
        assert vmax is not None
        if value is not None and value > vmax:
            # A new maximum moves every candidate v_max * i / k; remap
            # lazily.  An insert is the only way the maximum can grow,
            # so the common case needs no buffer read at all.
            self._synced = False
            return
        evicted: Optional[float] = None
        if eviction is not None:
            evicted = eviction[1]  # type: ignore[index]
            if evicted >= vmax:
                # Evicted a maximum-valued record; unless a duplicate
                # remains (or the insert re-supplied it), v_max drops.
                n = len(self._records)
                if n == 0 or float(self._records._values_buf[n - 1]) != vmax:
                    self._synced = False
                    return
        cands = self._cands
        counts = self._counts
        assert counts is not None and cands is not None
        self.incremental_updates += 1
        if value is not None:
            if value < self._min_cand:
                self._base += 1
                self._shifts_pending += 1
            else:
                for c in range(len(cands)):
                    if value < cands[c]:
                        counts[c] += 1
                self._configs_cache = None
        if evicted is not None:
            self._configs_cache = None
            if evicted < self._min_cand:
                self._base -= 1
            else:
                for c in range(len(cands)):
                    if evicted < cands[c]:
                        counts[c] -= 1

    def _resync(self) -> None:
        n = len(self._records)
        values = self._records._values_buf[:n]
        self._vmax = float(values[n - 1])
        cands = (self._vmax * self._i_arr) / self._k_arr
        self._cands = cands.tolist()
        self._counts = np.searchsorted(values, cands, side="left").tolist()
        self._base = 0
        self._min_cand = float(cands.min()) if cands.size else 0.0
        self._configs_cache = None
        self._shifts_pending = 0
        self._synced = True
        self.resyncs += 1

    def cheaper_than_full(self) -> bool:
        """Whether serving from the engine beats the full O(n) search.

        The incremental query touches only the candidate vector — at
        worst one vectorized ``searchsorted`` (O(C log n)) when a resync
        is pending — while the full search snapshots and scans all n
        records.  The crossover sits where n reaches the candidate
        count (profiled in docs/PERFORMANCE.md; the per-record constant
        of the full search dwarfs the per-candidate resync constant, so
        the log factor is absorbed).  Below it the bookkeeping is pure
        overhead and callers should run the full search directly —
        results are identical either way.
        """
        return len(self._records) >= self.n_candidates > 0

    def break_indices(self) -> Optional[List[int]]:
        """Current best break indices, identical to the full search."""
        records = self._records
        n = len(records)
        if n == 0:
            return None
        if not self._synced:
            self._resync()
        self.queries += 1
        s = self._shifts_pending
        cached = self._configs_cache
        if cached is not None and 0 <= s <= self._low_slack:
            if s:
                # Every mutation since the last build was an insert
                # strictly below all candidates: all mapped indices and
                # the last index moved by exactly +s, preserving the
                # validity filter (see _low_slack).  Fresh lists — the
                # previous decision's winner may still be referenced by
                # a live BucketState.
                configurations = [[x + s for x in ends] for ends in cached]
                assert self._flat_cache is not None
                flat = [x + s for x in self._flat_cache]
                self._configs_cache = configurations
                self._flat_cache = flat
                self._low_slack -= s
                self._shifts_pending = 0
            else:
                configurations = cached
                flat = self._flat_cache  # type: ignore[assignment]
                assert flat is not None
        else:
            counts = self._counts
            assert counts is not None
            last = n - 1
            # Pure-Python per-k filtering over the maintained counts:
            # the mapped index of candidate c is count(c) - 1, the
            # mapped indices ascend within each k, so "keep valid,
            # strictly increasing" reproduces
            # evenly_spaced_break_indices exactly.
            base = self._base - 1
            max_dropped_low = -(1 << 60)
            configurations = [[last]]
            flat = [last]
            offset = 0
            for k in range(2, self._max_buckets + 1):
                ends: List[int] = []
                for j in range(offset, offset + k - 1):
                    i = counts[j] + base
                    if i < 0:
                        if i > max_dropped_low:
                            max_dropped_low = i
                    elif i < last and (not ends or i > ends[-1]):
                        ends.append(i)
                ends.append(last)
                configurations.append(ends)
                flat.extend(ends)
                offset += k - 1
            self._configs_cache = configurations
            self._flat_cache = flat
            # A candidate dropped at mapped index i re-enters at shift
            # -i; the cache survives strictly fewer shifts than that.
            self._low_slack = -max_dropped_low - 1
            self._shifts_pending = 0
        breaks, stats = _score_and_select(
            records, configurations, flat=flat, want_stats=True
        )
        self._last_breaks = breaks
        self._last_stats = stats
        return breaks

    def consume_stats(
        self, breaks: List[int]
    ) -> Optional[Tuple[List[float], List[float], List[float]]]:
        """Winner stats from the most recent :meth:`break_indices` call.

        Returns the per-bucket ``(reps, probs, estimates)`` — in
        :func:`repro.core.kernels.partition_stats`' exact float order —
        if ``breaks`` is the very list object that call returned;
        ``None`` otherwise.  One-shot: the cached stats are cleared on
        use, so they can never outlive a record mutation — the caller
        consumes them in the same decision that produced them.
        """
        if breaks is not self._last_breaks or self._last_breaks is None:
            return None
        stats = self._last_stats
        self._last_breaks = None
        self._last_stats = None
        return stats


@register_algorithm
class ExhaustiveBucketing(BucketingAlgorithm):
    """The Exhaustive Bucketing allocation algorithm.

    Parameters
    ----------
    rng:
        Source of randomness for the probabilistic bucket draws.
    record_capacity:
        Optional sliding-window bound on retained records.
    max_buckets:
        Upper bound on the candidate bucket counts; the paper uses 10.
    rebucket_interval:
        Run the full configuration search only every k-th new record,
        re-anchoring the cached partition in between (see
        :class:`~repro.core.base.BucketingAlgorithm`).  The default 1 is
        paper-exact.
    incremental:
        Maintain the candidate mappings incrementally with
        :class:`IncrementalExhaustivePartition` (default on).  The
        engine is exact — break indices are identical to the full
        search — so this only changes the cost per decision, from O(n)
        to O(1) in the record count.  Disable to force the full
        re-search every time (the perf baseline).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.exhaustive import ExhaustiveBucketing
    >>> eb = ExhaustiveBucketing(rng=np.random.default_rng(0))
    >>> for task_id, mem in enumerate([200.0] * 5 + [1000.0] * 5):
    ...     eb.update(mem, significance=task_id + 1, task_id=task_id)
    >>> sorted(b.rep for b in eb.state.buckets)
    [200.0, 1000.0]
    """

    name = "exhaustive_bucketing"

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        record_capacity: Optional[int] = None,
        max_buckets: int = PAPER_MAX_BUCKETS,
        rebucket_interval: int = 1,
        incremental: bool = True,
        record_compaction: str = "evict_min",
    ) -> None:
        if max_buckets < 1:
            raise ValueError(f"max_buckets must be >= 1, got {max_buckets}")
        self._max_buckets = max_buckets
        self._incremental = bool(incremental)
        super().__init__(
            rng=rng,
            record_capacity=record_capacity,
            rebucket_interval=rebucket_interval,
            record_compaction=record_compaction,
        )

    @property
    def max_buckets(self) -> int:
        return self._max_buckets

    def _make_partition_engine(self) -> Optional[IncrementalExhaustivePartition]:
        if not self._incremental:
            return None
        return IncrementalExhaustivePartition(self._records, self._max_buckets)

    def compute_break_indices(self, records: RecordList) -> List[int]:
        engine = self._partition_engine
        if (
            engine is not None
            and records is self._records
            and engine.cheaper_than_full()
        ):
            breaks = engine.break_indices()
            if breaks is not None:
                return breaks
        return exhaustive_break_indices(records, max_buckets=self._max_buckets)
