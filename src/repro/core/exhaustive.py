"""Exhaustive Bucketing (Algorithm 2 of the paper).

Exhaustive Bucketing scores whole bucket *configurations* rather than
individual splits: for each candidate number of buckets ``k`` it builds
one configuration, computes its expected waste with the ``T[i][j]``
table of Section IV-C (:func:`repro.core.cost.exhaustive_cost`), and
keeps the cheapest configuration seen.

Enumerating all C(N, k) break-point combinations would be exponential in
the record count, so the paper replaces ``combinations(k, L)`` with the
evenly spaced candidate scheme of Section IV-D:

1. propose ``k - 1`` candidate break *values* ``v_max * i / k``,
2. map each value down to the nearest record strictly below it,
3. drop duplicate or empty mappings.

With the bucket count capped (the paper uses ``k <= 10``, observing that
real workflows rarely need more), each allocation costs one sort-order
walk plus at most ``K`` table evaluations of size <= K x K — this is why
Table I shows Exhaustive Bucketing scaling roughly linearly while Greedy
Bucketing's recursive scans blow up.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.base import BucketingAlgorithm, register_algorithm
from repro.core.buckets import BucketState
from repro.core.cost import exhaustive_cost
from repro.core.records import RecordList

__all__ = [
    "ExhaustiveBucketing",
    "evenly_spaced_break_indices",
    "exhaustive_break_indices",
    "PAPER_MAX_BUCKETS",
]

#: The paper's cap on the bucket count (Section V-A).
PAPER_MAX_BUCKETS = 10


def evenly_spaced_break_indices(records: RecordList, k: int) -> List[int]:
    """The paper's surrogate for ``combinations(k, L)`` (Section IV-D).

    For a target of ``k`` buckets, propose candidate break values
    ``v_max * i / k`` for ``i = 1 .. k-1``, map each to the record with
    the largest value strictly below it, and deduplicate.  Returns the
    sorted inclusive bucket-end indices (always terminated by the last
    record index), which may describe fewer than ``k`` buckets when
    candidates collapse onto the same record or map below record 0.
    """
    if k < 1:
        raise ValueError(f"bucket count k must be >= 1, got {k}")
    n = len(records)
    if n == 0:
        raise ValueError("cannot compute break indices for an empty record list")
    last = n - 1
    if k == 1:
        return [last]
    values = records.values
    v_max = float(values[last])
    # All k-1 candidate values in one searchsorted: index_below(v) is
    # searchsorted(values, v, side="left") - 1, and because the
    # candidates ascend, the mapped indices are non-decreasing — keeping
    # the strictly increasing ones reproduces the one-at-a-time loop.
    candidates = v_max * np.arange(1, k, dtype=np.float64) / k
    idx = np.searchsorted(values, candidates, side="left") - 1
    idx = idx[(idx >= 0) & (idx < last)]
    if idx.size:
        keep = np.empty(idx.size, dtype=bool)
        keep[0] = True
        np.greater(idx[1:], idx[:-1], out=keep[1:])
        ends = idx[keep].tolist()
    else:
        ends = []
    ends.append(last)
    return ends


def exhaustive_break_indices(
    records: RecordList, max_buckets: int = PAPER_MAX_BUCKETS
) -> List[int]:
    """Choose the cheapest evenly spaced configuration (Algorithm 2).

    Evaluates one configuration per candidate bucket count
    ``k = 1 .. max_buckets`` and returns the break indices minimizing the
    expected waste ``W_B``.  Ties favour fewer buckets (the single-bucket
    configuration is evaluated first).
    """
    if max_buckets < 1:
        raise ValueError(f"max_buckets must be >= 1, got {max_buckets}")
    best_cost = float("inf")
    best_breaks: Optional[List[int]] = None
    seen: set = set()
    for k in range(1, max_buckets + 1):
        breaks = evenly_spaced_break_indices(records, k)
        key = tuple(breaks)
        if key in seen:
            # Duplicate candidates collapse to a configuration already
            # scored (common while the record list is small).
            continue
        seen.add(key)
        state = BucketState(records, breaks)
        cost = exhaustive_cost(state.reps, state.probs, state.estimates)
        if cost < best_cost:
            best_cost = cost
            best_breaks = breaks
    assert best_breaks is not None  # k = 1 always yields a configuration
    return best_breaks


@register_algorithm
class ExhaustiveBucketing(BucketingAlgorithm):
    """The Exhaustive Bucketing allocation algorithm.

    Parameters
    ----------
    rng:
        Source of randomness for the probabilistic bucket draws.
    record_capacity:
        Optional sliding-window bound on retained records.
    max_buckets:
        Upper bound on the candidate bucket counts; the paper uses 10.
    rebucket_interval:
        Run the full configuration search only every k-th new record,
        re-anchoring the cached partition in between (see
        :class:`~repro.core.base.BucketingAlgorithm`).  The default 1 is
        paper-exact.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.exhaustive import ExhaustiveBucketing
    >>> eb = ExhaustiveBucketing(rng=np.random.default_rng(0))
    >>> for task_id, mem in enumerate([200.0] * 5 + [1000.0] * 5):
    ...     eb.update(mem, significance=task_id + 1, task_id=task_id)
    >>> sorted(b.rep for b in eb.state.buckets)
    [200.0, 1000.0]
    """

    name = "exhaustive_bucketing"

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        record_capacity: Optional[int] = None,
        max_buckets: int = PAPER_MAX_BUCKETS,
        rebucket_interval: int = 1,
    ) -> None:
        super().__init__(
            rng=rng,
            record_capacity=record_capacity,
            rebucket_interval=rebucket_interval,
        )
        if max_buckets < 1:
            raise ValueError(f"max_buckets must be >= 1, got {max_buckets}")
        self._max_buckets = max_buckets

    @property
    def max_buckets(self) -> int:
        return self._max_buckets

    def compute_break_indices(self, records: RecordList) -> List[int]:
        return exhaustive_break_indices(records, max_buckets=self._max_buckets)
