"""Resource model: resource kinds and resource vectors.

The paper models a task ``T(c, m, d, t)`` consuming at most *c* cores,
*m* MB of memory, *d* MB of disk over *t* seconds, and an allocation
``A(c_a, m_a, d_a, t_a)`` declared before execution (Section II-B).  This
module provides the shared vocabulary for those 4-tuples:

* :class:`Resource` — a registered resource kind (cores, memory, disk,
  wall time by default; additional kinds such as GPUs can be registered,
  matching the paper's future-work extension to more resource types).
* :class:`ResourceVector` — an immutable mapping from resource kinds to
  float magnitudes with the componentwise algebra the allocator and the
  simulator need (``fits_within``, ``exceeded_by``, scaling, max, ...).

Units follow the paper: cores are fractional core counts, memory and disk
are MB, time is seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Tuple


@dataclass(frozen=True)
class Resource:
    """A kind of consumable resource, e.g. cores or memory.

    Resources are identified by ``key``; two ``Resource`` instances with
    the same key compare equal.  ``unit`` and ``description`` are
    presentation metadata only.

    Attributes
    ----------
    key:
        Short stable identifier (``"cores"``, ``"memory"``, ...).
    unit:
        Human-readable unit (``"cores"``, ``"MB"``, ``"s"``).
    divisible:
        Whether fractional allocations are meaningful (cores are — the
        production traces show 0.9-core tasks — but some systems round
        them up; the allocator never forces integrality).
    """

    key: str
    unit: str = ""
    divisible: bool = True

    def __post_init__(self) -> None:
        if not self.key or not self.key.replace("_", "").isalnum():
            raise ValueError(f"invalid resource key: {self.key!r}")

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Resource):
            return self.key == other.key
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.key)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Resource({self.key!r})"

    def __str__(self) -> str:
        return self.key


class _ResourceNamespace:
    """Registry of known resource kinds.

    The four paper resources are predefined.  :meth:`register` adds new
    kinds (e.g. ``gpus``) so downstream users can extend the allocator
    without patching this module — the paper lists "an extension to
    additional resource types" as future work, and this hook is how the
    repo supports it.
    """

    def __init__(self) -> None:
        self._by_key: Dict[str, Resource] = {}

    def register(self, key: str, unit: str = "", divisible: bool = True) -> Resource:
        """Register (or fetch, if identical) a resource kind by key."""
        existing = self._by_key.get(key)
        if existing is not None:
            if existing.unit != unit and unit:
                raise ValueError(
                    f"resource {key!r} already registered with unit "
                    f"{existing.unit!r}, not {unit!r}"
                )
            return existing
        resource = Resource(key=key, unit=unit, divisible=divisible)
        self._by_key[key] = resource
        return resource

    def get(self, key: str) -> Resource:
        """Look up a registered resource kind by key."""
        try:
            return self._by_key[key]
        except KeyError:
            raise KeyError(
                f"unknown resource {key!r}; registered: {sorted(self._by_key)}"
            ) from None

    def known(self) -> Tuple[Resource, ...]:
        """All registered resource kinds, in registration order."""
        return tuple(self._by_key.values())


RESOURCES = _ResourceNamespace()

#: The paper's four resource dimensions.
CORES = RESOURCES.register("cores", unit="cores")
MEMORY = RESOURCES.register("memory", unit="MB")
DISK = RESOURCES.register("disk", unit="MB")
TIME = RESOURCES.register("time", unit="s")

#: The three dimensions the evaluation section reports AWE for.
EVALUATED_RESOURCES: Tuple[Resource, ...] = (CORES, MEMORY, DISK)


def resource(key: str) -> Resource:
    """Convenience accessor: ``resource("memory") is MEMORY``."""
    return RESOURCES.get(key)


class ResourceVector(Mapping[Resource, float]):
    """An immutable mapping from :class:`Resource` to a non-negative float.

    Used both for *consumption* (a task's hidden peak usage) and for
    *allocation* (the declared limit a worker enforces).  Components
    absent from the vector are treated as zero by the algebra, so vectors
    over different resource subsets compose safely.

    Examples
    --------
    >>> from repro.core.resources import ResourceVector, CORES, MEMORY
    >>> a = ResourceVector({CORES: 4, MEMORY: 1024})
    >>> c = ResourceVector({CORES: 2, MEMORY: 900})
    >>> c.fits_within(a)
    True
    >>> sorted(r.key for r in a.exceeded_by(ResourceVector({CORES: 8})))
    ['cores']
    """

    __slots__ = ("_data", "_hash")

    def __init__(
        self,
        data: Mapping[Resource, float] | Iterable[Tuple[Resource, float]] = (),
        **by_key: float,
    ) -> None:
        items: Dict[Resource, float] = {}
        pairs = data.items() if isinstance(data, Mapping) else data
        for res, value in pairs:
            if not isinstance(res, Resource):
                res = RESOURCES.get(str(res))
            items[res] = float(value)
        for key, value in by_key.items():
            items[RESOURCES.get(key)] = float(value)
        for res, value in items.items():
            if value < 0:
                raise ValueError(f"negative {res.key} component: {value}")
            if value != value:  # NaN
                raise ValueError(f"NaN {res.key} component")
        self._data = items
        self._hash: int | None = None

    # -- Mapping protocol -------------------------------------------------

    def __getitem__(self, res: Resource) -> float:
        if not isinstance(res, Resource):
            res = RESOURCES.get(str(res))
        return self._data.get(res, 0.0)

    def __iter__(self) -> Iterator[Resource]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, res: object) -> bool:
        return res in self._data

    @property
    def raw(self) -> Dict[Resource, float]:
        """The internal component dict — treat as read-only.

        Hot paths (worker fit checks, accounting folds) iterate this
        directly; the Mapping ABC's ``items()``/``__iter__`` cost an
        order of magnitude more per access.
        """
        return self._data

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> Dict[str, float]:
        """JSON-safe form keyed by resource key (exact float round-trip)."""
        return {res.key: value for res, value in self._data.items()}

    @classmethod
    def from_state(cls, state: Mapping[str, float]) -> "ResourceVector":
        """Rebuild a vector captured by :meth:`state_dict`."""
        return cls({RESOURCES.get(key): float(value) for key, value in state.items()})

    # -- algebra -----------------------------------------------------------

    def _resources_union(self, other: "ResourceVector") -> Tuple[Resource, ...]:
        seen = dict.fromkeys(self._data)
        seen.update(dict.fromkeys(other._data))
        return tuple(seen)

    def fits_within(self, limit: "ResourceVector") -> bool:
        """True if every component of self is <= the limit's component.

        This is the success condition of Section II-B: a task executes
        successfully only if ``c <= c_a``, ``m <= m_a``, ``d <= d_a`` and
        ``t <= t_a`` for every tracked resource.
        """
        return all(self[r] <= limit[r] for r in self._resources_union(limit))

    def exceeded_by(self, usage: "ResourceVector") -> Tuple[Resource, ...]:
        """Resources where ``usage`` strictly exceeds this vector (a limit)."""
        return tuple(
            r for r in self._resources_union(usage) if usage[r] > self[r]
        )

    def componentwise_max(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            {r: max(self[r], other[r]) for r in self._resources_union(other)}
        )

    def componentwise_min(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            {r: min(self[r], other[r]) for r in self._resources_union(other)}
        )

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            {r: self[r] + other[r] for r in self._resources_union(other)}
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        """Componentwise difference, clamped at zero (vectors stay valid)."""
        return ResourceVector(
            {r: max(0.0, self[r] - other[r]) for r in self._resources_union(other)}
        )

    def __mul__(self, factor: float) -> "ResourceVector":
        if factor < 0:
            raise ValueError("cannot scale a ResourceVector by a negative factor")
        return ResourceVector({r: v * factor for r, v in self._data.items()})

    __rmul__ = __mul__

    def replace(self, res: Resource, value: float) -> "ResourceVector":
        """Return a copy with one component replaced."""
        data = dict(self._data)
        data[res] = float(value)
        return ResourceVector(data)

    def restrict(self, resources: Iterable[Resource]) -> "ResourceVector":
        """Project onto a subset of resources (missing ones become absent)."""
        keep = set(resources)
        return ResourceVector({r: v for r, v in self._data.items() if r in keep})

    def is_zero(self) -> bool:
        return all(v == 0.0 for v in self._data.values())

    # -- equality / repr ----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceVector):
            return NotImplemented
        if self._data == other._data:
            # Fast path: identical component dicts (C-level compare).
            return True
        # Slow path handles explicit-zero vs absent components.
        return all(
            self[r] == other[r] for r in self._resources_union(other)
        )

    def __hash__(self) -> int:
        # Vectors live in scheduler memo sets on the dispatch hot path;
        # compute the (immutable) hash once.
        if self._hash is None:
            self._hash = hash(
                tuple(sorted((r.key, v) for r, v in self._data.items() if v))
            )
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{r.key}={v:g}" for r, v in sorted(self._data.items(), key=lambda kv: kv[0].key)
        )
        return f"ResourceVector({inner})"

    # -- convenience constructors -------------------------------------------

    @staticmethod
    def of(
        cores: float = 0.0,
        memory: float = 0.0,
        disk: float = 0.0,
        time: float = 0.0,
    ) -> "ResourceVector":
        """Build a vector over the paper's four standard resources.

        Zero components are dropped so the vector only carries the
        dimensions actually in play.
        """
        data: Dict[Resource, float] = {}
        if cores:
            data[CORES] = float(cores)
        if memory:
            data[MEMORY] = float(memory)
        if disk:
            data[DISK] = float(disk)
        if time:
            data[TIME] = float(time)
        return ResourceVector(data)


#: The worker shape used throughout the paper's evaluation (Section V-A):
#: 16 cores, 64 GB memory, 64 GB disk.
PAPER_WORKER_CAPACITY = ResourceVector.of(cores=16, memory=64_000, disk=64_000)

#: The exploratory-mode allocation of Section V-A: 1 core, 1 GB memory,
#: 1 GB disk per task until enough records are collected.
PAPER_EXPLORATORY_ALLOCATION = ResourceVector.of(cores=1, memory=1_000, disk=1_000)
