"""Hybrid Quantized-then-Bucketing allocation (Section V-C mitigation).

Analyzing TopEFT's core allocations, the paper observes that "the first
few outliers" poison the bucketing algorithms' early state and suggests
the issue "can be mitigated by running Quantized Bucketing initially
then switching over".  This module implements that switchover as a
first-class algorithm so the mitigation can be evaluated (experiment
E-X3 in DESIGN.md).

Both constituent algorithms ingest every record from the start, so the
successor's state is fully warm at the moment of the handoff.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import (
    AllocationAlgorithm,
    make_algorithm,
    register_algorithm,
)

__all__ = ["HybridBucketing"]


@register_algorithm
class HybridBucketing(AllocationAlgorithm):
    """Delegate to an initial algorithm, switch to a primary one later.

    Parameters
    ----------
    initial:
        Registry name of the warm-up algorithm (default
        ``"quantized_bucketing"``).
    primary:
        Registry name of the steady-state algorithm (default
        ``"exhaustive_bucketing"``).
    switch_after:
        Number of ingested records after which predictions come from the
        primary algorithm.
    """

    name = "hybrid_bucketing"

    # The hybrid exists to fix the bucketing algorithms' exploratory
    # pathology, so it keeps their conservative bootstrap; its steady
    # state draws buckets probabilistically, so predictions are not
    # cacheable.
    conservative_exploration = True
    deterministic_predictions = False

    def __init__(
        self,
        initial: str = "quantized_bucketing",
        primary: str = "exhaustive_bucketing",
        switch_after: int = 50,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(rng=rng)
        if switch_after < 0:
            raise ValueError(f"switch_after must be >= 0, got {switch_after}")
        self._initial = make_algorithm(initial, rng=self._rng)
        self._primary = make_algorithm(primary, rng=self._rng)
        self._switch_after = switch_after
        self._n_records = 0

    @property
    def active(self) -> AllocationAlgorithm:
        """The algorithm currently answering predictions."""
        if self._n_records >= self._switch_after:
            return self._primary
        return self._initial

    @property
    def switched(self) -> bool:
        return self._n_records >= self._switch_after

    @property
    def switch_after(self) -> int:
        return self._switch_after

    def update(self, value: float, significance: float = 1.0, task_id: int = -1) -> None:
        # Feed both so the primary is warm at the handoff.
        self._initial.update(value, significance=significance, task_id=task_id)
        self._primary.update(value, significance=significance, task_id=task_id)
        self._n_records += 1

    def predict(self) -> Optional[float]:
        return self.active.predict()

    def predict_retry(
        self, previous_allocation: float, observed_peak: float
    ) -> Optional[float]:
        return self.active.predict_retry(previous_allocation, observed_peak)

    @property
    def n_records(self) -> int:
        return self._n_records

    def reset(self) -> None:
        self._initial.reset()
        self._primary.reset()
        self._n_records = 0

    def _extra_state(self) -> dict:
        # Both children share this instance's RNG object, so their
        # envelopes capture the same generator state; restoring it
        # (three times, identically) is idempotent and exact.
        return {
            "initial": self._initial.state_dict(),
            "primary": self._primary.state_dict(),
            "n_records": self._n_records,
        }

    def _load_extra_state(self, state: dict) -> None:
        self._initial.load_state(state["initial"])
        self._primary.load_state(state["primary"])
        self._n_records = int(state["n_records"])
