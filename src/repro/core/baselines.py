"""Naive baseline algorithms: Whole Machine and Max Seen (Section V-A).

* **Whole Machine** allocates every task an entire worker
  (16 cores / 64 GB memory / 64 GB disk in the paper's testbed).  It
  never fails an allocation but wastes everything a task does not use —
  the evaluation's lower bound on efficiency.
* **Max Seen** allocates the maximum consumption observed so far in the
  current run, rounded *up* to a histogram granularity.  The paper notes
  (Section V-C) that its implementation uses a histogram with bucket
  size 250, which is why a steady 306 MB disk consumer is allocated
  500 MB and the TopEFT disk efficiency cannot approach 100 %.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.base import AllocationAlgorithm, register_algorithm

__all__ = ["WholeMachine", "MaxSeen"]


@register_algorithm
class WholeMachine(AllocationAlgorithm):
    """Allocate a full worker's capacity to every task.

    Parameters
    ----------
    capacity:
        The worker's capacity of this resource (e.g. 64000 MB memory for
        the paper's workers).  The :class:`TaskOrientedAllocator` wires
        this from its machine-capacity vector.
    """

    name = "whole_machine"

    def __init__(
        self,
        capacity: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(rng=rng)
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self._capacity = float(capacity)
        self._n_records = 0

    @property
    def capacity(self) -> float:
        return self._capacity

    def update(self, value: float, significance: float = 1.0, task_id: int = -1) -> None:
        # Whole Machine ignores history; count records for introspection only.
        self._n_records += 1

    def predict(self) -> Optional[float]:
        return self._capacity if self._capacity > 0 else None

    def predict_retry(
        self, previous_allocation: float, observed_peak: float
    ) -> Optional[float]:
        # A task that exhausted a whole machine has nowhere to go but the
        # allocator's doubling fallback (an oversubscribed allocation).
        if self._capacity > max(previous_allocation, observed_peak):
            return self._capacity
        return None

    @property
    def n_records(self) -> int:
        return self._n_records

    def reset(self) -> None:
        self._n_records = 0

    def _extra_state(self) -> dict:
        return {"n_records": self._n_records}

    def _load_extra_state(self, state: dict) -> None:
        self._n_records = int(state["n_records"])


@register_algorithm
class MaxSeen(AllocationAlgorithm):
    """Allocate the histogram-rounded maximum consumption seen so far.

    Parameters
    ----------
    granularity:
        Histogram bucket size; the observed maximum is rounded up to the
        next multiple.  The paper's implementation uses 250 (MB) for
        memory/disk; pass 0 to disable rounding (exact max), which the
        allocator does for cores where a 250-wide histogram would be
        meaningless.
    """

    name = "max_seen"

    def __init__(
        self,
        granularity: float = 250.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(rng=rng)
        if granularity < 0:
            raise ValueError(f"granularity must be non-negative, got {granularity}")
        self._granularity = float(granularity)
        self._max_seen: Optional[float] = None
        self._n_records = 0

    @property
    def granularity(self) -> float:
        return self._granularity

    @property
    def max_seen(self) -> Optional[float]:
        """The raw (unrounded) maximum observed consumption."""
        return self._max_seen

    def update(self, value: float, significance: float = 1.0, task_id: int = -1) -> None:
        if self._max_seen is None or value > self._max_seen:
            self._max_seen = float(value)
        self._n_records += 1

    def predict(self) -> Optional[float]:
        if self._max_seen is None:
            return None
        return self._round_up(self._max_seen)

    def _round_up(self, value: float) -> float:
        if self._granularity <= 0 or value <= 0:
            return value
        return math.ceil(value / self._granularity - 1e-12) * self._granularity

    @property
    def n_records(self) -> int:
        return self._n_records

    def reset(self) -> None:
        self._max_seen = None
        self._n_records = 0

    def _extra_state(self) -> dict:
        return {"max_seen": self._max_seen, "n_records": self._n_records}

    def _load_extra_state(self, state: dict) -> None:
        max_seen = state["max_seen"]
        self._max_seen = None if max_seen is None else float(max_seen)
        self._n_records = int(state["n_records"])
