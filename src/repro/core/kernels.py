"""Streaming partition-scoring kernels for the million-record hot path.

:func:`repro.core.cost.exhaustive_cost` scores one bucket configuration
by materializing the full ``T[i][j]`` waste table as a numpy matrix and
contracting it with two ``@`` products.  At the paper's bucket cap
(``K <= 10``) the arrays are tiny, so per-call numpy dispatch overhead —
not arithmetic — dominates: profiling ``exhaustive_break_indices`` at
n = 10^6 (docs/PERFORMANCE.md) shows ~0.5 ms per decision spent building
``BucketState`` objects and K x K tables for configurations that are
immediately discarded.

This module provides the scoring path the incremental partition engine
(:class:`repro.core.exhaustive.IncrementalExhaustivePartition`) and the
full search share:

* :func:`partition_stats` — per-bucket (reps, probs, estimates) read as
  *scalars* straight off the :class:`~repro.core.records.RecordList`
  prefix buffers, in exactly the float operation order
  :class:`~repro.core.buckets.BucketState` uses, so the stats (and any
  partition choice made from them) are bit-identical to building the
  state first.
* :func:`partition_waste` — expected waste ``W_B`` of a configuration,
  dispatching between three tiers on profile evidence:

  - a **scalar** pure-Python kernel (the canonical rounding order; the
    paper-exact ``K <= 10`` regime, where it beats the numpy
    implementation ~5x by skipping array dispatch entirely);
  - the same loop **numba-jitted** when numba is importable (a soft
    dependency — the container this repo targets does not ship it);
    identical IEEE operation order, so scalar and numba tiers round
    identically and the choice is invisible to results;
  - a **vectorized** O(K) reformulation for wide partitions
    (``K >= VECTOR_KERNEL_MIN_BUCKETS``), using the suffix-ratio
    identity ``ws(j) = ws(j+1) * suffix(j)/suffix(j+1) + p_j r_j`` to
    collapse the per-row recurrence into cumulative sums.  It
    re-associates the arithmetic, so it is only selected far above the
    paper's bucket cap and never on the paper-exact path.

The scalar kernel's accumulation order differs from the numpy
``probs @ T @ probs`` contraction by a few ulps (measured < 5e-16
relative over randomized configurations); ``repro.core.cost`` keeps the
table-building implementation as the reference and the test suite
cross-checks the kernels against it.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.records import RecordList

__all__ = [
    "HAVE_NUMBA",
    "VECTOR_KERNEL_MIN_BUCKETS",
    "partition_stats",
    "partition_waste",
    "partition_waste_batch",
    "partition_waste_scalar",
    "partition_waste_vector",
    "waste_kernel_name",
]

#: Bucket count at or above which the vectorized kernel is selected.
#: Profile evidence (docs/PERFORMANCE.md): below ~32 buckets the numpy
#: call overhead exceeds the scalar loop's arithmetic; the paper caps
#: K at 10, so the paper-exact path always takes the scalar/numba tier.
VECTOR_KERNEL_MIN_BUCKETS = 32


def partition_stats(
    records: RecordList, break_indices: Sequence[int]
) -> Tuple[List[float], List[float], List[float]]:
    """Per-bucket (reps, probs, estimates) for a candidate partition.

    Reads the prefix-sum buffers as Python scalars — no array snapshot,
    no intermediate ``Bucket`` objects — in the exact operation order of
    :class:`~repro.core.buckets.BucketState`, so feeding the winning
    configuration back into a ``BucketState`` reproduces these floats
    bit-for-bit.  O(K) for K buckets, independent of the record count.
    """
    n = len(records)
    sp = records._sp_buf
    svp = records._svp_buf
    vals = records._values_buf
    total_sig = float(sp[n - 1])
    reps: List[float] = []
    probs: List[float] = []
    estimates: List[float] = []
    below_sig = 0.0
    below_sigval = 0.0
    for hi in break_indices:
        s = float(sp[hi])
        sv = float(svp[hi])
        sig = s - below_sig
        rep = float(vals[hi])
        estimate = (sv - below_sigval) / sig
        if estimate > rep:
            # Prefix-sum cancellation can push the mean a few ulps past
            # the bucket max; clamp exactly as BucketState does.
            estimate = rep
        reps.append(rep)
        probs.append(sig / total_sig)
        estimates.append(estimate)
        below_sig = s
        below_sigval = sv
    return reps, probs, estimates


def partition_waste_scalar(
    reps: Sequence[float], probs: Sequence[float], estimates: Sequence[float]
) -> float:
    """Expected waste ``W_B`` (Section IV-C), scalar canonical kernel.

    Walks the ``T[i][j]`` recurrence without materializing the table:
    for each row *i* the weighted suffix sum ``ws = sum_j p_j T[i][j]``
    is first accumulated over the direct-fragmentation columns
    ``j >= i`` (left to right), then extended right-to-left through the
    failure columns ``j < i`` — after which ``ws`` *is* the full row
    contraction, so ``W_B = sum_i p_i ws_i``.  This fixed accumulation
    order is the canonical rounding both the full search and the
    incremental engine share.
    """
    n = len(reps)
    suffix = [0.0] * (n + 1)
    acc = 0.0
    for j in range(n - 1, -1, -1):
        acc += probs[j]
        suffix[j] = acc
    total = 0.0
    for i in range(n):
        est = estimates[i]
        ws = 0.0
        for j in range(i, n):
            ws += probs[j] * (reps[j] - est)
        for j in range(i - 1, -1, -1):
            ws += probs[j] * (reps[j] + ws / suffix[j + 1])
        total += probs[i] * ws
    return total


def partition_waste_vector(
    reps: np.ndarray, probs: np.ndarray, estimates: np.ndarray
) -> float:
    """Vectorized O(K) reformulation of :func:`partition_waste_scalar`.

    The failure-column recurrence ``ws(j) = ws(j+1) + p_j (r_j +
    ws(j+1)/suffix(j+1))`` telescopes: dividing by ``suffix(j)`` turns it
    into a plain prefix sum of ``p_j r_j / suffix(j)``, so every row's
    full contraction is ``suffix(0) * (ws0_i / suffix(i) + C(i))`` with
    one cumsum shared across rows.  Re-associates the float arithmetic
    relative to the scalar kernel — selected only for partitions at or
    above :data:`VECTOR_KERNEL_MIN_BUCKETS` buckets, beyond the
    paper-exact regime.
    """
    reps = np.asarray(reps, dtype=np.float64)
    probs = np.asarray(probs, dtype=np.float64)
    estimates = np.asarray(estimates, dtype=np.float64)
    n = reps.size
    pr = probs * reps
    # suffix[i] = sum_{k >= i} probs[k]; suffix_pr likewise for p*r.
    suffix = np.concatenate([np.cumsum(probs[::-1])[::-1], [0.0]])
    suffix_pr = np.cumsum(pr[::-1])[::-1]
    # Row seed: ws0[i] = sum_{j >= i} p_j (r_j - est_i).
    ws0 = suffix_pr - estimates * suffix[:n]
    # Exclusive prefix C[i] = sum_{j < i} p_j r_j / suffix[j].
    contrib = np.empty(n, dtype=np.float64)
    contrib[0] = 0.0
    np.cumsum(pr[: n - 1] / suffix[: n - 1], out=contrib[1:])
    row_totals = suffix[0] * (ws0 / suffix[:n] + contrib)
    return float(np.dot(probs, row_totals))


def partition_waste_batch(
    reps: np.ndarray,
    probs: np.ndarray,
    estimates: np.ndarray,
    lengths: np.ndarray,
) -> np.ndarray:
    """Expected waste of *many* configurations in one vectorized pass.

    Inputs are the per-bucket stats of all configurations concatenated
    flat (``lengths[c]`` buckets each).  Each configuration is padded to
    the widest by replicating its last bucket with probability zero;
    the padded entries produce ``0/0`` artifacts that are masked out of
    the final contraction.  Rounds like :func:`partition_waste_vector`
    (the suffix-ratio identity) in every row.

    This is the scorer behind
    :func:`repro.core.exhaustive.select_best_partition`: scoring the
    paper's ~10 configurations per decision costs a fixed set of numpy
    ops on a C x K matrix instead of ~C K^2 interpreted float ops, which
    is what pushes the incremental allocation decision at n = 10^6 past
    the 10x bar over the full re-search (docs/PERFORMANCE.md).
    """
    lengths = np.asarray(lengths, dtype=np.intp)
    n_configs = lengths.size
    width = int(lengths.max())
    offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
    cols = np.arange(width)
    # Index matrix into the flat arrays; padding replicates the last
    # bucket of each configuration (probability forced to zero below).
    idx = offsets[:, None] + np.minimum(cols, lengths[:, None] - 1)
    valid = cols < lengths[:, None]
    p = np.where(valid, probs[idx], 0.0)
    r = reps[idx]
    e = estimates[idx]
    pr = p * r
    # suffix[c, j] = sum_{k >= j} p[c, k], with a trailing zero column.
    suffix = np.zeros((n_configs, width + 1))
    suffix[:, :width] = np.cumsum(p[:, ::-1], axis=1)[:, ::-1]
    suffix_pr = np.cumsum(pr[:, ::-1], axis=1)[:, ::-1]
    with np.errstate(invalid="ignore", divide="ignore"):
        ws0 = suffix_pr - e * suffix[:, :width]
        contrib = np.zeros((n_configs, width))
        if width > 1:
            np.cumsum(pr[:, :-1] / suffix[:, : width - 1], axis=1, out=contrib[:, 1:])
        row_totals = suffix[:, :1] * (ws0 / suffix[:, :width] + contrib)
        # Padded columns carry 0/0 artifacts; they have p == 0 and are
        # excluded from the contraction explicitly.
        return np.where(valid, p * row_totals, 0.0).sum(axis=1)


try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit  # type: ignore

    HAVE_NUMBA = True

    @_njit(cache=True)
    def _waste_numba(reps, probs, estimates):  # pragma: no cover
        n = reps.size
        suffix = np.zeros(n + 1)
        acc = 0.0
        for j in range(n - 1, -1, -1):
            acc += probs[j]
            suffix[j] = acc
        total = 0.0
        for i in range(n):
            est = estimates[i]
            ws = 0.0
            for j in range(i, n):
                ws += probs[j] * (reps[j] - est)
            for j in range(i - 1, -1, -1):
                ws += probs[j] * (reps[j] + ws / suffix[j + 1])
            total += probs[i] * ws
        return total

except Exception:  # numba absent or broken: fall through to pure Python
    HAVE_NUMBA = False
    _waste_numba = None


def waste_kernel_name(n_buckets: int) -> str:
    """Which tier :func:`partition_waste` picks for ``n_buckets``."""
    if n_buckets >= VECTOR_KERNEL_MIN_BUCKETS:
        return "vector"
    return "numba" if HAVE_NUMBA else "scalar"


def partition_waste(
    reps: Sequence[float], probs: Sequence[float], estimates: Sequence[float]
) -> float:
    """Expected waste ``W_B`` of a configuration, auto-dispatched.

    Scalar (or its numba-compiled twin, identical rounding) below
    :data:`VECTOR_KERNEL_MIN_BUCKETS` buckets; the re-associated
    vectorized kernel at or above it.
    """
    n = len(reps)
    if n >= VECTOR_KERNEL_MIN_BUCKETS:
        return partition_waste_vector(
            np.asarray(reps, dtype=np.float64),
            np.asarray(probs, dtype=np.float64),
            np.asarray(estimates, dtype=np.float64),
        )
    if _waste_numba is not None:  # pragma: no cover - needs numba
        return float(
            _waste_numba(
                np.asarray(reps, dtype=np.float64),
                np.asarray(probs, dtype=np.float64),
                np.asarray(estimates, dtype=np.float64),
            )
        )
    return partition_waste_scalar(reps, probs, estimates)
