"""Quantized Bucketing (Phung et al., WORKS 2021 — reference [11]).

The predecessor of the paper's bucketing algorithms: instead of
searching for waste-minimizing break points it splits the sorted record
list at fixed quantiles.  The paper's evaluation configuration splits at
the 50th quantile (Section V-B), yielding two buckets: the median
record's value and the maximum.  Tasks are first allocated the lowest
bucket and climb the ladder on failure.

Under-allocating half the tasks costs retries, but on heavy-tailed
workloads (the Exponential synthetic workflow) the median first shot
avoids charging every small task the outliers' fragmentation — which is
exactly where the paper observes Quantized Bucketing "significantly
excels".
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.base import AllocationAlgorithm, register_algorithm
from repro.core.records import RecordList

__all__ = ["QuantizedBucketing"]


@register_algorithm
class QuantizedBucketing(AllocationAlgorithm):
    """Fixed-quantile bucket ladder with climb-on-failure retries.

    Parameters
    ----------
    quantiles:
        Interior split quantiles in (0, 1), ascending.  The bucket reps
        are the record values at these quantiles plus the maximum; the
        paper's configuration is the single 0.5 split.
    """

    name = "quantized_bucketing"

    def __init__(
        self,
        quantiles: Sequence[float] = (0.5,),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(rng=rng)
        quantiles = tuple(float(q) for q in quantiles)
        if not quantiles:
            raise ValueError("at least one split quantile is required")
        if list(quantiles) != sorted(set(quantiles)):
            raise ValueError(f"quantiles must be strictly increasing: {quantiles}")
        if quantiles[0] <= 0.0 or quantiles[-1] >= 1.0:
            raise ValueError(f"quantiles must lie strictly inside (0, 1): {quantiles}")
        self._quantiles = quantiles
        self._records = RecordList()
        self._reps: Optional[Tuple[float, ...]] = None

    @property
    def quantiles(self) -> Tuple[float, ...]:
        return self._quantiles

    def update(self, value: float, significance: float = 1.0, task_id: int = -1) -> None:
        # Quantile clustering is count-based (no significance weighting).
        self._records.add(value=value, significance=1.0, task_id=task_id)
        self._reps = None

    def bucket_reps(self) -> Optional[Tuple[float, ...]]:
        """The current ladder of bucket representatives, ascending."""
        if not self._records:
            return None
        if self._reps is None:
            values = self._records.values
            reps = []
            for q in self._quantiles:
                # The record value at the quantile: allocations must be
                # actual observed peaks, mirroring [11]'s clustering of
                # records rather than interpolation between them.
                idx = min(int(np.ceil(q * values.size)) - 1, values.size - 1)
                idx = max(idx, 0)
                reps.append(float(values[idx]))
            reps.append(float(values[-1]))
            # Collapse duplicate reps (tiny record lists, repeated values).
            deduped = []
            for rep in reps:
                if not deduped or rep > deduped[-1]:
                    deduped.append(rep)
            self._reps = tuple(deduped)
        return self._reps

    def predict(self) -> Optional[float]:
        reps = self.bucket_reps()
        if reps is None:
            return None
        return reps[0]

    def predict_retry(
        self, previous_allocation: float, observed_peak: float
    ) -> Optional[float]:
        """Climb to the lowest bucket above the failed allocation."""
        reps = self.bucket_reps()
        if reps is None:
            return None
        floor = max(previous_allocation, observed_peak)
        for rep in reps:
            if rep > floor:
                return rep
        return None

    @property
    def records(self) -> RecordList:
        return self._records

    @property
    def n_records(self) -> int:
        return len(self._records)

    def reset(self) -> None:
        self._records = RecordList()
        self._reps = None

    def _extra_state(self) -> dict:
        # _reps is a pure function of the records (deterministic quantile
        # lookup), so the cache is simply dropped and lazily rebuilt.
        return {"records": self._records.state_dict()}

    def _load_extra_state(self, state: dict) -> None:
        self._records = RecordList.from_state(state["records"])
        self._reps = None
