"""Expected-resource-waste cost kernels.

Both bucketing algorithms score candidate bucket configurations by the
*expected resource waste of the next task*, assuming it behaves like the
completed tasks on record:

* **Greedy cost** (Section IV-B): for a sorted segment of records broken
  into exactly two buckets at a candidate record, sum the four
  (task-falls-in x algorithm-chooses) cases.  Mis-allocation low->high
  wastes internal fragmentation; high->low wastes the failed low
  allocation plus the retried high allocation.
* **Exhaustive cost** (Section IV-C): for an arbitrary list of buckets,
  fill the table ``T[i][j]`` = expected waste when the task falls in
  bucket *i* and the algorithm first chooses bucket *j*; for ``j < i``
  the task fails and is re-drawn from the renormalized higher buckets,
  so the table is filled from the last column backwards.

The vectorized implementations carry the algorithms' hot loops (the
hpc-parallel optimization guides: vectorize with prefix sums rather than
re-scanning per candidate).  Pure-Python reference implementations are
kept here and cross-checked by the test suite.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.records import RecordList

__all__ = [
    "greedy_split_costs",
    "greedy_split_cost_reference",
    "exhaustive_cost",
    "exhaustive_cost_reference",
    "expected_waste_table",
]


# ---------------------------------------------------------------------------
# Greedy Bucketing cost (compute_greedy_cost in Algorithm 1)
# ---------------------------------------------------------------------------


def greedy_split_costs(records: RecordList, lo: int, hi: int) -> np.ndarray:
    """Expected waste for every candidate break point in ``[lo, hi]``.

    Returns an array ``costs`` with ``costs[i - lo]`` = the expected
    resource waste of the next task if the segment ``[lo, hi]`` is broken
    into buckets ``[lo, i]`` and ``[i+1, hi]``.  The entry for ``i == hi``
    is the no-split (single bucket) cost, matching Algorithm 1's "if
    break_idx == hi then return [hi]" convention.

    All candidates are evaluated in O(hi - lo) total using the record
    list's significance prefix sums.
    """
    if not (0 <= lo <= hi < len(records)):
        raise IndexError(f"segment [{lo}, {hi}] out of bounds for {len(records)} records")

    values = records.values
    sp = records.sig_prefix
    svp = records.sigval_prefix
    base_sig = sp[lo - 1] if lo > 0 else 0.0
    base_sigval = svp[lo - 1] if lo > 0 else 0.0

    idx = np.arange(lo, hi + 1)
    w1 = sp[idx] - base_sig                      # significance of [lo, i]
    sv1 = svp[idx] - base_sigval                 # sig*value of [lo, i]
    total_sig = sp[hi] - base_sig
    total_sigval = svp[hi] - base_sigval
    w2 = total_sig - w1                          # significance of [i+1, hi]
    sv2 = total_sigval - sv1

    p1 = w1 / total_sig
    p2 = w2 / total_sig
    v_lo = sv1 / w1                              # w1 > 0: i >= lo, sigs positive
    with np.errstate(invalid="ignore", divide="ignore"):
        v_hi = np.where(w2 > 0.0, sv2 / np.where(w2 > 0.0, w2, 1.0), 0.0)

    rep1 = values[idx]
    rep2 = values[hi]

    # The four cases of Section IV-B.  Terms involving the (possibly
    # empty) high bucket carry a p2 factor, which is exactly zero at
    # i == hi, so the formula degenerates to the one-bucket cost
    # rep - weighted_mean there.
    w_lolo = p1 * p1 * (rep1 - v_lo)
    w_lohi = p1 * p2 * (rep2 - v_lo)
    w_hilo = p2 * p1 * (rep1 + rep2 - v_hi)
    w_hihi = p2 * p2 * (rep2 - v_hi)
    return w_lolo + w_lohi + w_hilo + w_hihi


def greedy_split_cost_reference(records: RecordList, lo: int, i: int, hi: int) -> float:
    """Scalar reference for :func:`greedy_split_costs` (tests only).

    Computes the cost of breaking ``[lo, hi]`` at record ``i`` directly
    from the paper's four-case formula, without prefix sums.
    """
    if not (lo <= i <= hi):
        raise IndexError(f"break index {i} outside segment [{lo}, {hi}]")
    rep1 = records.max_value(lo, i)
    rep2 = records.max_value(lo, hi)
    w1 = records.sig_sum(lo, i)
    total = records.sig_sum(lo, hi)
    p1 = w1 / total
    v_lo = records.weighted_mean(lo, i)
    if i == hi:
        return rep1 - v_lo
    p2 = 1.0 - p1
    v_hi = records.weighted_mean(i + 1, hi)
    return (
        p1 * p1 * (rep1 - v_lo)
        + p1 * p2 * (rep2 - v_lo)
        + p2 * p1 * (rep1 + rep2 - v_hi)
        + p2 * p2 * (rep2 - v_hi)
    )


# ---------------------------------------------------------------------------
# Exhaustive Bucketing cost (compute_exhaust_cost in Algorithm 2)
# ---------------------------------------------------------------------------


def expected_waste_table(
    reps: np.ndarray, probs: np.ndarray, estimates: np.ndarray
) -> np.ndarray:
    """The N x N table ``T[i][j]`` of Section IV-C.

    ``T[i][j]`` is the expected waste when the next task's consumption
    falls within bucket *i* and the algorithm chooses bucket *j*:

    * ``j >= i``: the allocation suffices, waste is the internal
      fragmentation ``reps[j] - estimates[i]``.
    * ``j < i``: the allocation fails (waste ``reps[j]``) and the task is
      re-drawn from buckets ``j+1 .. N-1`` with renormalized
      probabilities, adding the expectation of ``T[i][k]`` over that
      suffix.  Columns are therefore filled from the last to the first.
    """
    reps = np.asarray(reps, dtype=np.float64)
    probs = np.asarray(probs, dtype=np.float64)
    estimates = np.asarray(estimates, dtype=np.float64)
    n = reps.size
    if n == 0:
        raise ValueError("expected_waste_table needs at least one bucket")
    if probs.size != n or estimates.size != n:
        raise ValueError("reps, probs, estimates must have equal length")

    suffix_prob = np.concatenate([np.cumsum(probs[::-1])[::-1], [0.0]])
    table = np.empty((n, n), dtype=np.float64)
    for i in range(n):
        # j >= i: direct internal fragmentation.
        table[i, i:] = reps[i:] - estimates[i]
        # j < i: walk right-to-left, maintaining the suffix expectation
        # S[j+1] = sum_{k > j} probs[k] * T[i][k].
        weighted_suffix = float(np.dot(probs[i:], table[i, i:]))
        for j in range(i - 1, -1, -1):
            table[i, j] = reps[j] + weighted_suffix / suffix_prob[j + 1]
            weighted_suffix += probs[j] * table[i, j]
    return table


def exhaustive_cost(
    reps: np.ndarray, probs: np.ndarray, estimates: np.ndarray
) -> float:
    """Expected waste of a bucket configuration (Section IV-C).

    ``W_B = sum_{i,j} probs[i] * probs[j] * T[i][j]`` — the task falls in
    bucket *i* with probability ``probs[i]`` and the allocator draws
    bucket *j* with probability ``probs[j]``.
    """
    probs = np.asarray(probs, dtype=np.float64)
    table = expected_waste_table(reps, probs, estimates)
    return float(probs @ table @ probs)


def exhaustive_cost_reference(
    reps: Sequence[float], probs: Sequence[float], estimates: Sequence[float]
) -> float:
    """Naive recursive reference for :func:`exhaustive_cost` (tests only)."""
    n = len(reps)
    memo: dict = {}

    def t(i: int, j: int) -> float:
        if (i, j) in memo:
            return memo[i, j]
        if j >= i:
            result = reps[j] - estimates[i]
        else:
            denom = sum(probs[m] for m in range(j + 1, n))
            result = reps[j] + sum(
                probs[k] / denom * t(i, k) for k in range(j + 1, n)
            )
        memo[i, j] = result
        return result

    return sum(
        probs[i] * probs[j] * t(i, j) for i in range(n) for j in range(n)
    )
