"""Buckets and bucketing states.

A *bucketing state* partitions the sorted record list into contiguous
intervals ("buckets").  Each bucket is reduced to (Section IV-A):

* a **representative value** — the maximum record value in the bucket,
  which is what gets allocated when the bucket is chosen;
* a **probability value** — the bucket's share of total significance;
* a **consumption estimate** — the significance-weighted mean value,
  used by the cost kernels as the expected consumption of a task that
  falls in the bucket.

Prediction (shared by Greedy and Exhaustive Bucketing):

* a fresh task is allocated the representative of a bucket drawn at
  random with the probability values;
* a task that exhausted its previous allocation is re-allocated from the
  buckets whose representative exceeds the previous allocation, with
  probabilities renormalized over that suffix;
* if no such bucket exists (the previous allocation was already the
  largest representative), the caller falls back to doubling the task's
  previous peak until it succeeds (Section IV-A) — that fallback lives in
  the allocator, signalled here by returning ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.records import RecordList


@dataclass(frozen=True)
class Bucket:
    """One interval of the sorted record list, reduced to three numbers.

    Attributes
    ----------
    lo, hi:
        Inclusive record-index range [lo, hi] in the originating
        :class:`~repro.core.records.RecordList`.
    rep:
        Representative value: max record value in the bucket.
    prob:
        Probability value: the bucket's significance share in [0, 1].
    estimate:
        Significance-weighted mean record value (expected consumption of
        a task falling in this bucket).
    """

    lo: int
    hi: int
    rep: float
    prob: float
    estimate: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty bucket range [{self.lo}, {self.hi}]")
        if not (0.0 <= self.prob <= 1.0 + 1e-12):
            raise ValueError(f"bucket probability out of range: {self.prob}")
        if self.estimate > self.rep + 1e-9 * max(1.0, abs(self.rep)):
            raise ValueError(
                f"bucket estimate {self.estimate} exceeds representative {self.rep}"
            )

    @property
    def count(self) -> int:
        """Number of records in the bucket."""
        return self.hi - self.lo + 1


class BucketState:
    """An immutable partition of a record list into buckets.

    Built from a record list and a sorted sequence of *break indices*:
    the inclusive upper-end record index of every bucket except that the
    last break index must be ``len(records) - 1`` (every record belongs
    to exactly one bucket).  ``BucketState.single(records)`` builds the
    one-bucket state.
    """

    __slots__ = ("_buckets", "_reps", "_probs", "_estimates", "_cumprobs", "_n_records")

    def __init__(self, records: RecordList, break_indices: Sequence[int]) -> None:
        n = len(records)
        if n == 0:
            raise ValueError("cannot build a BucketState from an empty record list")
        breaks = list(break_indices)
        if not breaks:
            raise ValueError("break_indices must contain at least the last index")
        if breaks != sorted(set(breaks)):
            raise ValueError(f"break indices must be strictly increasing: {breaks}")
        if breaks[-1] != n - 1:
            raise ValueError(
                f"last break index must be {n - 1} (got {breaks[-1]}): every "
                "record must fall in a bucket"
            )
        if breaks[0] < 0:
            raise IndexError(f"negative break index: {breaks[0]}")

        total_sig = records.total_significance()
        buckets: List[Bucket] = []
        lo = 0
        for hi in breaks:
            rep = records.max_value(lo, hi)
            # The prefix-sum weighted mean can exceed the bucket max by a
            # few ulps through cancellation; clamp, since the estimate is
            # a mean of values that are all <= rep by construction.
            estimate = min(records.weighted_mean(lo, hi), rep)
            buckets.append(
                Bucket(
                    lo=lo,
                    hi=hi,
                    rep=rep,
                    prob=records.sig_sum(lo, hi) / total_sig,
                    estimate=estimate,
                )
            )
            lo = hi + 1
        self._buckets: Tuple[Bucket, ...] = tuple(buckets)
        self._reps = np.array([b.rep for b in buckets], dtype=np.float64)
        self._probs = np.array([b.prob for b in buckets], dtype=np.float64)
        self._estimates = np.array([b.estimate for b in buckets], dtype=np.float64)
        # Normalized cumulative probabilities for O(log n) inverse-CDF
        # draws — the allocator draws once per dispatch, so this is a
        # hot path in large simulations.
        cum = np.cumsum(self._probs)
        cum /= cum[-1]
        self._cumprobs = cum
        self._n_records = n

    @staticmethod
    def single(records: RecordList) -> "BucketState":
        """The trivial state with one bucket containing every record."""
        return BucketState(records, [len(records) - 1])

    # -- checkpointing -----------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-safe snapshot (see :mod:`repro.checkpoint`).

        The derived arrays are stored verbatim rather than rebuilt from
        break indices on restore: the state may be *stale* relative to a
        grown record list (the lazy recompute path of
        :class:`~repro.core.base.BucketingAlgorithm`), and recomputation
        would also re-round the probability normalization.
        """
        return {
            "buckets": [
                [b.lo, b.hi, b.rep, b.prob, b.estimate] for b in self._buckets
            ],
            "cumprobs": self._cumprobs.tolist(),
            "n_records": self._n_records,
        }

    @classmethod
    def from_state(cls, state: dict) -> "BucketState":
        """Rebuild a state captured by :meth:`state_dict`, bit-exactly."""
        new = cls.__new__(cls)
        buckets = tuple(
            Bucket(
                lo=int(lo), hi=int(hi), rep=float(rep), prob=float(prob),
                estimate=float(est),
            )
            for lo, hi, rep, prob, est in state["buckets"]
        )
        new._buckets = buckets
        new._reps = np.array([b.rep for b in buckets], dtype=np.float64)
        new._probs = np.array([b.prob for b in buckets], dtype=np.float64)
        new._estimates = np.array([b.estimate for b in buckets], dtype=np.float64)
        new._cumprobs = np.asarray(state["cumprobs"], dtype=np.float64)
        new._n_records = int(state["n_records"])
        return new

    # -- inspection -------------------------------------------------------------

    @property
    def buckets(self) -> Tuple[Bucket, ...]:
        return self._buckets

    @property
    def reps(self) -> np.ndarray:
        """Representative values, ascending (read-only view)."""
        return self._reps

    @property
    def probs(self) -> np.ndarray:
        """Probability values, summing to 1 (read-only view)."""
        return self._probs

    @property
    def estimates(self) -> np.ndarray:
        """Weighted-mean consumption estimates per bucket."""
        return self._estimates

    @property
    def n_records(self) -> int:
        return self._n_records

    def __len__(self) -> int:
        return len(self._buckets)

    def __getitem__(self, index: int) -> Bucket:
        return self._buckets[index]

    def __repr__(self) -> str:
        reps = ", ".join(f"{b.rep:g}@{b.prob:.3f}" for b in self._buckets)
        return f"BucketState([{reps}])"

    # -- prediction ---------------------------------------------------------------

    def choose_bucket(self, rng: np.random.Generator) -> Bucket:
        """Draw a bucket with the probability values (Section IV-A)."""
        idx = int(np.searchsorted(self._cumprobs, rng.random(), side="right"))
        idx = min(idx, len(self._buckets) - 1)
        return self._buckets[idx]

    def first_allocation(self, rng: np.random.Generator) -> float:
        """Allocation for a fresh task: the drawn bucket's representative."""
        return self.choose_bucket(rng).rep

    def retry_allocation(
        self, previous_allocation: float, rng: np.random.Generator
    ) -> Optional[float]:
        """Allocation after a resource-exhaustion failure.

        Only buckets with a representative strictly greater than the
        previous allocation are considered, with probabilities
        renormalized over them.  Returns ``None`` when the previous
        allocation already matched or exceeded the largest
        representative — the caller must then fall back to doubling the
        task's observed peak (Section IV-A).
        """
        # Representatives ascend, so the eligible buckets are a suffix.
        first = int(np.searchsorted(self._reps, previous_allocation, side="right"))
        n = len(self._buckets)
        if first >= n:
            return None
        if first == n - 1:
            return float(self._reps[-1])
        probs = self._probs[first:]
        cum = np.cumsum(probs)
        total = cum[-1]
        if total <= 0.0:
            # Degenerate (all significance in lower buckets): take the
            # first eligible representative.
            return float(self._reps[first])
        idx = first + int(np.searchsorted(cum / total, rng.random(), side="right"))
        idx = min(idx, n - 1)
        return float(self._reps[idx])

    # -- invariant helper (used by tests and debug assertions) ----------------------

    def validate(self) -> None:
        """Raise AssertionError if any structural invariant is violated."""
        assert self._buckets, "state must have at least one bucket"
        assert abs(self._probs.sum() - 1.0) < 1e-9, "probabilities must sum to 1"
        assert self._buckets[0].lo == 0
        assert self._buckets[-1].hi == self._n_records - 1
        for prev, cur in zip(self._buckets, self._buckets[1:]):
            assert cur.lo == prev.hi + 1, "buckets must tile the record list"
            assert cur.rep >= prev.rep, "representatives must be non-decreasing"
        for b in self._buckets:
            assert b.estimate <= b.rep + 1e-9, "estimate cannot exceed representative"
