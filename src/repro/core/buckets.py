"""Buckets and bucketing states.

A *bucketing state* partitions the sorted record list into contiguous
intervals ("buckets").  Each bucket is reduced to (Section IV-A):

* a **representative value** — the maximum record value in the bucket,
  which is what gets allocated when the bucket is chosen;
* a **probability value** — the bucket's share of total significance;
* a **consumption estimate** — the significance-weighted mean value,
  used by the cost kernels as the expected consumption of a task that
  falls in the bucket.

Prediction (shared by Greedy and Exhaustive Bucketing):

* a fresh task is allocated the representative of a bucket drawn at
  random with the probability values;
* a task that exhausted its previous allocation is re-allocated from the
  buckets whose representative exceeds the previous allocation, with
  probabilities renormalized over that suffix;
* if no such bucket exists (the previous allocation was already the
  largest representative), the caller falls back to doubling the task's
  previous peak until it succeeds (Section IV-A) — that fallback lives in
  the allocator, signalled here by returning ``None``.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.records import RecordList


@dataclass(frozen=True)
class Bucket:
    """One interval of the sorted record list, reduced to three numbers.

    Attributes
    ----------
    lo, hi:
        Inclusive record-index range [lo, hi] in the originating
        :class:`~repro.core.records.RecordList`.
    rep:
        Representative value: max record value in the bucket.
    prob:
        Probability value: the bucket's significance share in [0, 1].
    estimate:
        Significance-weighted mean record value (expected consumption of
        a task falling in this bucket).
    """

    lo: int
    hi: int
    rep: float
    prob: float
    estimate: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty bucket range [{self.lo}, {self.hi}]")
        if not (0.0 <= self.prob <= 1.0 + 1e-12):
            raise ValueError(f"bucket probability out of range: {self.prob}")
        if self.estimate > self.rep + 1e-9 * max(1.0, abs(self.rep)):
            raise ValueError(
                f"bucket estimate {self.estimate} exceeds representative {self.rep}"
            )

    @property
    def count(self) -> int:
        """Number of records in the bucket."""
        return self.hi - self.lo + 1


class BucketState:
    """An immutable partition of a record list into buckets.

    Built from a record list and a sorted sequence of *break indices*:
    the inclusive upper-end record index of every bucket except that the
    last break index must be ``len(records) - 1`` (every record belongs
    to exactly one bucket).  ``BucketState.single(records)`` builds the
    one-bucket state.

    Per-bucket stats are stored as plain Python lists and the derived
    numpy arrays (:attr:`reps`, :attr:`probs`, :attr:`estimates`) are
    materialized lazily: a state is rebuilt once per allocation decision
    in large simulations, the prediction draw only needs a binary search
    over ~10 cumulative probabilities, and at that size list operations
    beat numpy dispatch (docs/PERFORMANCE.md).
    """

    __slots__ = (
        "_lazy_buckets",
        "_breaks",
        "_reps_l",
        "_probs_l",
        "_estimates_l",
        "_cumprobs_l",
        "_arrays",
        "_n_records",
    )

    def __init__(
        self,
        records: RecordList,
        break_indices: Sequence[int],
        stats: Optional[
            Tuple[Sequence[float], Sequence[float], Sequence[float]]
        ] = None,
        trusted: bool = False,
    ) -> None:
        n = len(records)
        if n == 0:
            raise ValueError("cannot build a BucketState from an empty record list")
        if trusted and stats is not None:
            # Hot-path constructor for the per-decision state rebuild:
            # the caller (BucketingAlgorithm.state) owns freshly built
            # break/stat lists straight out of the partition search, so
            # re-validating and re-coercing them here only burns time in
            # the region the insert memmove just cache-evicted.  The
            # lists are adopted without copying — callers must hand over
            # ownership.
            self._breaks: List[int] = break_indices  # type: ignore[assignment]
            reps_l, probs_l, estimates_l = stats  # type: ignore[assignment]
            self._lazy_buckets = None
            self._reps_l = reps_l  # type: ignore[assignment]
            self._probs_l = probs_l  # type: ignore[assignment]
            self._estimates_l = estimates_l  # type: ignore[assignment]
            self._arrays = None
            acc = 0.0
            cum_l: List[float] = []
            for p in probs_l:
                acc += p
                cum_l.append(acc)
            self._cumprobs_l = [c / acc for c in cum_l]
            self._n_records = n
            return
        breaks = list(break_indices)
        if not breaks:
            raise ValueError("break_indices must contain at least the last index")
        prev = breaks[0]
        for b in breaks[1:]:
            if b <= prev:
                raise ValueError(
                    f"break indices must be strictly increasing: {breaks}"
                )
            prev = b
        if breaks[-1] != n - 1:
            raise ValueError(
                f"last break index must be {n - 1} (got {breaks[-1]}): every "
                "record must fall in a bucket"
            )
        if breaks[0] < 0:
            raise IndexError(f"negative break index: {breaks[0]}")

        self._breaks = breaks
        if stats is not None:
            # Precomputed-stats fast path: the partition search already
            # derived (reps, probs, estimates) for the winning
            # configuration via repro.core.kernels.partition_stats (or
            # the fused loops in select_best_partition), which reads
            # the prefix buffers in this constructor's exact
            # float-operation order — reusing them is bit-identical to
            # recomputing.  The per-bucket Bucket objects are built
            # lazily (see :attr:`buckets`) and the invariants checked
            # with scalar loops: K <= 10 on the paper path, where
            # dataclass construction and numpy reductions were profiled
            # hotspots of the per-decision state rebuild.
            reps_in, probs_in, estimates_in = stats
            if not (
                len(reps_in) == len(probs_in) == len(estimates_in) == len(breaks)
            ):
                raise ValueError("stats arrays must align with break_indices")
            reps_l = [float(v) for v in reps_in]
            probs_l = [float(v) for v in probs_in]
            estimates_l = [float(v) for v in estimates_in]
            for rep, prob, est in zip(reps_l, probs_l, estimates_l):
                if not (0.0 <= prob <= 1.0 + 1e-12):
                    raise ValueError(f"bucket probability out of range: {prob}")
                if est > rep + 1e-9 * max(1.0, abs(rep)):
                    raise ValueError(
                        f"bucket estimate {est} exceeds representative {rep}"
                    )
            self._lazy_buckets: Optional[Tuple[Bucket, ...]] = None
        else:
            buckets: List[Bucket] = []
            lo = 0
            total_sig = records.total_significance()
            for hi in breaks:
                rep = records.max_value(lo, hi)
                # The prefix-sum weighted mean can exceed the bucket max
                # by a few ulps through cancellation; clamp, since the
                # estimate is a mean of values that are all <= rep by
                # construction.
                estimate = min(records.weighted_mean(lo, hi), rep)
                buckets.append(
                    Bucket(
                        lo=lo,
                        hi=hi,
                        rep=rep,
                        prob=records.sig_sum(lo, hi) / total_sig,
                        estimate=estimate,
                    )
                )
                lo = hi + 1
            self._lazy_buckets = tuple(buckets)
            reps_l = [b.rep for b in buckets]
            probs_l = [b.prob for b in buckets]
            estimates_l = [b.estimate for b in buckets]
        self._reps_l = reps_l
        self._probs_l = probs_l
        self._estimates_l = estimates_l
        self._arrays: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        # Normalized cumulative probabilities for O(log K) inverse-CDF
        # draws — the allocator draws once per dispatch, so this is a
        # hot path in large simulations.  The running sum matches
        # np.cumsum's sequential accumulation bit-for-bit.
        acc = 0.0
        cum_l = []
        for p in probs_l:
            acc += p
            cum_l.append(acc)
        self._cumprobs_l = [c / acc for c in cum_l]
        self._n_records = n

    @staticmethod
    def single(records: RecordList) -> "BucketState":
        """The trivial state with one bucket containing every record."""
        return BucketState(records, [len(records) - 1])

    # -- checkpointing -----------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-safe snapshot (see :mod:`repro.checkpoint`).

        The derived arrays are stored verbatim rather than rebuilt from
        break indices on restore: the state may be *stale* relative to a
        grown record list (the lazy recompute path of
        :class:`~repro.core.base.BucketingAlgorithm`), and recomputation
        would also re-round the probability normalization.
        """
        return {
            "buckets": [
                [b.lo, b.hi, b.rep, b.prob, b.estimate] for b in self.buckets
            ],
            "cumprobs": list(self._cumprobs_l),
            "n_records": self._n_records,
        }

    @classmethod
    def from_state(cls, state: dict) -> "BucketState":
        """Rebuild a state captured by :meth:`state_dict`, bit-exactly."""
        new = cls.__new__(cls)
        buckets = tuple(
            Bucket(
                lo=int(lo), hi=int(hi), rep=float(rep), prob=float(prob),
                estimate=float(est),
            )
            for lo, hi, rep, prob, est in state["buckets"]
        )
        new._lazy_buckets = buckets
        new._breaks = [b.hi for b in buckets]
        new._reps_l = [b.rep for b in buckets]
        new._probs_l = [b.prob for b in buckets]
        new._estimates_l = [b.estimate for b in buckets]
        new._arrays = None
        new._cumprobs_l = [float(c) for c in state["cumprobs"]]
        new._n_records = int(state["n_records"])
        return new

    # -- inspection -------------------------------------------------------------

    @property
    def buckets(self) -> Tuple[Bucket, ...]:
        if self._lazy_buckets is None:
            built: List[Bucket] = []
            lo = 0
            for j, hi in enumerate(self._breaks):
                built.append(
                    Bucket(
                        lo=lo,
                        hi=hi,
                        rep=self._reps_l[j],
                        prob=self._probs_l[j],
                        estimate=self._estimates_l[j],
                    )
                )
                lo = hi + 1
            self._lazy_buckets = tuple(built)
        return self._lazy_buckets

    def _materialize(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        arrays = self._arrays
        if arrays is None:
            arrays = (
                np.asarray(self._reps_l, dtype=np.float64),
                np.asarray(self._probs_l, dtype=np.float64),
                np.asarray(self._estimates_l, dtype=np.float64),
            )
            self._arrays = arrays
        return arrays

    @property
    def reps(self) -> np.ndarray:
        """Representative values, ascending (read-only view)."""
        return self._materialize()[0]

    @property
    def probs(self) -> np.ndarray:
        """Probability values, summing to 1 (read-only view)."""
        return self._materialize()[1]

    @property
    def estimates(self) -> np.ndarray:
        """Weighted-mean consumption estimates per bucket."""
        return self._materialize()[2]

    @property
    def n_records(self) -> int:
        return self._n_records

    def __len__(self) -> int:
        return len(self._breaks)

    def __getitem__(self, index: int) -> Bucket:
        return self.buckets[index]

    def __repr__(self) -> str:
        reps = ", ".join(f"{b.rep:g}@{b.prob:.3f}" for b in self.buckets)
        return f"BucketState([{reps}])"

    # -- prediction ---------------------------------------------------------------

    def choose_bucket(self, rng: np.random.Generator) -> Bucket:
        """Draw a bucket with the probability values (Section IV-A)."""
        # float() unwraps the numpy scalar so bisect compares native
        # floats (a numpy-scalar comparison per probe costs ~5x more).
        idx = bisect_right(self._cumprobs_l, float(rng.random()))
        idx = min(idx, len(self._breaks) - 1)
        return self.buckets[idx]

    def first_allocation(self, rng: np.random.Generator) -> float:
        """Allocation for a fresh task: the drawn bucket's representative.

        Reads the representative list directly rather than going
        through :meth:`choose_bucket` — this runs once per dispatched
        task and must not force the lazy ``Bucket`` materialization.
        ``bisect_right`` and ``np.searchsorted(..., side="right")``
        agree on every input, so the draw is unchanged.
        """
        idx = bisect_right(self._cumprobs_l, float(rng.random()))
        idx = min(idx, len(self._breaks) - 1)
        return self._reps_l[idx]

    def retry_allocation(
        self, previous_allocation: float, rng: np.random.Generator
    ) -> Optional[float]:
        """Allocation after a resource-exhaustion failure.

        Only buckets with a representative strictly greater than the
        previous allocation are considered, with probabilities
        renormalized over them.  Returns ``None`` when the previous
        allocation already matched or exceeded the largest
        representative — the caller must then fall back to doubling the
        task's observed peak (Section IV-A).
        """
        # Representatives ascend, so the eligible buckets are a suffix.
        reps = self._reps_l
        first = bisect_right(reps, previous_allocation)
        n = len(self._breaks)
        if first >= n:
            return None
        if first == n - 1:
            return reps[-1]
        # Running cumulative sum matches np.cumsum bit-for-bit.
        cum = []
        total = 0.0
        for p in self._probs_l[first:]:
            total += p
            cum.append(total)
        if total <= 0.0:
            # Degenerate (all significance in lower buckets): take the
            # first eligible representative.
            return reps[first]
        draw = float(rng.random())
        idx = first + bisect_right([c / total for c in cum], draw)
        idx = min(idx, n - 1)
        return reps[idx]

    # -- invariant helper (used by tests and debug assertions) ----------------------

    def validate(self) -> None:
        """Raise AssertionError if any structural invariant is violated."""
        buckets = self.buckets
        assert buckets, "state must have at least one bucket"
        assert abs(sum(self._probs_l) - 1.0) < 1e-9, "probabilities must sum to 1"
        assert buckets[0].lo == 0
        assert buckets[-1].hi == self._n_records - 1
        for prev, cur in zip(buckets, buckets[1:]):
            assert cur.lo == prev.hi + 1, "buckets must tile the record list"
            assert cur.rep >= prev.rep, "representatives must be non-decreasing"
        for b in buckets:
            assert b.estimate <= b.rep + 1e-9, "estimate cannot exceed representative"
