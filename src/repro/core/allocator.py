"""The task-oriented adaptive resource allocator.

This module implements the ``Allocator`` sketched in Section IV-D: one
algorithm instance per (task category, resource) pair — categories are
allocated *independently* because "different categories don't
necessarily show a correlation in resource consumption" (Section
III-B) — plus the two policies the algorithms themselves leave open:

* **Exploratory mode** (Section V-A): until a category has produced
  ``min_records`` (10) completed records, tasks get a predefined
  allocation.  Bucketing algorithms use the conservative
  1 core / 1 GB memory / 1 GB disk bootstrap with doubling retries; the
  alternative algorithms allocate a whole machine (Section V-C).
* **Doubling fallback** (Section IV-A): when a retry exhausts the
  algorithm's guidance (no bucket representative above the failed
  allocation), the task's allocation is doubled from its previous peak
  until it succeeds.

The allocator is deliberately free of any workflow- or simulator-
specific coupling: callers drive it with three calls —
:meth:`TaskOrientedAllocator.allocate`,
:meth:`TaskOrientedAllocator.allocate_retry`, and
:meth:`TaskOrientedAllocator.observe` — which is exactly the bucketing
manager's interface in Figure 3a.

**Concurrency contract.**  An allocator instance is a *single-writer*
object: the three Figure-3a calls (plus :meth:`load_state` and
:meth:`reset`) mutate shared state — lazy per-category construction
draws child seeds from the master RNG, predictions consume the
per-instance generators, and ``observe`` rewrites the record stores —
with no internal locking.  Callers that serve concurrent traffic must
serialize all mutating calls through one writer (the
``repro.service`` shards put each allocator behind a single-writer
asyncio queue).  The calls are also *non-re-entrant*: a
``capacity_provider`` callback or algorithm hook must never call back
into the same allocator mid-operation, and a cheap guard raises
``RuntimeError`` if one tries, rather than corrupting state silently.
"""

from __future__ import annotations

import inspect
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Callable, Dict, Iterator, Mapping, Optional, Tuple

import numpy as np

from repro.checkpoint import CheckpointError, generator_state, restore_generator
from repro.core.base import ALGORITHM_REGISTRY, AllocationAlgorithm
from repro.core.resources import (
    CORES,
    DISK,
    EVALUATED_RESOURCES,
    MEMORY,
    PAPER_EXPLORATORY_ALLOCATION,
    PAPER_WORKER_CAPACITY,
    TIME,
    Resource,
    ResourceVector,
)
from repro.core.significance import SignificancePolicy, make_significance_policy

__all__ = [
    "ExploratoryConfig",
    "AllocatorConfig",
    "TaskOrientedAllocator",
    "DEFAULT_MAX_SEEN_GRANULARITY",
]

#: Histogram granularity the Max Seen implementation uses per resource
#: (Section V-C names 250 for the MB-denominated resources; a whole core
#: for cores; exact values for time).
DEFAULT_MAX_SEEN_GRANULARITY: Mapping[Resource, float] = {
    CORES: 1.0,
    MEMORY: 250.0,
    DISK: 250.0,
    TIME: 0.0,
}

#: Exploratory fallbacks for resources that have neither an exploratory
#: component nor a machine capacity.  Wall time is the canonical case:
#: workers do not have a "time capacity", so both lookups come back
#: zero, and a zero-second allowance would kill every bootstrap task on
#: arrival.  One hour matches common batch-system defaults.
DEFAULT_EXPLORATORY_FALLBACKS: Mapping[Resource, float] = {
    TIME: 3600.0,
}


@lru_cache(maxsize=None)
def _init_parameters(cls: type) -> Mapping[str, inspect.Parameter]:
    """Constructor parameters per algorithm class.

    ``inspect.signature`` costs tens of microseconds; a fresh category
    builds one algorithm per resource, so under many-category workloads
    (the allocation service routinely sees thousands) the lookup is hot.
    """
    return inspect.signature(cls.__init__).parameters


@dataclass(frozen=True)
class ExploratoryConfig:
    """Bootstrap policy for a category with too few records.

    Attributes
    ----------
    min_records:
        Completed records required before the algorithm's predictions
        take over (the paper collects 10).
    allocation:
        The conservative exploratory allocation (the paper's
        1 core / 1 GB / 1 GB).  Resources missing from this vector fall
        back to the machine capacity.
    mode:
        ``"auto"`` — conservative for algorithms flagged
        ``conservative_exploration`` (the bucketing family), whole
        machine otherwise, matching the paper's setup;
        ``"conservative"`` / ``"whole_machine"`` force one policy for
        every algorithm (ablation hook E-X2).
    explore_concurrency:
        Maximum tasks of a category allowed to *run concurrently* while
        the category is still exploring; further ready tasks wait so
        they can benefit from the first records instead of burning
        bootstrap allocations.  Without this bound, an idle pool plus a
        deep queue dispatches the whole workflow at the bootstrap
        allocation before the tenth record lands — an exploration storm
        the paper's bounded "exploratory mode" clearly does not exhibit.
        ``None`` defaults to ``max(1, min_records)``; pass a large value
        to disable the gate (storm-behaviour studies do).
    """

    min_records: int = 10
    allocation: ResourceVector = PAPER_EXPLORATORY_ALLOCATION
    mode: str = "auto"
    explore_concurrency: Optional[int] = None

    def __post_init__(self) -> None:
        if self.min_records < 0:
            raise ValueError(f"min_records must be >= 0, got {self.min_records}")
        if self.mode not in ("auto", "conservative", "whole_machine"):
            raise ValueError(f"unknown exploratory mode: {self.mode!r}")
        if self.explore_concurrency is not None and self.explore_concurrency < 1:
            raise ValueError(
                f"explore_concurrency must be >= 1, got {self.explore_concurrency}"
            )

    @property
    def effective_explore_concurrency(self) -> int:
        if self.explore_concurrency is not None:
            return self.explore_concurrency
        return max(1, self.min_records)

    def is_conservative_for(self, algorithm_cls: type) -> bool:
        if self.mode == "conservative":
            return True
        if self.mode == "whole_machine":
            return False
        return bool(getattr(algorithm_cls, "conservative_exploration", False))


@dataclass(frozen=True)
class AllocatorConfig:
    """Full configuration of a :class:`TaskOrientedAllocator`.

    Attributes
    ----------
    algorithm:
        Registry name of the allocation algorithm driving every
        (category, resource) state.
    algorithm_kwargs:
        Extra constructor arguments for the algorithm.
    per_resource_kwargs:
        Per-resource-key overrides merged over ``algorithm_kwargs``
        (e.g. ``{"memory": {"granularity": 500}}``).
    resources:
        The resources to manage; defaults to the paper's evaluated three
        (cores, memory, disk).  Add :data:`~repro.core.resources.TIME`
        or registered custom resources to extend.
    machine_capacity:
        A full worker's capacity, used by Whole Machine, the
        whole-machine exploratory policy, and the allocation clamp.
    exploratory:
        The bootstrap policy.
    doubling_factor:
        Growth factor of the doubling fallback (2.0 in the paper).
    clamp_to_capacity:
        Whether predicted/doubled allocations are capped at the machine
        capacity (a task can never be given more than one worker).
    significance:
        Recency-weighting policy for completed-task records, by registry
        name (``"task_id"`` — the paper's setting — ``"uniform"``,
        ``"exponential_decay"``, ``"window"``) or as a
        :class:`~repro.core.significance.SignificancePolicy` instance.
        Only consulted when ``observe`` is called without an explicit
        significance.
    seed:
        Seed for the allocator-owned RNG driving probabilistic bucket
        draws; child generators are spawned per algorithm instance so
        runs are reproducible regardless of category arrival order.
    """

    algorithm: str = "exhaustive_bucketing"
    algorithm_kwargs: Mapping = field(default_factory=dict)
    per_resource_kwargs: Mapping[str, Mapping] = field(default_factory=dict)
    resources: Tuple[Resource, ...] = EVALUATED_RESOURCES
    machine_capacity: ResourceVector = PAPER_WORKER_CAPACITY
    exploratory: ExploratoryConfig = field(default_factory=ExploratoryConfig)
    doubling_factor: float = 2.0
    clamp_to_capacity: bool = True
    significance: object = "task_id"
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHM_REGISTRY:
            raise KeyError(
                f"unknown algorithm {self.algorithm!r}; "
                f"registered: {sorted(ALGORITHM_REGISTRY)}"
            )
        if not self.resources:
            raise ValueError("at least one resource must be managed")
        if self.doubling_factor <= 1.0:
            raise ValueError(
                f"doubling_factor must exceed 1, got {self.doubling_factor}"
            )

    def with_algorithm(self, algorithm: str, **algorithm_kwargs) -> "AllocatorConfig":
        """A copy of this config running a different algorithm."""
        return replace(
            self, algorithm=algorithm, algorithm_kwargs=algorithm_kwargs
        )


class _CategoryState:
    """Per-category bookkeeping: one algorithm instance per resource."""

    __slots__ = ("algorithms", "completed_records", "version")

    def __init__(self, algorithms: Dict[Resource, AllocationAlgorithm]) -> None:
        self.algorithms = algorithms
        self.completed_records = 0
        #: Bumped on every observe(); lets schedulers detect that a cached
        #: prediction for this category went stale.
        self.version = 0


class TaskOrientedAllocator:
    """Adaptive per-category resource allocator (Figure 3a's manager).

    Examples
    --------
    >>> from repro.core.allocator import TaskOrientedAllocator, AllocatorConfig
    >>> alloc = TaskOrientedAllocator(AllocatorConfig(
    ...     algorithm="greedy_bucketing", seed=7))
    >>> first = alloc.allocate("proc", task_id=0)     # exploratory
    >>> first["cores"], first["memory"]
    (1.0, 1000.0)
    """

    def __init__(self, config: Optional[AllocatorConfig] = None, **overrides) -> None:
        if config is None:
            config = AllocatorConfig(**overrides)
        elif overrides:
            config = replace(config, **overrides)
        self._config = config
        self._rng = np.random.default_rng(config.seed)
        self._categories: Dict[str, _CategoryState] = {}
        algorithm_cls = ALGORITHM_REGISTRY[config.algorithm]
        self._conservative = config.exploratory.is_conservative_for(algorithm_cls)
        if isinstance(config.significance, SignificancePolicy):
            self._significance_policy = config.significance
        else:
            self._significance_policy = make_significance_policy(str(config.significance))
        self._deterministic = bool(
            getattr(algorithm_cls, "deterministic_predictions", False)
        )
        #: category -> (state version, cached prediction vector); only
        #: used for deterministic algorithms, where repeated allocate()
        #: calls against an unchanged state must return the same vector.
        self._prediction_cache: Dict[str, Tuple[int, ResourceVector]] = {}
        #: Optional live ceiling: a callable returning the componentwise
        #: max capacity over currently-alive workers (or ``None`` when
        #: the pool is empty).  When set, retry growth is clamped to it
        #: so an unsatisfiable doubled request is never dispatched.
        self._capacity_provider: Optional[
            Callable[[], Optional[ResourceVector]]
        ] = None
        #: category -> number of retry allocations cut back by a
        #: capacity ceiling (diagnostic only; rebuilt on replay, so
        #: deliberately not part of :meth:`state_dict`).
        self._capacity_clamps: Dict[str, int] = {}
        #: Re-entrancy guard: set while a mutating call is on the stack
        #: (see the module docstring's concurrency contract).
        self._busy = False

    # -- properties -------------------------------------------------------------

    @property
    def config(self) -> AllocatorConfig:
        return self._config

    @property
    def algorithm_name(self) -> str:
        return self._config.algorithm

    @property
    def conservative_exploration(self) -> bool:
        """Whether this allocator bootstraps conservatively (bucketing)."""
        return self._conservative

    def categories(self) -> Tuple[str, ...]:
        return tuple(self._categories)

    def algorithm(self, category: str, resource: Resource) -> AllocationAlgorithm:
        """The live algorithm instance for one (category, resource) pair."""
        return self._state(category).algorithms[resource]

    def records_count(self, category: str) -> int:
        """Completed records observed for a category."""
        state = self._categories.get(category)
        return state.completed_records if state is not None else 0

    def records_counts(self) -> Dict[str, int]:
        """Completed-record counts for every known category."""
        return {
            category: state.completed_records
            for category, state in self._categories.items()
        }

    def digest(self) -> str:
        """sha256 over the canonical :meth:`state_dict` form.

        A cheap bit-identity handle: two allocators that report the same
        digest answer every future request identically (same config
        assumed).  The service layer compares shard digests against
        single-threaded replays, and snapshots embed it for resume
        verification.
        """
        from repro.checkpoint import state_digest

        return state_digest(self.state_dict())

    def in_exploration(self, category: str) -> bool:
        """True while the category is still in exploratory mode."""
        return self.records_count(category) < self._config.exploratory.min_records

    def set_capacity_provider(
        self, provider: Optional[Callable[[], Optional[ResourceVector]]]
    ) -> None:
        """Install a live largest-alive-worker capacity ceiling.

        The resilience layer wires this to
        :meth:`~repro.sim.pool.WorkerPool.largest_alive_capacity` so the
        doubling fallback cannot grow a retry past every worker that
        actually exists.
        """
        self._capacity_provider = provider

    @property
    def capacity_clamps(self) -> Mapping[str, int]:
        """Per-category count of retries cut back by a capacity ceiling."""
        return dict(self._capacity_clamps)

    @property
    def capacity_clamps_total(self) -> int:
        return sum(self._capacity_clamps.values())

    def conservative_allocation(self) -> ResourceVector:
        """Whole-machine allocation used in degraded (circuit-open) mode."""
        values: Dict[Resource, float] = {}
        for res in self._config.resources:
            capacity = self._config.machine_capacity[res]
            if capacity <= 0.0:
                capacity = DEFAULT_EXPLORATORY_FALLBACKS.get(res, 0.0)
            values[res] = capacity
        return ResourceVector(values)

    def version(self, category: str) -> int:
        """Monotone counter bumped whenever a category learns something.

        Schedulers cache a queued task's predicted allocation together
        with this version and refresh the prediction when it changes —
        so a task that waited in the queue through the end of the
        exploratory phase is dispatched with a *current* prediction,
        which is what "allocation at dispatch time" means.
        """
        state = self._categories.get(category)
        return state.version if state is not None else 0

    # -- the three calls of Figure 3a ------------------------------------------------

    @contextmanager
    def _mutating(self, call: str) -> Iterator[None]:
        """Re-entrancy guard around every state-mutating entry point."""
        if self._busy:
            raise RuntimeError(
                f"re-entrant TaskOrientedAllocator.{call}() call: a capacity "
                "provider or algorithm hook called back into an allocator "
                "that is mid-operation (the allocator is single-writer; see "
                "the module docstring's concurrency contract)"
            )
        self._busy = True
        try:
            yield
        finally:
            self._busy = False

    def allocate(self, category: str, task_id: int) -> ResourceVector:
        """First-attempt allocation for a fresh task of ``category``."""
        with self._mutating("allocate"):
            return self._allocate(category, task_id)

    def _allocate(self, category: str, task_id: int) -> ResourceVector:
        state = self._state(category)
        if self._deterministic:
            cached = self._prediction_cache.get(category)
            if cached is not None and cached[0] == state.version:
                return cached[1]
        values: Dict[Resource, float] = {}
        exploring = self.in_exploration(category)
        for res in self._config.resources:
            if exploring:
                values[res] = self._exploratory_value(res)
                continue
            predicted = state.algorithms[res].predict()
            if predicted is None:
                # Algorithm has no guidance (e.g. min_records == 0 and no
                # completions yet): fall back to the exploratory value.
                predicted = self._exploratory_value(res)
            values[res] = self._clamp(res, predicted)
        vector = ResourceVector(values)
        if self._deterministic:
            self._prediction_cache[category] = (state.version, vector)
        return vector

    def allocate_retry(
        self,
        category: str,
        task_id: int,
        previous: ResourceVector,
        observed: ResourceVector,
        exhausted: Tuple[Resource, ...],
    ) -> ResourceVector:
        """Re-allocation after ``previous`` was exhausted.

        ``observed`` is the consumption recorded up to the kill;
        ``exhausted`` names the resources that hit their limit.  Only
        exhausted resources grow — the others keep their previous
        allocation, as growing them would manufacture fragmentation.
        """
        if not exhausted:
            raise ValueError("allocate_retry requires at least one exhausted resource")
        with self._mutating("allocate_retry"):
            return self._allocate_retry(category, previous, observed, exhausted)

    def _allocate_retry(
        self,
        category: str,
        previous: ResourceVector,
        observed: ResourceVector,
        exhausted: Tuple[Resource, ...],
    ) -> ResourceVector:
        state = self._state(category)
        values: Dict[Resource, float] = {r: previous[r] for r in self._config.resources}
        for res in exhausted:
            if res not in values:
                raise KeyError(f"resource {res.key} is not managed by this allocator")
            prev_value = previous[res]
            peak = observed[res]
            suggestion: Optional[float] = None
            if not self.in_exploration(category):
                suggestion = state.algorithms[res].predict_retry(prev_value, peak)
            if suggestion is None:
                suggestion = self._double(prev_value, peak, res)
            unclamped = max(suggestion, prev_value)
            values[res] = self._clamp(res, unclamped)
            if values[res] <= prev_value and values[res] < self._config.machine_capacity[res]:
                # Clamping or a degenerate suggestion failed to grow the
                # allocation; force progress with one doubling step.
                unclamped = self._double(prev_value, peak, res)
                values[res] = self._clamp(res, unclamped)
            ceiling = self._alive_capacity(res)
            if ceiling is not None and 0.0 < ceiling < values[res]:
                # No alive worker can host the grown request: dispatch
                # the largest satisfiable allocation instead and record
                # the clamp so the retry policy can see the task is
                # capacity-bound rather than merely under-allocated.
                values[res] = ceiling
                self._note_clamp(category)
            elif values[res] < unclamped and values[res] <= prev_value:
                # The static machine-capacity clamp stopped growth
                # entirely (allocation pinned at capacity while the
                # algorithm asked for more).
                self._note_clamp(category)
        return ResourceVector(values)

    def observe(
        self,
        category: str,
        peaks: ResourceVector,
        task_id: int,
        significance: Optional[float] = None,
    ) -> None:
        """Ingest a *successfully completed* task's peak consumption.

        When ``significance`` is not given, the configured policy
        supplies it — the default ``task_id`` policy reproduces the
        paper's "significance = task ID" rule (IDs counted from 1;
        Section V-A).
        """
        if significance is None:
            significance = self._significance_policy.significance(task_id)
        with self._mutating("observe"):
            state = self._state(category)
            for res in self._config.resources:
                state.algorithms[res].update(
                    peaks[res], significance=significance, task_id=task_id
                )
            state.completed_records += 1
            state.version += 1

    # -- internals -----------------------------------------------------------------

    def _state(self, category: str) -> _CategoryState:
        state = self._categories.get(category)
        if state is None:
            algorithms = {
                res: self._make_algorithm(res) for res in self._config.resources
            }
            state = _CategoryState(algorithms)
            self._categories[category] = state
        return state

    def _make_algorithm(self, res: Resource) -> AllocationAlgorithm:
        cfg = self._config
        kwargs = dict(cfg.algorithm_kwargs)
        kwargs.update(cfg.per_resource_kwargs.get(res.key, {}))
        cls = ALGORITHM_REGISTRY[cfg.algorithm]
        accepted = _init_parameters(cls)
        # Wire well-known parameters the algorithm accepts but the caller
        # did not pin: worker capacity and the Max Seen histogram width.
        if "capacity" in accepted and "capacity" not in kwargs:
            kwargs["capacity"] = cfg.machine_capacity[res]
        if "granularity" in accepted and "granularity" not in kwargs:
            kwargs["granularity"] = DEFAULT_MAX_SEEN_GRANULARITY.get(res, 0.0)
        if "rng" in accepted and "rng" not in kwargs:
            # Independent child generator per instance: reproducible and
            # insensitive to the order categories first appear.
            kwargs["rng"] = np.random.default_rng(self._rng.integers(2**63))
        return cls(**kwargs)

    def _exploratory_value(self, res: Resource) -> float:
        capacity = self._config.machine_capacity[res]
        if not self._conservative:
            if capacity <= 0.0:
                # Capacity-less resource (wall time): use the fallback.
                return DEFAULT_EXPLORATORY_FALLBACKS.get(res, 0.0)
            return capacity
        value = self._config.exploratory.allocation[res]
        if value <= 0.0:
            # The conservative vector does not cover this resource (e.g.
            # a registered GPU kind): explore with the full capacity,
            # or the per-resource fallback for capacity-less resources.
            value = capacity if capacity > 0.0 else DEFAULT_EXPLORATORY_FALLBACKS.get(res, 0.0)
        return self._clamp(res, value)

    def _double(self, prev_value: float, peak: float, res: Resource) -> float:
        base = max(prev_value, peak)
        if base <= 0.0:
            base = (
                self._config.exploratory.allocation[res]
                or DEFAULT_EXPLORATORY_FALLBACKS.get(res, 0.0)
                or 1.0
            )
        return base * self._config.doubling_factor

    def _alive_capacity(self, res: Resource) -> Optional[float]:
        if self._capacity_provider is None:
            return None
        capacity = self._capacity_provider()
        if capacity is None:
            return None
        return capacity[res]

    def _note_clamp(self, category: str) -> None:
        self._capacity_clamps[category] = self._capacity_clamps.get(category, 0) + 1

    def _clamp(self, res: Resource, value: float) -> float:
        if not self._config.clamp_to_capacity:
            return value
        capacity = self._config.machine_capacity[res]
        if capacity <= 0.0:
            return value
        return min(value, capacity)

    def reset(self) -> None:
        """Forget every category's state (between experiment repeats)."""
        self._categories.clear()
        self._prediction_cache.clear()

    # -- checkpointing -----------------------------------------------------------------

    def state_dict(self) -> dict:
        """Versioned, JSON-safe snapshot of all mutable allocator state.

        Captures the master RNG, every category's per-resource algorithm
        instances (in category insertion order — the order in which they
        consumed child seeds from the master RNG), and the deterministic
        prediction cache.  Restoring via :meth:`load_state` on a freshly
        constructed allocator with the same config yields bit-identical
        predictions for every future request.
        """
        return {
            "algorithm": self._config.algorithm,
            "resources": [res.key for res in self._config.resources],
            "rng": generator_state(self._rng),
            "categories": {
                category: {
                    "completed_records": state.completed_records,
                    "version": state.version,
                    "algorithms": {
                        res.key: state.algorithms[res].state_dict()
                        for res in self._config.resources
                    },
                }
                for category, state in self._categories.items()
            },
            "prediction_cache": {
                category: {"version": version, "vector": vector.state_dict()}
                for category, (version, vector) in self._prediction_cache.items()
            },
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshot captured by :meth:`state_dict`.

        Must be called on an allocator built from the *same config* as
        the one that produced the snapshot.  Categories are recreated in
        their saved insertion order — ``_state`` draws each algorithm's
        child seed from the master RNG exactly as the original did —
        and the master RNG is overwritten last, so subsequent draws
        continue the original stream.
        """
        if state.get("algorithm") != self._config.algorithm:
            raise CheckpointError(
                f"allocator snapshot is for algorithm {state.get('algorithm')!r}; "
                f"this allocator runs {self._config.algorithm!r}"
            )
        managed = [res.key for res in self._config.resources]
        if state.get("resources") != managed:
            raise CheckpointError(
                f"allocator snapshot manages resources {state.get('resources')!r}; "
                f"this allocator manages {managed!r}"
            )
        with self._mutating("load_state"):
            self._categories.clear()
            self._prediction_cache.clear()
            for category, saved in state["categories"].items():
                cat_state = self._state(category)
                cat_state.completed_records = int(saved["completed_records"])
                cat_state.version = int(saved["version"])
                algorithms = saved["algorithms"]
                for res in self._config.resources:
                    cat_state.algorithms[res].load_state(algorithms[res.key])
            restore_generator(self._rng, state["rng"])
            for category, cached in state["prediction_cache"].items():
                self._prediction_cache[category] = (
                    int(cached["version"]),
                    ResourceVector.from_state(cached["vector"]),
                )

    def __repr__(self) -> str:
        return (
            f"TaskOrientedAllocator(algorithm={self._config.algorithm!r}, "
            f"categories={len(self._categories)})"
        )
