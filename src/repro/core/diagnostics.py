"""Allocator diagnostics: watch bucket states evolve.

Answers the questions a practitioner asks when an allocation policy
misbehaves: *how many buckets does the state hold over time?  where are
the representatives?  how often does the state actually change?*  The
paper's observation that "the number of buckets rarely exceeds 10"
(Section V-A) is exactly this kind of measurement.

:class:`StateProbe` wraps one bucketing algorithm instance and records
a snapshot after every update (or every ``stride`` updates);
:class:`AllocatorProbe` attaches probes to every (category, resource)
state of a :class:`~repro.core.allocator.TaskOrientedAllocator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.allocator import TaskOrientedAllocator
from repro.core.base import BucketingAlgorithm
from repro.core.resources import Resource

__all__ = ["StateSnapshot", "StateProbe", "AllocatorProbe"]


@dataclass(frozen=True)
class StateSnapshot:
    """One observation of a bucketing state."""

    n_records: int
    n_buckets: int
    reps: Tuple[float, ...]
    probs: Tuple[float, ...]

    @property
    def top_rep(self) -> float:
        return self.reps[-1] if self.reps else 0.0

    @property
    def expected_allocation(self) -> float:
        """Probability-weighted mean of the representatives."""
        return sum(r * p for r, p in zip(self.reps, self.probs))


class StateProbe:
    """Snapshot a bucketing algorithm's state as records arrive.

    Wraps ``update`` so every ``stride``-th record triggers a state
    recomputation and a snapshot.  Probing is intrusive by design — it
    defeats the lazy-recompute batching — so use it for analysis runs,
    not for timing measurements.
    """

    def __init__(self, algorithm: BucketingAlgorithm, stride: int = 1) -> None:
        if not isinstance(algorithm, BucketingAlgorithm):
            raise TypeError(
                f"StateProbe requires a bucketing algorithm, got {type(algorithm).__name__}"
            )
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self._algorithm = algorithm
        self._stride = stride
        self._since_snapshot = 0
        self.snapshots: List[StateSnapshot] = []
        self._original_update = algorithm.update
        algorithm.update = self._update  # type: ignore[method-assign]

    def _update(self, value: float, significance: float = 1.0, task_id: int = -1) -> None:
        self._original_update(value, significance=significance, task_id=task_id)
        self._since_snapshot += 1
        if self._since_snapshot >= self._stride:
            self._since_snapshot = 0
            self.snapshot()

    def snapshot(self) -> Optional[StateSnapshot]:
        """Force a snapshot of the current state (None if no records)."""
        state = self._algorithm.state
        if state is None:
            return None
        snap = StateSnapshot(
            n_records=self._algorithm.n_records,
            n_buckets=len(state),
            reps=tuple(float(r) for r in state.reps),
            probs=tuple(float(p) for p in state.probs),
        )
        self.snapshots.append(snap)
        return snap

    def detach(self) -> None:
        """Restore the unwrapped update method."""
        self._algorithm.update = self._original_update  # type: ignore[method-assign]

    # -- summaries -------------------------------------------------------------

    def max_buckets_seen(self) -> int:
        return max((s.n_buckets for s in self.snapshots), default=0)

    def bucket_count_series(self) -> List[int]:
        return [s.n_buckets for s in self.snapshots]

    def expected_allocation_series(self) -> List[float]:
        return [s.expected_allocation for s in self.snapshots]


class AllocatorProbe:
    """Probe every bucketing state inside a TaskOrientedAllocator.

    Categories materialize lazily inside the allocator, so the probe
    wraps ``observe`` and attaches :class:`StateProbe` instances the
    first time each (category, resource) state receives a record.
    """

    def __init__(self, allocator: TaskOrientedAllocator, stride: int = 1) -> None:
        self._allocator = allocator
        self._stride = stride
        self.probes: Dict[Tuple[str, Resource], StateProbe] = {}
        self._original_observe = allocator.observe
        allocator.observe = self._observe  # type: ignore[method-assign]

    def _observe(self, category, peaks, task_id, significance=None):
        self._ensure_probes(category)
        return self._original_observe(
            category, peaks, task_id, significance=significance
        )

    def _ensure_probes(self, category: str) -> None:
        for res in self._allocator.config.resources:
            key = (category, res)
            if key in self.probes:
                continue
            algorithm = self._allocator.algorithm(category, res)
            if isinstance(algorithm, BucketingAlgorithm):
                self.probes[key] = StateProbe(algorithm, stride=self._stride)

    def probe(self, category: str, resource: Resource) -> StateProbe:
        return self.probes[category, resource]

    def max_buckets_seen(self) -> int:
        """The paper's 'rarely exceeds 10' measurement, over all states."""
        return max((p.max_buckets_seen() for p in self.probes.values()), default=0)

    def detach(self) -> None:
        self._allocator.observe = self._original_observe  # type: ignore[method-assign]
        for probe in self.probes.values():
            probe.detach()
