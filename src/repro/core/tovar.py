"""Min Waste and Max Throughput job sizing (Tovar et al., TPDS 2018).

The paper evaluates against the two first-allocation strategies of
"A Job Sizing Strategy for High-Throughput Scientific Workflows"
(reference [15]).  Both pick a single first-allocation value from the
empirical distribution of completed-task peaks and rely on an
*at-most-once retry to the maximum seen* when the first allocation
fails (the bucketing algorithms relax exactly this policy with their
bucket ladder — Section VI):

* **Min Waste** picks the candidate minimizing the expected resource
  waste: tasks at or below the allocation waste the fragmentation
  ``a - v``; tasks above it waste the whole failed attempt ``a`` plus
  the fragmentation ``max_seen - v`` of the retry.
* **Max Throughput** picks the candidate maximizing the rate of
  *successful* task completions per unit of allocated resource,
  ``F(a) / a`` — a worker of capacity ``C`` runs ``C/a`` first-attempt
  tasks concurrently, of which the fraction ``F(a)`` succeeds.  This
  prefers aggressively small first allocations (more concurrency) at
  the cost of more retries, which is why the paper's Figure 6 shows
  these strategies carrying a visibly larger failed-allocation share.

Both evaluate every observed peak as a candidate in one vectorized pass
over the sorted values using prefix sums.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import AllocationAlgorithm, register_algorithm
from repro.core.records import RecordList

__all__ = ["TovarJobSizing", "MinWaste", "MaxThroughput"]


class TovarJobSizing(AllocationAlgorithm):
    """Shared machinery of the two Tovar et al. strategies.

    Maintains the sorted record list (counts only — the published
    strategies do not weight by recency) and recomputes the optimal
    first-allocation value lazily after updates.
    """

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(rng=rng)
        self._records = RecordList()
        self._cached: Optional[float] = None
        self._dirty = True

    # -- subclass hook -----------------------------------------------------------

    def objective(
        self, values: np.ndarray, frag_below: np.ndarray, prob_above: np.ndarray, max_seen: float
    ) -> np.ndarray:
        """Score each candidate allocation value; lower is better.

        Parameters
        ----------
        values:
            Sorted candidate allocation values (the observed peaks).
        frag_below:
            ``frag_below[i]`` = sum over records with value <= values[i]
            of ``values[i] - value`` (total fragmentation if values[i]
            were allocated), already divided by the record count.
        prob_above:
            ``prob_above[i]`` = fraction of records strictly above
            values[i] (first-allocation failure probability).
        max_seen:
            The retry allocation (largest observed value).
        """
        raise NotImplementedError

    # -- contract -----------------------------------------------------------------

    def update(self, value: float, significance: float = 1.0, task_id: int = -1) -> None:
        # Tovar job sizing is count-based; ignore the significance weight.
        self._records.add(value=value, significance=1.0, task_id=task_id)
        self._dirty = True

    def predict(self) -> Optional[float]:
        if not self._records:
            return None
        if self._dirty or self._cached is None:
            self._cached = self._optimize()
            self._dirty = False
        return self._cached

    def predict_retry(
        self, previous_allocation: float, observed_peak: float
    ) -> Optional[float]:
        """At-most-once retry to the maximum seen; then give up.

        Returning ``None`` hands over to the allocator's doubling
        fallback, which is the only sound continuation once the maximum
        seen itself proved insufficient.
        """
        if not self._records:
            return None
        max_seen = float(self._records.values[-1])
        if max_seen > max(previous_allocation, observed_peak):
            return max_seen
        return None

    def _optimize(self) -> float:
        values = self._records.values
        n = values.size
        unique_values = np.unique(values)
        # Candidates: the distinct observed peaks.  For each candidate a,
        #   count_below(a)   = #records with value <= a
        #   sum_below(a)     = sum of those values
        # computed from the sorted array's cumulative sums.
        cumsum = np.cumsum(values)
        # Index of the last record <= each unique candidate.
        last_le = np.searchsorted(values, unique_values, side="right") - 1
        count_le = last_le + 1
        sum_le = cumsum[last_le]
        frag_below = (unique_values * count_le - sum_le) / n
        prob_above = 1.0 - count_le / n
        max_seen = float(values[-1])
        scores = self.objective(unique_values, frag_below, prob_above, max_seen)
        return float(unique_values[int(np.argmin(scores))])

    @property
    def records(self) -> RecordList:
        return self._records

    @property
    def n_records(self) -> int:
        return len(self._records)

    def reset(self) -> None:
        self._records = RecordList()
        self._cached = None
        self._dirty = True

    def _extra_state(self) -> dict:
        return {
            "records": self._records.state_dict(),
            "cached": self._cached,
            "dirty": self._dirty,
        }

    def _load_extra_state(self, state: dict) -> None:
        self._records = RecordList.from_state(state["records"])
        cached = state["cached"]
        self._cached = None if cached is None else float(cached)
        self._dirty = bool(state["dirty"])


@register_algorithm
class MinWaste(TovarJobSizing):
    """First allocation minimizing the expected per-task resource waste.

    Expected waste of candidate ``a`` over the empirical distribution:

    ``E[waste](a) = E[(a - v)+] + P(v > a) * (a + E[max_seen - v | v > a])``

    The first term is the internal fragmentation of succeeding tasks;
    the second charges failing tasks the full lost attempt ``a`` plus
    the retry's fragmentation against ``max_seen``.
    """

    name = "min_waste"

    def objective(
        self, values: np.ndarray, frag_below: np.ndarray, prob_above: np.ndarray, max_seen: float
    ) -> np.ndarray:
        records = self._records.values
        n = records.size
        total = float(records.sum())
        # E[(max_seen - v) * 1{v > a}] for each candidate a: totals minus
        # the below-or-equal part.
        cumsum = np.cumsum(records)
        last_le = np.searchsorted(records, values, side="right") - 1
        sum_above = (total - cumsum[last_le]) / n
        count_above = prob_above  # already a fraction
        retry_frag = count_above * max_seen - sum_above
        return frag_below + prob_above * values + retry_frag


@register_algorithm
class MaxThroughput(TovarJobSizing):
    """First allocation maximizing successful completions per resource.

    A worker of capacity ``C`` hosts ``C/a`` concurrent first attempts,
    of which the fraction ``F(a) = P(v <= a)`` succeeds, so the success
    throughput per unit of capacity is ``F(a)/a``.  The objective (to
    minimize) is its reciprocal ``a / F(a)``.  Note this is *not* the
    waste objective shifted — it ignores what failures cost and buys raw
    concurrency, landing on systematically smaller allocations than
    Min Waste.
    """

    name = "max_throughput"

    def objective(
        self, values: np.ndarray, frag_below: np.ndarray, prob_above: np.ndarray, max_seen: float
    ) -> np.ndarray:
        success_fraction = 1.0 - prob_above
        # Every candidate is an observed value, so F(a) >= 1/n > 0.
        return values / success_fraction
