"""Greedy Bucketing (Algorithm 1 of the paper).

Greedy Bucketing answers one question per segment of the sorted record
list: *should this segment be broken into exactly two buckets, and if so
where?*  It scans every candidate break point, scoring each with the
four-case expected-waste formula of Section IV-B
(:func:`repro.core.cost.greedy_split_costs`).  If keeping the segment as
a single bucket (the candidate at the segment's upper end) wins, the
segment stays whole; otherwise the segment is split at the winner and
the procedure recurses into both halves.  Each split is therefore a
local optimum of the expected local resource waste.

The recursion is realized with an explicit stack: bucket counts stay
small in practice (the paper reports rarely above 10), but adversarial
record lists could split down to singleton segments and Python's
recursion limit must not decide the outcome.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.base import BucketingAlgorithm, register_algorithm
from repro.core.cost import greedy_split_costs
from repro.core.records import RecordList

__all__ = [
    "GreedyBucketing",
    "greedy_break_indices",
    "greedy_break_indices_literal",
]


def greedy_break_indices(
    records: RecordList,
    lo: int = 0,
    hi: Optional[int] = None,
    max_buckets: Optional[int] = None,
) -> List[int]:
    """Compute Greedy Bucketing's bucket-end indices for ``records``.

    Follows Algorithm 1: for each segment, pick the candidate break with
    minimum expected waste; the segment's own upper end encodes
    "don't split".  ``max_buckets`` optionally caps the partition size
    (not part of the paper's algorithm; used by the ablation study
    E-X2) — segments stop splitting once the cap is reached, favouring
    the widest segments first.

    Returns the sorted inclusive upper-end index of each bucket; the last
    entry is always ``hi``.
    """
    if hi is None:
        hi = len(records) - 1
    if not (0 <= lo <= hi < len(records)):
        raise IndexError(f"segment [{lo}, {hi}] out of bounds for {len(records)} records")

    ends: List[int] = []
    # Work-list of segments still to be examined.  Processing order does
    # not affect the result (each segment's decision is independent), but
    # a LIFO stack keeps memory at O(depth).
    stack: List[tuple] = [(lo, hi)]
    budget = max_buckets if max_buckets is not None else float("inf")
    if budget < 1:
        raise ValueError(f"max_buckets must be >= 1, got {max_buckets}")

    while stack:
        seg_lo, seg_hi = stack.pop()
        if seg_lo == seg_hi:
            ends.append(seg_hi)
            continue
        # Splitting this segment grows the final bucket count by one
        # (current segments on the stack + emitted ends are all buckets
        # or bucket sources).  Respect the optional cap.
        prospective = len(ends) + len(stack) + 2
        if prospective > budget:
            ends.append(seg_hi)
            continue
        costs = greedy_split_costs(records, seg_lo, seg_hi)
        break_idx = seg_lo + int(np.argmin(costs))
        if break_idx == seg_hi:
            # One bucket over the whole segment is (locally) optimal.
            ends.append(seg_hi)
            continue
        stack.append((break_idx + 1, seg_hi))
        stack.append((seg_lo, break_idx))

    ends.sort()
    return ends


def greedy_break_indices_literal(
    records: RecordList, lo: int = 0, hi: Optional[int] = None
) -> List[int]:
    """Algorithm 1 exactly as written: O(n) cost per candidate.

    The paper's implementation recomputes ``compute_greedy_cost`` from
    the records for every candidate break point, making each segment
    scan O(n^2) — the cause of Table I's near-half-second allocations at
    5000 records.  This literal transcription exists to reproduce that
    measurement;  :func:`greedy_break_indices` computes identical break
    points using prefix sums (O(n) per scan) and is what the
    :class:`GreedyBucketing` algorithm actually runs.
    """
    if hi is None:
        hi = len(records) - 1
    if not (0 <= lo <= hi < len(records)):
        raise IndexError(f"segment [{lo}, {hi}] out of bounds for {len(records)} records")
    values = [r.value for r in records]
    sigs = [r.significance for r in records]

    def cost_of_break(seg_lo: int, i: int, seg_hi: int) -> float:
        w1 = sv1 = 0.0
        for j in range(seg_lo, i + 1):
            w1 += sigs[j]
            sv1 += sigs[j] * values[j]
        w2 = sv2 = 0.0
        for j in range(i + 1, seg_hi + 1):
            w2 += sigs[j]
            sv2 += sigs[j] * values[j]
        total = w1 + w2
        p1, v_lo, rep1 = w1 / total, sv1 / w1, values[i]
        if w2 == 0.0:
            return rep1 - v_lo
        p2, v_hi, rep2 = w2 / total, sv2 / w2, values[seg_hi]
        return (
            p1 * p1 * (rep1 - v_lo)
            + p1 * p2 * (rep2 - v_lo)
            + p2 * p1 * (rep1 + rep2 - v_hi)
            + p2 * p2 * (rep2 - v_hi)
        )

    ends: List[int] = []
    stack = [(lo, hi)]
    while stack:
        seg_lo, seg_hi = stack.pop()
        if seg_lo == seg_hi:
            ends.append(seg_hi)
            continue
        min_cost, break_idx = float("inf"), seg_hi
        for i in range(seg_lo, seg_hi + 1):
            cost = cost_of_break(seg_lo, i, seg_hi)
            if cost < min_cost:
                min_cost, break_idx = cost, i
        if break_idx == seg_hi:
            ends.append(seg_hi)
            continue
        stack.append((break_idx + 1, seg_hi))
        stack.append((seg_lo, break_idx))
    ends.sort()
    return ends


@register_algorithm
class GreedyBucketing(BucketingAlgorithm):
    """The Greedy Bucketing allocation algorithm.

    Parameters
    ----------
    rng:
        Source of randomness for the probabilistic bucket draws.
    record_capacity:
        Optional sliding-window bound on retained records (scaling
        study; the paper retains all records).
    max_buckets:
        Optional cap on the number of buckets (ablation hook; unset in
        the paper's configuration).
    rebucket_interval:
        Run the full partition search only every k-th new record,
        re-anchoring the cached partition in between (see
        :class:`~repro.core.base.BucketingAlgorithm`).  The default 1 is
        paper-exact.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.greedy import GreedyBucketing
    >>> gb = GreedyBucketing(rng=np.random.default_rng(0))
    >>> for task_id, mem in enumerate([200.0] * 5 + [1000.0] * 5):
    ...     gb.update(mem, significance=task_id + 1, task_id=task_id)
    >>> sorted(b.rep for b in gb.state.buckets)
    [200.0, 1000.0]
    """

    name = "greedy_bucketing"

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        record_capacity: Optional[int] = None,
        max_buckets: Optional[int] = None,
        rebucket_interval: int = 1,
    ) -> None:
        super().__init__(
            rng=rng,
            record_capacity=record_capacity,
            rebucket_interval=rebucket_interval,
        )
        self._max_buckets = max_buckets

    def compute_break_indices(self, records: RecordList) -> List[int]:
        return greedy_break_indices(records, max_buckets=self._max_buckets)
