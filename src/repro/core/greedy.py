"""Greedy Bucketing (Algorithm 1 of the paper).

Greedy Bucketing answers one question per segment of the sorted record
list: *should this segment be broken into exactly two buckets, and if so
where?*  It scans every candidate break point, scoring each with the
four-case expected-waste formula of Section IV-B
(:func:`repro.core.cost.greedy_split_costs`).  If keeping the segment as
a single bucket (the candidate at the segment's upper end) wins, the
segment stays whole; otherwise the segment is split at the winner and
the procedure recurses into both halves.  Each split is therefore a
local optimum of the expected local resource waste.

The recursion is realized with an explicit stack: bucket counts stay
small in practice (the paper reports rarely above 10), but adversarial
record lists could split down to singleton segments and Python's
recursion limit must not decide the outcome.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Set

import numpy as np

from repro.core.base import BucketingAlgorithm, register_algorithm
from repro.core.cost import greedy_split_costs
from repro.core.records import RecordList

__all__ = [
    "GreedyBucketing",
    "IncrementalGreedyPartition",
    "greedy_break_indices",
    "greedy_break_indices_literal",
]


def greedy_break_indices(
    records: RecordList,
    lo: int = 0,
    hi: Optional[int] = None,
    max_buckets: Optional[int] = None,
) -> List[int]:
    """Compute Greedy Bucketing's bucket-end indices for ``records``.

    Follows Algorithm 1: for each segment, pick the candidate break with
    minimum expected waste; the segment's own upper end encodes
    "don't split".  ``max_buckets`` optionally caps the partition size
    (not part of the paper's algorithm; used by the ablation study
    E-X2) — segments stop splitting once the cap is reached, favouring
    the widest segments first.

    Returns the sorted inclusive upper-end index of each bucket; the last
    entry is always ``hi``.
    """
    if hi is None:
        hi = len(records) - 1
    if not (0 <= lo <= hi < len(records)):
        raise IndexError(f"segment [{lo}, {hi}] out of bounds for {len(records)} records")

    ends: List[int] = []
    # Work-list of segments still to be examined.  Processing order does
    # not affect the result (each segment's decision is independent), but
    # a LIFO stack keeps memory at O(depth).
    stack: List[tuple] = [(lo, hi)]
    budget = max_buckets if max_buckets is not None else float("inf")
    if budget < 1:
        raise ValueError(f"max_buckets must be >= 1, got {max_buckets}")

    while stack:
        seg_lo, seg_hi = stack.pop()
        if seg_lo == seg_hi:
            ends.append(seg_hi)
            continue
        # Splitting this segment grows the final bucket count by one
        # (current segments on the stack + emitted ends are all buckets
        # or bucket sources).  Respect the optional cap.
        prospective = len(ends) + len(stack) + 2
        if prospective > budget:
            ends.append(seg_hi)
            continue
        costs = greedy_split_costs(records, seg_lo, seg_hi)
        break_idx = seg_lo + int(np.argmin(costs))
        if break_idx == seg_hi:
            # One bucket over the whole segment is (locally) optimal.
            ends.append(seg_hi)
            continue
        stack.append((break_idx + 1, seg_hi))
        stack.append((seg_lo, break_idx))

    ends.sort()
    return ends


def greedy_break_indices_literal(
    records: RecordList, lo: int = 0, hi: Optional[int] = None
) -> List[int]:
    """Algorithm 1 exactly as written: O(n) cost per candidate.

    The paper's implementation recomputes ``compute_greedy_cost`` from
    the records for every candidate break point, making each segment
    scan O(n^2) — the cause of Table I's near-half-second allocations at
    5000 records.  This literal transcription exists to reproduce that
    measurement;  :func:`greedy_break_indices` computes identical break
    points using prefix sums (O(n) per scan) and is what the
    :class:`GreedyBucketing` algorithm actually runs.
    """
    if hi is None:
        hi = len(records) - 1
    if not (0 <= lo <= hi < len(records)):
        raise IndexError(f"segment [{lo}, {hi}] out of bounds for {len(records)} records")
    values = [r.value for r in records]
    sigs = [r.significance for r in records]

    def cost_of_break(seg_lo: int, i: int, seg_hi: int) -> float:
        w1 = sv1 = 0.0
        for j in range(seg_lo, i + 1):
            w1 += sigs[j]
            sv1 += sigs[j] * values[j]
        w2 = sv2 = 0.0
        for j in range(i + 1, seg_hi + 1):
            w2 += sigs[j]
            sv2 += sigs[j] * values[j]
        total = w1 + w2
        p1, v_lo, rep1 = w1 / total, sv1 / w1, values[i]
        if w2 == 0.0:
            return rep1 - v_lo
        p2, v_hi, rep2 = w2 / total, sv2 / w2, values[seg_hi]
        return (
            p1 * p1 * (rep1 - v_lo)
            + p1 * p2 * (rep2 - v_lo)
            + p2 * p1 * (rep1 + rep2 - v_hi)
            + p2 * p2 * (rep2 - v_hi)
        )

    ends: List[int] = []
    stack = [(lo, hi)]
    while stack:
        seg_lo, seg_hi = stack.pop()
        if seg_lo == seg_hi:
            ends.append(seg_hi)
            continue
        min_cost, break_idx = float("inf"), seg_hi
        for i in range(seg_lo, seg_hi + 1):
            cost = cost_of_break(seg_lo, i, seg_hi)
            if cost < min_cost:
                min_cost, break_idx = cost, i
        if break_idx == seg_hi:
            ends.append(seg_hi)
            continue
        stack.append((break_idx + 1, seg_hi))
        stack.append((seg_lo, break_idx))
    ends.sort()
    return ends


class IncrementalGreedyPartition:
    """Maintain a greedy partition under streaming inserts by local repair.

    Greedy Bucketing's split decisions are *local*: whether (and where)
    a segment splits depends only on the records inside it.  This engine
    exploits that locality: it keeps the last computed break indices,
    and when a record is inserted it shifts the affected bucket ends by
    one (O(K) for K buckets) and marks the receiving bucket *dirty*.
    The next query re-runs the greedy recursion only inside the dirty
    buckets and splices the sub-partitions back — touching the records
    of the dirty segments instead of all n.

    Unlike :class:`~repro.core.exhaustive.IncrementalExhaustivePartition`
    this repair is a **heuristic, not an identity**: a full re-search
    re-examines every ancestor split with the grown record population,
    so its break points can drift from the locally repaired ones.  Both
    are fixpoints of the same local-split rule — every kept bucket was
    declared unsplittable by the same cost scan — but they are not
    guaranteed equal, which is why the engine is strictly **opt-in**
    (``GreedyBucketing(incremental=True)``) and off by default, and why
    it refuses to run under a ``max_buckets`` cap (the cap couples
    segments globally, breaking locality).

    Any eviction (the bucket ends of evicted records are unknown without
    a scan) desynchronizes the engine; the next query falls back to one
    full search and resumes incrementally from its result.

    The cache serializes bit-exactly (:meth:`cache_state`): a restored
    engine resumes from the same breaks and dirty set, so a
    kill/resume mid-stream reproduces the exact allocation sequence.
    """

    #: Resync when local repair has grown the bucket count past this
    #: multiple of the last full search's count — splices only ever
    #: split, so without the bound fragmentation accumulates without
    #: limit (~3x after a few thousand inserts in profiling runs).
    MAX_FRAGMENTATION = 2.0

    __slots__ = (
        "_records",
        "_breaks",
        "_dirty",
        "_synced",
        "_full_count",
        "incremental_updates",
        "resyncs",
        "splices",
        "queries",
    )

    def __init__(self, records: RecordList) -> None:
        self._records = records
        self._breaks: Optional[List[int]] = None
        self._dirty: Set[int] = set()
        self._synced = False
        self._full_count = 1
        self.incremental_updates = 0
        self.resyncs = 0
        self.splices = 0
        self.queries = 0

    @property
    def synced(self) -> bool:
        return self._synced

    def invalidate(self) -> None:
        """Force a full search at the next query."""
        self._synced = False
        self._breaks = None
        self._dirty.clear()

    def cache_state(self) -> Optional[Dict[str, object]]:
        """Serializable cache: breaks + dirty set, restored bit-exactly."""
        if not self._synced or self._breaks is None:
            return None
        return {
            "breaks": list(self._breaks),
            "dirty": sorted(self._dirty),
            "full_count": self._full_count,
        }

    def restore_cache(self, state: object) -> None:
        if not isinstance(state, dict):
            self.invalidate()
            return
        try:
            breaks = [int(b) for b in state["breaks"]]  # type: ignore[index]
            dirty = {int(d) for d in state["dirty"]}  # type: ignore[index]
            full_count = int(state["full_count"])  # type: ignore[index]
        except (KeyError, TypeError, ValueError):
            self.invalidate()
            return
        if not breaks or full_count < 1 or any(
            d >= len(breaks) or d < 0 for d in dirty
        ):
            self.invalidate()
            return
        self._breaks = breaks
        self._dirty = dirty
        self._full_count = full_count
        self._synced = True

    def observe(
        self,
        value: Optional[float],
        eviction: object,
        pos: Optional[int] = None,
    ) -> None:
        """Fold one :meth:`RecordList.add` outcome into the cached breaks.

        ``pos`` is the index the record landed at in the sorted list;
        every cached bucket end at or above it moves up by one and the
        receiving bucket is marked dirty.  Evictions (including batch
        compactions) desynchronize — repairing around an arbitrary
        removal would need the same scan a resync performs anyway.
        """
        if not self._synced:
            return
        if value is None and eviction is None:
            return
        if eviction is not None or pos is None:
            self._synced = False
            return
        breaks = self._breaks
        assert breaks is not None
        self.incremental_updates += 1
        b = bisect_left(breaks, pos)
        if b == len(breaks):
            # Appended past the last bucket end: the new maximum extends
            # the last bucket.
            b -= 1
        for t in range(b, len(breaks)):
            breaks[t] += 1
        self._dirty.add(b)

    def break_indices(self) -> Optional[List[int]]:
        """Current break indices, repairing dirty buckets in place."""
        records = self._records
        n = len(records)
        if n == 0:
            return None
        breaks = self._breaks
        if (
            not self._synced
            or breaks is None
            or breaks[-1] != n - 1
            or len(breaks) > self.MAX_FRAGMENTATION * self._full_count
        ):
            breaks = greedy_break_indices(records)
            self._breaks = breaks
            self._full_count = max(len(breaks), 1)
            self._dirty.clear()
            self._synced = True
            self.resyncs += 1
            self.queries += 1
            return list(breaks)
        if self._dirty:
            # Descending order keeps lower ordinals stable while later
            # slices are spliced.
            for b in sorted(self._dirty, reverse=True):
                lo = breaks[b - 1] + 1 if b > 0 else 0
                hi = breaks[b]
                if lo == hi:
                    continue
                sub = greedy_break_indices(records, lo, hi)
                if len(sub) > 1:
                    breaks[b : b + 1] = sub
                self.splices += 1
            self._dirty.clear()
        self.queries += 1
        return list(breaks)


@register_algorithm
class GreedyBucketing(BucketingAlgorithm):
    """The Greedy Bucketing allocation algorithm.

    Parameters
    ----------
    rng:
        Source of randomness for the probabilistic bucket draws.
    record_capacity:
        Optional sliding-window bound on retained records (scaling
        study; the paper retains all records).
    max_buckets:
        Optional cap on the number of buckets (ablation hook; unset in
        the paper's configuration).
    rebucket_interval:
        Run the full partition search only every k-th new record,
        re-anchoring the cached partition in between (see
        :class:`~repro.core.base.BucketingAlgorithm`).  The default 1 is
        paper-exact.
    incremental:
        Repair the previous partition locally with
        :class:`IncrementalGreedyPartition` instead of re-running the
        full search per decision.  **Off by default**: the repair is a
        fixpoint of the same local-split rule but is not guaranteed to
        match the full search's break points (see the engine docs), so
        enabling it trades paper-exactness for O(dirty-segment) decision
        cost.  Ignored (with the full search kept) when ``max_buckets``
        is set — the cap couples segments globally.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.greedy import GreedyBucketing
    >>> gb = GreedyBucketing(rng=np.random.default_rng(0))
    >>> for task_id, mem in enumerate([200.0] * 5 + [1000.0] * 5):
    ...     gb.update(mem, significance=task_id + 1, task_id=task_id)
    >>> sorted(b.rep for b in gb.state.buckets)
    [200.0, 1000.0]
    """

    name = "greedy_bucketing"

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        record_capacity: Optional[int] = None,
        max_buckets: Optional[int] = None,
        rebucket_interval: int = 1,
        incremental: bool = False,
        record_compaction: str = "evict_min",
    ) -> None:
        # Set before super().__init__: the base constructor calls the
        # _make_partition_engine hook, which reads both.
        self._max_buckets = max_buckets
        self._incremental = bool(incremental)
        super().__init__(
            rng=rng,
            record_capacity=record_capacity,
            rebucket_interval=rebucket_interval,
            record_compaction=record_compaction,
        )

    def _make_partition_engine(self) -> Optional[IncrementalGreedyPartition]:
        if not self._incremental or self._max_buckets is not None:
            return None
        return IncrementalGreedyPartition(self._records)

    def compute_break_indices(self, records: RecordList) -> List[int]:
        engine = self._partition_engine
        if engine is not None and records is self._records:
            breaks = engine.break_indices()
            if breaks is not None:
                return breaks
        return greedy_break_indices(records, max_buckets=self._max_buckets)
