"""K-means bucketing (the other clustering method of Phung et al. 2021).

Reference [11] ("Not all tasks are created equal") clusters task
resource records two ways: by quantiles
(:class:`~repro.core.quantized.QuantizedBucketing`) and by 1-D k-means.
The IPDPS paper evaluates the quantile variant; the k-means variant is
included here for completeness and as an extra comparison point — it is
the natural "obvious alternative" to the waste-optimal break-point
search the bucketing algorithms perform.

1-D k-means is solved with Lloyd's algorithm over the sorted record
values (deterministic quantile-spread initialization, so predictions
are reproducible).  Cluster upper bounds become the bucket ladder:
tasks are first allocated the lowest cluster's maximum and climb on
failure, mirroring the quantized variant's policy.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.base import AllocationAlgorithm, register_algorithm
from repro.core.records import RecordList

__all__ = ["KMeansBucketing", "kmeans_1d"]


def kmeans_1d(
    values: np.ndarray, k: int, max_iterations: int = 50
) -> Tuple[np.ndarray, np.ndarray]:
    """Lloyd's algorithm on sorted 1-D data.

    Returns ``(centroids, labels)`` with centroids ascending and labels
    aligned with the (sorted) input.  Initialization places centroids at
    evenly spaced quantiles, which for sorted 1-D data converges to a
    stable local optimum deterministically.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot cluster an empty value array")
    k = min(k, np.unique(values).size)
    quantiles = (np.arange(k) + 0.5) / k
    centroids = np.quantile(values, quantiles)
    labels = np.zeros(values.size, dtype=np.intp)
    for _ in range(max_iterations):
        # Assign: nearest centroid.  For sorted 1-D data the boundaries
        # are the centroid midpoints.
        boundaries = (centroids[:-1] + centroids[1:]) / 2.0
        new_labels = np.searchsorted(boundaries, values, side="right")
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        # Update: mean of each cluster (empty clusters keep their spot).
        for j in range(k):
            members = values[labels == j]
            if members.size:
                centroids[j] = members.mean()
        order = np.argsort(centroids)
        centroids = centroids[order]
    return centroids, labels


@register_algorithm
class KMeansBucketing(AllocationAlgorithm):
    """Cluster records with 1-D k-means; allocate the cluster maxima.

    Parameters
    ----------
    k:
        Number of clusters (reference [11] uses small fixed k; default 3).
    """

    name = "kmeans_bucketing"

    def __init__(self, k: int = 3, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(rng=rng)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self._k = k
        self._records = RecordList()
        self._reps: Optional[Tuple[float, ...]] = None

    @property
    def k(self) -> int:
        return self._k

    def update(self, value: float, significance: float = 1.0, task_id: int = -1) -> None:
        # Like the quantile variant, [11]'s clustering is count-based.
        self._records.add(value=value, significance=1.0, task_id=task_id)
        self._reps = None

    def bucket_reps(self) -> Optional[Tuple[float, ...]]:
        """The ladder of cluster maxima, ascending."""
        if not self._records:
            return None
        if self._reps is None:
            values = self._records.values
            _, labels = kmeans_1d(values, self._k)
            reps: List[float] = []
            for j in range(labels.max() + 1):
                members = values[labels == j]
                if members.size:
                    reps.append(float(members.max()))
            deduped: List[float] = []
            for rep in sorted(reps):
                if not deduped or rep > deduped[-1]:
                    deduped.append(rep)
            self._reps = tuple(deduped)
        return self._reps

    def predict(self) -> Optional[float]:
        reps = self.bucket_reps()
        if reps is None:
            return None
        return reps[0]

    def predict_retry(
        self, previous_allocation: float, observed_peak: float
    ) -> Optional[float]:
        reps = self.bucket_reps()
        if reps is None:
            return None
        floor = max(previous_allocation, observed_peak)
        for rep in reps:
            if rep > floor:
                return rep
        return None

    @property
    def records(self) -> RecordList:
        return self._records

    @property
    def n_records(self) -> int:
        return len(self._records)

    def reset(self) -> None:
        self._records = RecordList()
        self._reps = None

    def _extra_state(self) -> dict:
        # Lloyd's algorithm here is deterministic in the sorted values,
        # so the reps cache is dropped and lazily rebuilt after restore.
        return {"records": self._records.state_dict()}

    def _load_extra_state(self, state: dict) -> None:
        self._records = RecordList.from_state(state["records"])
        self._reps = None
