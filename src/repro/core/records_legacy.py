"""The seed's Python-object-backed RecordList, kept as a reference.

This module is the pre-fast-path implementation of
:class:`repro.core.records.RecordList`: a sorted Python list of
:class:`~repro.core.records.ResourceRecord` objects mutated with
``bisect.insort``, with every numpy view rebuilt from scratch (an
``np.fromiter`` walk over the record objects) after each mutation.  That
rebuild made the simulator's update->predict alternation O(n) per
completed task.

It is retained for two consumers only:

* the equivalence test suite (``tests/core/test_records_equivalence.py``)
  proves the array-backed replacement reproduces this implementation's
  observable behavior on random insert/evict sequences;
* the perf harness (``benchmarks/perf/bench_core.py``) measures the
  speedup of the replacement against this baseline and records it in
  ``BENCH_core.json``.

Do not import this from production code paths.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.records import ResourceRecord

__all__ = ["LegacyRecordList"]


class LegacyRecordList:
    """A list of :class:`ResourceRecord` kept sorted by value.

    Appends are O(log n) search + O(n) insert (a python list ``insort``),
    which is far below the cost of recomputing a bucketing state and has
    never shown up in profiles; the numpy views are rebuilt lazily and
    cached until the next mutation, so a burst of completions followed by
    one allocation request costs one rebuild (the update batching the
    paper describes in Section V-C).

    A ``capacity`` bound turns the list into a sliding window over the
    *most significant* records: when full, appending evicts the record
    with the smallest significance.  The paper keeps all records; the
    bound exists for the >10k-task scaling study (E-X1 in DESIGN.md).
    """

    __slots__ = ("_records", "_capacity", "_values", "_sigs", "_sig_prefix", "_sigval_prefix")

    def __init__(
        self,
        records: Iterable[ResourceRecord] = (),
        capacity: Optional[int] = None,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._records: List[ResourceRecord] = sorted(records)
        if capacity is not None and len(self._records) > capacity:
            self._evict_to_capacity()
        self._invalidate()

    # -- mutation ------------------------------------------------------------

    def append(self, record: ResourceRecord) -> None:
        """Insert a record, keeping value order; evict if over capacity."""
        bisect.insort(self._records, record)
        if self._capacity is not None and len(self._records) > self._capacity:
            self._evict_to_capacity()
        self._invalidate()

    def add(self, value: float, significance: float = 1.0, task_id: int = -1) -> None:
        """Convenience: build and append a record."""
        self.append(ResourceRecord(value=value, significance=significance, task_id=task_id))

    def extend(self, records: Iterable[ResourceRecord]) -> None:
        for record in records:
            bisect.insort(self._records, record)
        if self._capacity is not None and len(self._records) > self._capacity:
            self._evict_to_capacity()
        self._invalidate()

    def _evict_to_capacity(self) -> None:
        assert self._capacity is not None
        excess = len(self._records) - self._capacity
        if excess <= 0:
            return
        # Evict the lowest-significance records: they are the oldest under
        # the paper's significance = task-ID convention.
        by_sig = sorted(range(len(self._records)), key=lambda i: self._records[i].significance)
        drop = set(by_sig[:excess])
        self._records = [r for i, r in enumerate(self._records) if i not in drop]

    def _invalidate(self) -> None:
        self._values = None
        self._sigs = None
        self._sig_prefix = None
        self._sigval_prefix = None

    # -- views ---------------------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        """Sorted record values as a read-only float64 array."""
        if self._values is None:
            arr = np.fromiter(
                (r.value for r in self._records), dtype=np.float64, count=len(self._records)
            )
            arr.flags.writeable = False
            self._values = arr
        return self._values

    @property
    def significances(self) -> np.ndarray:
        """Significances aligned with :attr:`values`."""
        if self._sigs is None:
            arr = np.fromiter(
                (r.significance for r in self._records),
                dtype=np.float64,
                count=len(self._records),
            )
            arr.flags.writeable = False
            self._sigs = arr
        return self._sigs

    @property
    def sig_prefix(self) -> np.ndarray:
        """``sig_prefix[i]`` = sum of significances of records [0, i]."""
        if self._sig_prefix is None:
            arr = np.cumsum(self.significances)
            arr.flags.writeable = False
            self._sig_prefix = arr
        return self._sig_prefix

    @property
    def sigval_prefix(self) -> np.ndarray:
        """``sigval_prefix[i]`` = sum of significance*value of records [0, i]."""
        if self._sigval_prefix is None:
            arr = np.cumsum(self.significances * self.values)
            arr.flags.writeable = False
            self._sigval_prefix = arr
        return self._sigval_prefix

    # -- range queries ---------------------------------------------------------

    def sig_sum(self, lo: int, hi: int) -> float:
        """Total significance of records with indices in [lo, hi]."""
        self._check_range(lo, hi)
        prefix = self.sig_prefix
        return float(prefix[hi] - (prefix[lo - 1] if lo > 0 else 0.0))

    def weighted_mean(self, lo: int, hi: int) -> float:
        """Significance-weighted mean value over indices [lo, hi].

        This is the paper's estimator for the consumption of a task that
        falls in a bucket (the v_lo / v_hi / v_i formulas of Sections
        IV-B and IV-C).
        """
        self._check_range(lo, hi)
        sp, svp = self.sig_prefix, self.sigval_prefix
        below_sig = sp[lo - 1] if lo > 0 else 0.0
        below_sigval = svp[lo - 1] if lo > 0 else 0.0
        total_sig = sp[hi] - below_sig
        return float((svp[hi] - below_sigval) / total_sig)

    def max_value(self, lo: int, hi: int) -> float:
        """Maximum value over indices [lo, hi] — just ``values[hi]`` since sorted."""
        self._check_range(lo, hi)
        return float(self.values[hi])

    def _check_range(self, lo: int, hi: int) -> None:
        if not (0 <= lo <= hi < len(self._records)):
            raise IndexError(
                f"record range [{lo}, {hi}] out of bounds for {len(self._records)} records"
            )

    def index_below(self, value: float) -> Optional[int]:
        """Index of the record with the largest value strictly below ``value``.

        Used by Exhaustive Bucketing's candidate-break-point mapping
        (Section IV-D, step 2): each evenly spaced candidate value is
        mapped "to the closest record that has a lower value than it".
        Returns ``None`` if every record's value is >= ``value``.
        """
        idx = int(np.searchsorted(self.values, value, side="left")) - 1
        return idx if idx >= 0 else None

    # -- container protocol ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ResourceRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> ResourceRecord:
        return self._records[index]

    def __bool__(self) -> bool:
        return bool(self._records)

    def __repr__(self) -> str:
        if not self._records:
            return "LegacyRecordList(empty)"
        return (
            f"LegacyRecordList(n={len(self._records)}, "
            f"min={self._records[0].value:g}, max={self._records[-1].value:g})"
        )

    # -- misc ---------------------------------------------------------------------

    @property
    def capacity(self) -> Optional[int]:
        return self._capacity

    def total_significance(self) -> float:
        return float(self.sig_prefix[-1]) if self._records else 0.0

    def snapshot(self) -> Tuple[ResourceRecord, ...]:
        """An immutable copy of the current records, in value order."""
        return tuple(self._records)
