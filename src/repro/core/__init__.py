"""Core allocation algorithms and the adaptive resource allocator.

This subpackage contains the paper's primary contribution:

* :mod:`repro.core.resources` — the resource model (cores, memory, disk,
  wall time, and user-registered resource kinds) and ``ResourceVector``.
* :mod:`repro.core.records` — significance-weighted resource records of
  completed tasks and the sorted, numpy-backed ``RecordList``.
* :mod:`repro.core.buckets` — ``Bucket`` / ``BucketState``: the partition
  of a record list used to derive probabilistic allocations.
* :mod:`repro.core.cost` — expected-waste cost kernels shared by the two
  bucketing algorithms (vectorized, with pure-Python references).
* :mod:`repro.core.greedy` — Greedy Bucketing (Algorithm 1).
* :mod:`repro.core.exhaustive` — Exhaustive Bucketing (Algorithm 2).
* :mod:`repro.core.baselines` — Whole Machine and Max Seen.
* :mod:`repro.core.tovar` — Min Waste and Max Throughput job sizing
  (Tovar et al., TPDS 2018).
* :mod:`repro.core.quantized` — Quantized Bucketing (Phung et al.,
  WORKS 2021).
* :mod:`repro.core.hybrid` — the Quantized-then-Bucketing switchover the
  paper suggests for outlier-poisoned startups.
* :mod:`repro.core.allocator` — the task-oriented allocator that maintains
  one algorithm instance per (task category, resource) pair, runs the
  exploratory bootstrap, and applies the retry/doubling policy.
"""

from repro.core.allocator import AllocatorConfig, ExploratoryConfig, TaskOrientedAllocator
from repro.core.base import ALGORITHM_REGISTRY, AllocationAlgorithm, make_algorithm
from repro.core.baselines import MaxSeen, WholeMachine
from repro.core.buckets import Bucket, BucketState
from repro.core.exhaustive import ExhaustiveBucketing
from repro.core.greedy import GreedyBucketing
from repro.core.hybrid import HybridBucketing
from repro.core.kmeans import KMeansBucketing
from repro.core.quantized import QuantizedBucketing
from repro.core.records import RecordList, ResourceRecord
from repro.core.resources import Resource, ResourceVector
from repro.core.significance import (
    ExponentialDecaySignificance,
    SignificancePolicy,
    TaskIdSignificance,
    UniformSignificance,
    WindowSignificance,
    make_significance_policy,
)
from repro.core.tovar import MaxThroughput, MinWaste

__all__ = [
    "Resource",
    "ResourceVector",
    "ResourceRecord",
    "RecordList",
    "Bucket",
    "BucketState",
    "AllocationAlgorithm",
    "make_algorithm",
    "ALGORITHM_REGISTRY",
    "GreedyBucketing",
    "ExhaustiveBucketing",
    "WholeMachine",
    "MaxSeen",
    "MinWaste",
    "MaxThroughput",
    "QuantizedBucketing",
    "KMeansBucketing",
    "HybridBucketing",
    "TaskOrientedAllocator",
    "ExploratoryConfig",
    "AllocatorConfig",
    "SignificancePolicy",
    "TaskIdSignificance",
    "UniformSignificance",
    "ExponentialDecaySignificance",
    "WindowSignificance",
    "make_significance_policy",
]
