"""Single-writer allocation shards.

A shard owns one :class:`~repro.core.allocator.TaskOrientedAllocator`
(which is single-writer by contract — see ``repro.core.allocator``'s
module docstring) behind an asyncio queue drained by exactly one writer
task.  Every mutating call flows through that queue, so feedback ingest
can never race an allocation; concurrent submissions are *coalesced*:
the writer drains whatever is queued, write-ahead-logs the whole batch
with one group commit, then applies the operations strictly in queue
order.  Responses are therefore bit-identical to a sequential client
issuing the same operations in the applied order — the linearizability
tests replay exactly that claim.

The applied-operation sequence number (``seq``) is the shard's logical
clock: it orders the WAL, stamps every response, and drives the
backpressure breaker (so breaker cooldowns count operations, never
wall-clock — the shard stays deterministic and reprolint-R1 clean).

**Exactly-once:** an operation carrying a client idempotency ``key`` is
applied at most once per key.  The shard remembers the last
``dedup_window`` keyed responses; a repeat of a remembered key is
answered with the stored response *verbatim* — no new seq, no WAL
entry, no allocator mutation.  Keys ride the WAL inside their operation
documents and the remembered responses are carried in snapshots, so
duplicate suppression survives crash/resume: a client that retries the
same key across a mid-WAL-append crash and a daemon restart observes
one applied allocation and bit-identical responses.

**Crash points:** the WAL-append and apply boundaries host named
:mod:`repro.service.chaos` crash sites, so "what if we die here?" is a
seeded test, not a thought experiment.  With nothing armed the hits are
a single attribute check.

**Degraded mode:** a storage error (``OSError`` — real or injected by
:mod:`repro.faultfs`) during the WAL append does *not* kill the writer.
The planned batch is rolled back (sequence numbers and breaker state
restored — the WAL must stay gap-free), the poisoned handle is dropped
without a retry-fsync (fsyncgate), and the shard turns read-only:
mutating submissions fail fast with the typed
:class:`StorageUnavailable` (the wire layer maps it to
``storage_unavailable`` + ``retry_after``) until a periodic probe —
every ``probe_interval``-th refused batch, a deterministic count, never
wall-clock — manages to repair the journal tail and reopen a fresh
handle, at which point the probing batch commits normally and the shard
heals itself.
"""

from __future__ import annotations

import asyncio
import os
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.checkpoint import (
    CheckpointError,
    JournalCorruptError,
    JournalWriter,
    quarantine_file,
    repair_journal_tail,
)
from repro.core.allocator import TaskOrientedAllocator
from repro.core.resources import RESOURCES, ResourceVector
from repro.service.chaos import CRASH_POINTS, CrashPointFired
from repro.sim.resilience import CircuitBreaker, CircuitBreakerConfig

__all__ = [
    "OP_ALLOCATE",
    "OP_RETRY",
    "OP_RECORD",
    "MUTATING_OPS",
    "DEGRADED_RETRY_AFTER_S",
    "StorageUnavailable",
    "shard_of",
    "shard_seed",
    "apply_op",
    "AllocationShard",
]

#: Suggested client backoff while a shard is degraded: long enough for a
#: transient disk hiccup to clear, short enough that the count-based
#: recovery probe gets exercised by a retrying client.
DEGRADED_RETRY_AFTER_S = 0.25


class StorageUnavailable(RuntimeError):
    """The shard's storage is failing writes; mutating ops are refused.

    The typed, *non-ambiguous* storage refusal: unlike a crash, the
    operation was definitely **not** applied (the batch rolled back), so
    any client may retry verbatim after ``retry_after`` — no idempotency
    key required.  The wire layer maps this to the retryable
    ``storage_unavailable`` error code.
    """

    def __init__(
        self,
        shard: Optional[int],
        reason: str,
        retry_after: float = DEGRADED_RETRY_AFTER_S,
    ) -> None:
        scope = "service" if shard is None else f"shard {shard}"
        super().__init__(f"{scope} storage unavailable: {reason}")
        self.shard = shard
        self.reason = reason
        self.retry_after = retry_after

OP_ALLOCATE = "allocate"
OP_RETRY = "allocate_retry"
OP_RECORD = "record"

#: The operations a shard applies (and write-ahead logs).
MUTATING_OPS = (OP_ALLOCATE, OP_RETRY, OP_RECORD)

# Named crash sites at the durability boundaries of the single writer.
# "before" a WAL append the batch is lost entirely (client retries
# re-apply it); "after" it the batch is logged but unapplied (recovery
# replays it and the dedup window answers the retries).
SITE_WAL_APPEND_BEFORE = CRASH_POINTS.register("shard.wal-append.before")
SITE_WAL_APPEND_AFTER = CRASH_POINTS.register("shard.wal-append.after")
SITE_APPLY_BEFORE = CRASH_POINTS.register("shard.apply.before")
SITE_APPLY_AFTER = CRASH_POINTS.register("shard.apply.after")


def shard_of(category: str, n_shards: int) -> int:
    """Stable category -> shard map (crc32; independent of hash seed)."""
    return zlib.crc32(category.encode("utf-8")) % n_shards


def shard_seed(base_seed: int, index: int) -> int:
    """Deterministic per-shard allocator seed.

    Derived through :class:`numpy.random.SeedSequence` so shard streams
    are statistically independent, yet any reference replay (tests, WAL
    recovery on another host) reconstructs the exact same seed from
    ``(base_seed, index)`` alone.
    """
    return int(np.random.SeedSequence([base_seed, index]).generate_state(1, np.uint64)[0])


def apply_op(
    allocator: TaskOrientedAllocator, op: Dict[str, Any], shed: bool = False
) -> Dict[str, Any]:
    """Apply one operation document to an allocator, sequentially.

    This is the *only* place operation semantics live: the live shard
    writer, WAL recovery, and the test suite's single-threaded reference
    replays all call it, which is what makes "replay the claimed order"
    a meaningful check.  ``shed=True`` answers an allocation request
    conservatively without touching the allocator at all (the
    backpressure path), so a shed operation is state-neutral by
    construction.
    """
    kind = op["op"]
    category = str(op["category"])
    if kind == OP_ALLOCATE:
        if shed:
            vector = allocator.conservative_allocation()
            mode = "conservative"
        else:
            exploring = allocator.in_exploration(category)
            vector = allocator.allocate(category, int(op["task_id"]))
            mode = "exploratory" if exploring else "predicted"
        return {"allocation": vector.state_dict(), "mode": mode}
    if kind == OP_RETRY:
        if shed:
            return {
                "allocation": allocator.conservative_allocation().state_dict(),
                "mode": "conservative",
            }
        vector = allocator.allocate_retry(
            category,
            int(op["task_id"]),
            previous=ResourceVector.from_state(op["previous"]),
            observed=ResourceVector.from_state(op["observed"]),
            exhausted=tuple(RESOURCES.get(str(k)) for k in op["exhausted"]),
        )
        return {"allocation": vector.state_dict(), "mode": "retry"}
    if kind == OP_RECORD:
        significance = op.get("significance")
        allocator.observe(
            category,
            ResourceVector.from_state(op["peaks"]),
            int(op["task_id"]),
            significance=None if significance is None else float(significance),
        )
        return {"recorded": True, "records_count": allocator.records_count(category)}
    raise ValueError(f"unknown operation {kind!r}")


@dataclass
class _Work:
    """One submission: a contiguous run of operations and their reply."""

    ops: Sequence[Dict[str, Any]]
    depth: int
    future: "asyncio.Future[List[Dict[str, Any]]]"


@dataclass
class _Quiesce:
    """Snapshot barrier: the writer parks until released."""

    parked: asyncio.Event = field(default_factory=asyncio.Event)
    release: asyncio.Event = field(default_factory=asyncio.Event)


class _Stop:
    """Sentinel draining the queue and terminating the writer."""


class AllocationShard:
    """One single-writer shard: allocator + WAL + backpressure breaker."""

    def __init__(
        self,
        index: int,
        allocator: TaskOrientedAllocator,
        wal_path: Optional[str] = None,
        durability: str = "batch",
        backpressure: Optional[CircuitBreakerConfig] = None,
        queue_high_watermark: int = 1024,
        dedup_window: int = 0,
        probe_interval: int = 16,
    ) -> None:
        if probe_interval < 1:
            raise ValueError(f"probe_interval must be >= 1, got {probe_interval}")
        self.index = index
        self.allocator = allocator
        #: Applied-operation count; the shard's logical clock.
        self.seq = 0
        self.shed_count = 0
        self.failed_ops = 0
        #: Keyed requests answered from the dedup window instead of applied.
        self.dedup_hits = 0
        #: Set when a crash point killed the writer (tests restart the service).
        self.crashed = False
        #: Read-only: the WAL append failed and no probe has healed it yet.
        self.degraded = False
        self.degraded_reason: Optional[str] = None
        #: Storage errors absorbed by entering (or staying in) degraded mode.
        self.storage_failures = 0
        #: Highest seq known to be durably in the WAL (== ``seq`` while
        #: healthy; frozen at the pre-failure value while degraded).
        self.last_durable_seq = 0
        self._probe_interval = probe_interval
        self._probe_ticks = 0
        self._wal_path = wal_path
        self._durability = durability
        self._wal: Optional[JournalWriter] = None
        self._queue: "asyncio.Queue[Any]" = asyncio.Queue()
        self._watermark = queue_high_watermark
        self._dedup_window = dedup_window
        #: key -> stored response, oldest first (insertion == apply order).
        self._dedup: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._breaker: Optional[CircuitBreaker] = None
        if backpressure is not None and backpressure.enabled:
            self._breaker = CircuitBreaker(backpressure)
        self._writer: Optional[asyncio.Task] = None

    # -- lifecycle -------------------------------------------------------------

    def open_wal(self) -> None:
        if self._wal_path is not None and self._wal is None:
            self._wal = JournalWriter(self._wal_path, sync=self._durability)

    def start(self) -> None:
        """Open the WAL and launch the single writer task."""
        self.open_wal()
        self._writer = asyncio.get_running_loop().create_task(
            self._writer_loop(), name=f"repro-shard-{self.index}"
        )

    async def stop(self) -> None:
        """Drain every queued operation, then terminate the writer.

        The WAL stays open so the service can snapshot-then-truncate
        after the quiesce; call :meth:`close_wal` last.
        """
        if self._writer is None:
            return
        self._queue.put_nowait(_Stop())
        await self._writer
        self._writer = None

    def close_wal(self) -> None:
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    def abort(self) -> None:
        """Crash simulation: kill the writer without drain or snapshot."""
        if self._writer is not None:
            self._writer.cancel()
            self._writer = None
        self.close_wal()

    # -- submission ------------------------------------------------------------

    async def submit(self, op: Dict[str, Any]) -> Dict[str, Any]:
        """Apply one operation; resolves once it is logged and applied."""
        return (await self.submit_many([op]))[0]

    async def submit_many(self, ops: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Apply several operations *contiguously*, in the given order.

        The batch travels the queue as one item, so no concurrent
        operation can interleave inside it — this is what makes
        ``allocate_batch`` bit-identical to a sequential loop.
        """
        if self._writer is None:
            raise RuntimeError(f"shard {self.index} is not started")
        future: "asyncio.Future[List[Dict[str, Any]]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._queue.put_nowait(_Work(ops=ops, depth=self._queue.qsize(), future=future))
        return await future

    def quiesce(self) -> _Quiesce:
        """Enqueue a snapshot barrier; the writer parks on reaching it."""
        barrier = _Quiesce()
        self._queue.put_nowait(barrier)
        return barrier

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    @property
    def breaker(self) -> Optional[CircuitBreaker]:
        return self._breaker

    # -- the single writer -----------------------------------------------------

    async def _writer_loop(self) -> None:
        try:
            while True:
                items: List[Any] = [await self._queue.get()]
                while not self._queue.empty():
                    items.append(self._queue.get_nowait())
                batch: List[_Work] = []
                for item in items:
                    if isinstance(item, _Work):
                        batch.append(item)
                        continue
                    self._commit(batch)
                    batch = []
                    if isinstance(item, _Stop):
                        return
                    if isinstance(item, _Quiesce):
                        item.parked.set()
                        await item.release.wait()
                self._commit(batch)
        except CrashPointFired as exc:
            self._die(exc)

    def _die(self, exc: CrashPointFired) -> None:
        """An armed crash point fired mid-commit: simulate process death.

        Everything still queued fails with the same ambiguous
        :class:`CrashPointFired` the in-flight batch got — exactly what
        a remote client observes when the daemon dies under it — and
        the WAL handle is dropped without a final fsync (whatever
        reached the OS survives, nothing else does).
        """
        self.crashed = True
        while not self._queue.empty():
            item = self._queue.get_nowait()
            if isinstance(item, _Work) and not item.future.done():
                item.future.set_exception(exc)
            elif isinstance(item, _Quiesce):  # pragma: no cover - defensive
                item.parked.set()
        if self._wal is not None:
            self._wal.abandon()
            self._wal = None

    def _commit(self, batch: List[_Work]) -> None:
        """Group-commit one drained batch: dedup, plan, log, apply, reply.

        On :class:`CrashPointFired` every future in the batch fails with
        the ambiguous crash error (some operations may already be logged
        or applied — the client cannot know, which is the point) and the
        exception propagates to :meth:`_writer_loop`.
        """
        if not batch:
            return
        try:
            self._commit_inner(batch)
        except CrashPointFired as exc:
            for work in batch:
                if not work.future.done():
                    work.future.set_exception(exc)
            raise
        except StorageUnavailable as exc:
            # Typed, non-fatal, non-ambiguous: the batch rolled back and
            # was definitely not applied.  The writer loop survives so
            # the shard keeps serving refusals (and recovery probes).
            for work in batch:
                if not work.future.done():
                    work.future.set_exception(exc)

    def _commit_inner(self, batch: List[_Work]) -> None:
        if self.degraded:
            self._probe_ticks += 1
            if self._probe_ticks % self._probe_interval != 0 or not self._probe_storage():
                raise StorageUnavailable(
                    self.index, self.degraded_reason or "storage write failed"
                )
        # Captured for rollback: a failed WAL append must leave no seq
        # gap (replay would refuse the log) and no phantom breaker
        # outcomes for operations that never happened.
        seq_before = self.seq
        breaker_before = (
            self._breaker.state_dict() if self._breaker is not None else None
        )
        # (work, op, seq, shed, key, dup): dup entries resolve from the
        # dedup window after the batch applies.
        planned: List[Tuple[_Work, Dict[str, Any], int, bool, Optional[str], bool]] = []
        entries: List[Dict[str, Any]] = []
        # Keys planned for apply in THIS batch: group commit can coalesce
        # two submissions of the same key into one batch, where the dedup
        # window (populated only at apply time) cannot yet see the first.
        planned_keys: Dict[str, int] = {}
        for work in batch:
            for op in work.ops:
                key = op.get("key") if self._dedup_window else None
                if key is not None and (key in self._dedup or key in planned_keys):
                    planned.append((work, op, 0, False, key, True))
                    continue
                if key is not None:
                    planned_keys[key] = id(work)
                self.seq += 1
                shed = False
                if self._breaker is not None:
                    now = float(self.seq)
                    if op["op"] in (OP_ALLOCATE, OP_RETRY):
                        shed = self._breaker.conservative(now)
                    self._breaker.record_outcome(work.depth <= self._watermark, now)
                planned.append((work, op, self.seq, shed, key, False))
                entry: Dict[str, Any] = {"seq": self.seq, "op": op}
                if shed:
                    entry["shed"] = True
                entries.append(entry)
        if entries:
            CRASH_POINTS.hit(SITE_WAL_APPEND_BEFORE)
            if self._wal is not None:
                try:
                    self._wal.append_many(entries)
                except OSError as exc:
                    self._enter_degraded(exc, seq_before, breaker_before)
                    raise StorageUnavailable(
                        self.index, f"WAL append failed: {exc}"
                    ) from exc
                self.last_durable_seq = self.seq
            CRASH_POINTS.hit(SITE_WAL_APPEND_AFTER)
        results: Dict[int, List[Dict[str, Any]]] = {}
        errors: Dict[int, BaseException] = {}
        for work, op, seq, shed, key, dup in planned:
            if dup:
                # Exactly-once: answer the retry with the stored
                # response verbatim — no allocator touch, no new seq.
                # A same-batch duplicate resolves here too: its first
                # occurrence applied (and was remembered) earlier in
                # this very loop.
                stored = self._dedup.get(key) if key is not None else None
                if stored is not None:
                    self.dedup_hits += 1
                    results.setdefault(id(work), []).append(dict(stored))
                else:
                    # The first occurrence failed to apply; mirror its
                    # error so both callers see the same outcome.
                    exc = errors.get(
                        planned_keys.get(key, -1),
                        RuntimeError(f"duplicate of failed keyed op {key!r}"),
                    )
                    self.failed_ops += 1
                    errors[id(work)] = exc
                    results.setdefault(id(work), []).append({"error": str(exc)})
                continue
            CRASH_POINTS.hit(SITE_APPLY_BEFORE)
            try:
                result = apply_op(self.allocator, op, shed=shed)
            except Exception as exc:
                # Pre-validation makes this unreachable for well-formed
                # requests; a misbehaving allocator still must not kill
                # the writer loop (every queued client would hang).
                self.failed_ops += 1
                errors[id(work)] = exc
                result = {"error": str(exc)}
            CRASH_POINTS.hit(SITE_APPLY_AFTER)
            if shed:
                self.shed_count += 1
            result["shard"] = self.index
            result["seq"] = seq
            if key is not None and id(work) not in errors:
                self._remember(key, result)
            results.setdefault(id(work), []).append(result)
        for work in batch:
            if work.future.done():  # pragma: no cover - cancelled client
                continue
            error = errors.get(id(work))
            if error is not None:
                work.future.set_exception(error)
            else:
                work.future.set_result(results[id(work)])

    def _remember(self, key: str, result: Dict[str, Any]) -> None:
        """Store a keyed response; evict the oldest beyond the window."""
        self._dedup[key] = dict(result)
        while len(self._dedup) > self._dedup_window:
            self._dedup.popitem(last=False)

    # -- degraded mode ---------------------------------------------------------

    def _enter_degraded(
        self,
        exc: OSError,
        seq_before: int,
        breaker_before: Optional[Dict[str, Any]],
    ) -> None:
        """A WAL append failed: roll the batch back and turn read-only.

        The handle is abandoned, never fsync-retried (fsyncgate: a
        failed write/fsync may already have dropped the dirty pages, so
        "retry on the same handle" would report durability for bytes
        that are gone); the probe reopens a fresh one.
        """
        self.storage_failures += 1
        self.degraded = True
        self.degraded_reason = str(exc)
        self.seq = seq_before
        if self._breaker is not None and breaker_before is not None:
            self._breaker.load_state(breaker_before)
        self._probe_ticks = 0
        if self._wal is not None:
            self._wal.abandon()
            self._wal = None

    # reproflow: sync-boundary -- degraded-mode healing probe; bounded repair I/O while storage is already stalled
    def _probe_storage(self) -> bool:
        """Try to heal a degraded shard: repair the tail, reopen fresh.

        A short write may have left half a frame at the end of the
        journal; appending to it would weld the next record onto debris,
        so the tail is truncated to the last complete valid frame before
        a new :class:`~repro.checkpoint.JournalWriter` opens.  If the
        repair finds *mid-stream* corruption (rot hit the live WAL while
        we were degraded — a double fault), the journal is quarantined:
        in-memory state is intact and the next snapshot restores full
        durability; only a crash before that snapshot would lose the
        quarantined suffix.
        """
        assert self._wal_path is not None
        try:
            try:
                repair_journal_tail(self._wal_path)
            except JournalCorruptError:
                quarantine_file(self._wal_path)
            self._wal = JournalWriter(self._wal_path, sync=self._durability)
        except OSError as exc:
            self.degraded_reason = f"recovery probe failed: {exc}"
            self._wal = None
            return False
        self.degraded = False
        self.degraded_reason = None
        return True

    # -- durability ------------------------------------------------------------

    def state(self) -> Dict[str, Any]:
        """This shard's slice of the multi-shard snapshot envelope."""
        return {
            "seq": self.seq,
            "shed_count": self.shed_count,
            "allocator": self.allocator.state_dict(),
            "breaker": self._breaker.state_dict() if self._breaker is not None else None,
            "dedup": [[key, dict(resp)] for key, resp in self._dedup.items()],
            "dedup_hits": self.dedup_hits,
        }

    def restore(self, state: Dict[str, Any]) -> None:
        self.seq = int(state["seq"])
        self.last_durable_seq = self.seq
        self.shed_count = int(state.get("shed_count", 0))
        self.allocator.load_state(state["allocator"])
        if self._breaker is not None and state.get("breaker") is not None:
            self._breaker.load_state(state["breaker"])
        self._dedup = OrderedDict(
            (str(key), dict(resp)) for key, resp in state.get("dedup", [])
        )
        self.dedup_hits = int(state.get("dedup_hits", 0))

    def replay(self, entries: Sequence[Dict[str, Any]]) -> int:
        """Re-apply WAL entries newer than the restored snapshot.

        Entries at or below the snapshot's ``seq`` are skipped (the WAL
        is only truncated *after* a covering snapshot commits, so
        overlap is expected after a crash between the two).  A gap means
        a corrupt log and is refused.
        """
        applied = 0
        for entry in entries:
            seq = int(entry["seq"])
            if seq <= self.seq:
                continue
            if seq != self.seq + 1:
                raise CheckpointError(
                    f"shard {self.index} WAL gap: have seq {self.seq}, "
                    f"next entry is {seq}"
                )
            shed = bool(entry.get("shed", False))
            op = entry["op"]
            result = apply_op(self.allocator, op, shed=shed)
            if shed:
                self.shed_count += 1
            self.seq = seq
            key = op.get("key") if self._dedup_window else None
            if key is not None:
                # Rebuild the dedup window exactly as the live commit
                # did: apply_op is deterministic, so the reconstructed
                # response is bit-identical to the one the crash lost.
                result["shard"] = self.index
                result["seq"] = seq
                self._remember(key, result)
            applied += 1
        self.last_durable_seq = self.seq
        return applied

    def truncate_wal(self) -> None:
        if self._wal is not None:
            self._wal.truncate()

    def archive_wal(self, segment_path: str) -> bool:
        """Move the live WAL aside as one generation's archived segment.

        Called right after a covering snapshot committed (under the
        quiesce barrier): instead of truncating — which would destroy
        the only replay source an *older* snapshot generation needs for
        fallback — the WAL is closed, renamed to ``segment_path``, and a
        fresh empty WAL opens.  Returns whether a non-empty segment was
        archived.  A degraded shard archives whatever the dying handle
        left behind (torn tails are read-tolerated) and stays closed;
        the recovery probe reopens it.
        """
        if self._wal_path is None:
            return False
        self.close_wal()
        moved = False
        if os.path.exists(self._wal_path) and os.path.getsize(self._wal_path) > 0:
            os.replace(self._wal_path, segment_path)
            moved = True
        if not self.degraded:
            self.open_wal()
        return moved

    # -- introspection ---------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "seq": self.seq,
            "queue_depth": self.queue_depth,
            "shed": self.shed_count,
            "failed_ops": self.failed_ops,
            "dedup_size": len(self._dedup),
            "dedup_hits": self.dedup_hits,
            "degraded": self.degraded,
            "last_durable_seq": self.last_durable_seq,
            "storage_failures": self.storage_failures,
            "wal_bytes": (
                os.path.getsize(self._wal_path)
                if self._wal_path is not None and os.path.exists(self._wal_path)
                else 0
            ),
            "categories": len(self.allocator.categories()),
            "records": sum(self.allocator.records_counts().values()),
            "breaker": (
                self._breaker.state(float(self.seq)).value
                if self._breaker is not None
                else None
            ),
        }

    def __repr__(self) -> str:
        return (
            f"AllocationShard(index={self.index}, seq={self.seq}, "
            f"depth={self.queue_depth})"
        )
