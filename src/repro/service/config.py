"""Configuration of one allocation service instance."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.allocator import AllocatorConfig
from repro.core.resources import ResourceVector
from repro.sim.resilience import CircuitBreakerConfig

__all__ = ["ServiceConfig", "DURABILITY_MODES"]

#: WAL commit policies, strongest first: ``"op"`` fsyncs every applied
#: operation, ``"batch"`` group-commits each drained queue batch with a
#: single fsync (the default — at most one torn batch tail is at risk,
#: which the torn-line-tolerant reader absorbs), ``"none"`` leaves
#: flushing to the OS (benchmarks and tests).
DURABILITY_MODES = ("batch", "op", "none")


@dataclass(frozen=True)
class ServiceConfig:
    """Everything one :class:`~repro.service.AllocationService` needs.

    Attributes
    ----------
    allocator:
        The allocator configuration every shard runs.  Each shard gets
        its *own* :class:`~repro.core.allocator.TaskOrientedAllocator`
        whose seed is derived deterministically from ``allocator.seed``
        (``None`` is pinned to 0 — a service must be replayable) and the
        shard index via :func:`repro.service.shards.shard_seed`.
    n_shards:
        Number of single-writer shards; categories are mapped to shards
        by the stable hash :func:`repro.service.shards.shard_of`.
    data_dir:
        Durability root (one WAL per shard plus a multi-shard snapshot
        envelope).  ``None`` runs fully in memory.
    durability:
        WAL commit policy, one of :data:`DURABILITY_MODES`.
    backpressure:
        Per-shard circuit breaker over queue depth; default disabled.
        When enabled, each applied operation feeds the breaker one
        outcome (success iff the submitter saw the shard queue at or
        below ``queue_high_watermark``), with the shard's applied-op
        sequence number as the breaker's logical clock — so ``cooldown``
        counts *operations*, not seconds.  While open, allocation
        requests are shed to
        :meth:`~repro.core.allocator.TaskOrientedAllocator.conservative_allocation`
        without consulting (or mutating) the algorithm; feedback
        (``record``) is never shed.
    queue_high_watermark:
        Queue depth above which a submission counts as a failure in the
        breaker window.
    capacity:
        Optional static alive-capacity ceiling installed as every
        shard's capacity provider, so ``allocate_retry`` growth is
        clamped exactly as the simulator's largest-alive-worker clamp.
    dedup_window:
        Per-shard idempotency window: the most recent ``dedup_window``
        keyed responses are remembered (WAL-logged with their operations
        and carried in snapshots, so duplicate suppression survives
        crash/resume).  A mutating request repeating a remembered
        ``key`` is answered with the stored response verbatim — applied
        exactly once, no new sequence number.  ``0`` disables dedup.
    max_connections:
        Concurrent wire connections the server accepts; excess
        connections get a typed ``overloaded`` error (with
        ``retry_after``) and a clean close.
    max_inflight_requests:
        Requests allowed in flight across all connections; excess
        requests are answered ``overloaded`` without touching a shard.
    read_timeout:
        Per-connection read deadline in seconds (``None`` disables): a
        connection idle (or dribbling, slow-loris style) past the
        deadline mid-request gets a typed ``timeout`` error and is
        closed.
    snapshot_retention:
        Generations of the multi-shard snapshot (plus their archived WAL
        segments) kept on disk.  Recovery walks the chain newest-first
        and falls back past quarantined (corrupt) generations, so more
        retention buys more at-rest-corruption tolerance at the cost of
        disk.  ``1`` keeps only the latest (no fallback).
    degraded_probe_interval:
        While a shard is degraded (its WAL append failed with a storage
        error), every Nth refused mutating batch probes the disk by
        repairing the journal tail and reopening a fresh handle — the
        auto-recovery path once the disk heals.  Counted in batches, not
        wall-clock, so degraded behavior stays deterministic.
    """

    allocator: AllocatorConfig = field(default_factory=lambda: AllocatorConfig(seed=0))
    n_shards: int = 4
    data_dir: Optional[str] = None
    durability: str = "batch"
    backpressure: CircuitBreakerConfig = field(default_factory=CircuitBreakerConfig)
    queue_high_watermark: int = 1024
    capacity: Optional[ResourceVector] = None
    dedup_window: int = 1024
    max_connections: int = 128
    max_inflight_requests: int = 1024
    read_timeout: Optional[float] = None
    snapshot_retention: int = 3
    degraded_probe_interval: int = 16

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.durability not in DURABILITY_MODES:
            raise ValueError(
                f"durability must be one of {DURABILITY_MODES}, got {self.durability!r}"
            )
        if self.queue_high_watermark < 1:
            raise ValueError(
                f"queue_high_watermark must be >= 1, got {self.queue_high_watermark}"
            )
        if self.dedup_window < 0:
            raise ValueError(f"dedup_window must be >= 0, got {self.dedup_window}")
        if self.max_connections < 1:
            raise ValueError(
                f"max_connections must be >= 1, got {self.max_connections}"
            )
        if self.max_inflight_requests < 1:
            raise ValueError(
                f"max_inflight_requests must be >= 1, got {self.max_inflight_requests}"
            )
        if self.read_timeout is not None and self.read_timeout <= 0:
            raise ValueError(
                f"read_timeout must be > 0 when given, got {self.read_timeout}"
            )
        if self.snapshot_retention < 1:
            raise ValueError(
                f"snapshot_retention must be >= 1, got {self.snapshot_retention}"
            )
        if self.degraded_probe_interval < 1:
            raise ValueError(
                "degraded_probe_interval must be >= 1, got "
                f"{self.degraded_probe_interval}"
            )

    @property
    def base_seed(self) -> int:
        """The seed shard seeds are derived from (``None`` pinned to 0)."""
        return 0 if self.allocator.seed is None else int(self.allocator.seed)

    def shard_allocator_config(self, index: int) -> AllocatorConfig:
        """The allocator config of shard ``index`` (derived seed)."""
        from repro.service.shards import shard_seed

        return replace(self.allocator, seed=shard_seed(self.base_seed, index))
