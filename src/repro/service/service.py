"""The in-process async allocation service.

:class:`AllocationService` fronts ``n_shards`` single-writer
:class:`~repro.service.shards.AllocationShard` instances with the
four-call API the ROADMAP's service decomposition asks for —
``allocate``, ``allocate_retry``, ``record``, ``allocate_batch`` —
plus durability:

* every applied operation is write-ahead logged to its shard's WAL
  (group commit per drained batch);
* :meth:`snapshot` takes a *consistent cut*: every shard writer parks
  at a quiesce barrier, the multi-shard envelope is written atomically
  (``repro.checkpoint.save_checkpoint``, kind
  :data:`~repro.checkpoint.SERVICE_KIND`), the WALs are truncated, and
  the writers resume — no operation is ever split across the cut;
* :meth:`start` recovers: restore the latest snapshot (if any), replay
  each shard's WAL tail through the exact same
  :func:`~repro.service.shards.apply_op` the live writer uses, then
  re-snapshot so the recovered state is durable before traffic resumes.

Given the same operation stream, a killed-and-resumed service answers
the remaining operations bit-identically to an uninterrupted run (the
kill/resume golden test asserts this byte-for-byte).
"""

from __future__ import annotations

import asyncio
import os
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.checkpoint import (
    SERVICE_KIND,
    CheckpointError,
    load_checkpoint,
    read_jsonl,
    save_checkpoint,
)
from repro.core.allocator import TaskOrientedAllocator
from repro.core.resources import Resource, ResourceVector
from repro.service.chaos import CRASH_POINTS
from repro.service.config import ServiceConfig
from repro.service.protocol import ADMIN_OPS, ProtocolError, validate_request
from repro.service.shards import (
    OP_ALLOCATE,
    OP_RECORD,
    OP_RETRY,
    AllocationShard,
    shard_of,
)

__all__ = ["AllocationService", "SNAPSHOT_FILENAME"]

#: The multi-shard snapshot envelope inside ``data_dir``.
SNAPSHOT_FILENAME = "service.snapshot.json"

# Crash sites around the snapshot write: "before" loses the cut (the
# WALs still cover everything), "after" has the cut on disk but the
# WALs not yet truncated (recovery's seq filter skips the overlap).
SITE_SNAPSHOT_BEFORE = CRASH_POINTS.register("service.snapshot.before")
SITE_SNAPSHOT_AFTER = CRASH_POINTS.register("service.snapshot.after")


def _wal_filename(index: int) -> str:
    return f"shard-{index:02d}.wal"


class AllocationService:
    """Sharded, durable, backpressured allocation service."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self._config = config if config is not None else ServiceConfig()
        self._shards: List[AllocationShard] = []
        self._started = False
        self._snapshot_lock: Optional[asyncio.Lock] = None
        self.recovered_ops = 0

    # -- properties ------------------------------------------------------------

    @property
    def config(self) -> ServiceConfig:
        return self._config

    @property
    def resources(self) -> Sequence[Resource]:
        return self._config.allocator.resources

    @property
    def started(self) -> bool:
        return self._started

    @property
    def shards(self) -> Sequence[AllocationShard]:
        return tuple(self._shards)

    def shard_for(self, category: str) -> int:
        """The shard index serving ``category`` (stable hash)."""
        return shard_of(category, self._config.n_shards)

    # -- lifecycle -------------------------------------------------------------

    def _build_shards(self) -> None:
        config = self._config
        self._shards = []
        for index in range(config.n_shards):
            allocator = TaskOrientedAllocator(config.shard_allocator_config(index))
            if config.capacity is not None:
                ceiling = config.capacity
                allocator.set_capacity_provider(lambda ceiling=ceiling: ceiling)
            wal_path = None
            if config.data_dir is not None:
                wal_path = os.path.join(config.data_dir, _wal_filename(index))
            self._shards.append(
                AllocationShard(
                    index,
                    allocator,
                    wal_path=wal_path,
                    durability=config.durability,
                    backpressure=config.backpressure,
                    queue_high_watermark=config.queue_high_watermark,
                    dedup_window=config.dedup_window,
                )
            )

    async def start(self) -> None:
        """Build the shards, recover from ``data_dir``, start the writers."""
        if self._started:
            raise RuntimeError("service already started")
        self._build_shards()
        self._snapshot_lock = asyncio.Lock()
        if self._config.data_dir is not None:
            os.makedirs(self._config.data_dir, exist_ok=True)
            self._recover()
        for shard in self._shards:
            shard.start()
        self._started = True

    def _fingerprint(self) -> Dict[str, Any]:
        """Config identity a snapshot must match to be resumable."""
        config = self._config
        return {
            "n_shards": config.n_shards,
            "algorithm": config.allocator.algorithm,
            "resources": [res.key for res in config.allocator.resources],
            "base_seed": config.base_seed,
        }

    def _snapshot_path(self) -> str:
        assert self._config.data_dir is not None
        return os.path.join(self._config.data_dir, SNAPSHOT_FILENAME)

    def _recover(self) -> None:
        """Restore snapshot + WAL tails, then make the recovery durable."""
        path = self._snapshot_path()
        if os.path.exists(path):
            _, payload = load_checkpoint(path, kind=SERVICE_KIND)
            fingerprint = payload.get("fingerprint")
            if fingerprint != self._fingerprint():
                raise CheckpointError(
                    f"service snapshot {path!r} was written by a different "
                    f"configuration: snapshot {fingerprint!r} vs "
                    f"running {self._fingerprint()!r}"
                )
            states = payload["shards"]
            if len(states) != len(self._shards):
                raise CheckpointError(
                    f"snapshot holds {len(states)} shards; service runs "
                    f"{len(self._shards)}"
                )
            for shard, state in zip(self._shards, states):
                shard.restore(state)
        recovered = 0
        for shard in self._shards:
            wal_path = os.path.join(
                self._config.data_dir, _wal_filename(shard.index)
            )
            if os.path.exists(wal_path):
                recovered += shard.replay(read_jsonl(wal_path))
        self.recovered_ops = recovered
        # Make the recovered state durable *before* accepting traffic:
        # snapshot covers snapshot+WAL-tail, then the WALs restart empty.
        self._write_snapshot()
        for shard in self._shards:
            shard.open_wal()
            shard.truncate_wal()

    def _write_snapshot(self) -> str:
        """Write the multi-shard envelope (callers ensure quiescence)."""
        CRASH_POINTS.hit(SITE_SNAPSHOT_BEFORE)
        path = self._snapshot_path()
        save_checkpoint(
            path,
            SERVICE_KIND,
            {
                "fingerprint": self._fingerprint(),
                "shards": [shard.state() for shard in self._shards],
            },
        )
        CRASH_POINTS.hit(SITE_SNAPSHOT_AFTER)
        return path

    async def stop(self, snapshot: bool = True) -> None:
        """Drain every shard, optionally snapshot, release the WALs."""
        if not self._started:
            return
        for shard in self._shards:
            await shard.stop()
        if self._config.data_dir is not None and snapshot:
            self._write_snapshot()
            for shard in self._shards:
                shard.truncate_wal()
        for shard in self._shards:
            shard.close_wal()
        self._started = False

    def abort(self) -> None:
        """Crash simulation: drop writers and queued work on the floor."""
        for shard in self._shards:
            shard.abort()
        self._started = False

    async def snapshot(self) -> str:
        """Online snapshot: quiesce all shards, write one consistent cut."""
        if not self._started:
            raise RuntimeError("service is not started")
        if self._config.data_dir is None:
            raise RuntimeError("service has no data_dir; nothing to snapshot to")
        assert self._snapshot_lock is not None
        async with self._snapshot_lock:
            barriers = [shard.quiesce() for shard in self._shards]
            await asyncio.gather(*(b.parked.wait() for b in barriers))
            try:
                path = self._write_snapshot()
                for shard in self._shards:
                    shard.truncate_wal()
            finally:
                for barrier in barriers:
                    barrier.release.set()
            return path

    # -- the request API -------------------------------------------------------

    async def submit(self, op: Dict[str, Any]) -> Dict[str, Any]:
        """Apply one validated operation document; returns the result doc.

        This is the generic entry the wire front end uses; the typed
        helpers below build the documents for in-process callers.
        """
        if op.get("op") in ADMIN_OPS:
            raise ProtocolError(
                f"{op.get('op')!r} is a front-end operation; call the "
                "service method directly"
            )
        validate_request(op, self.resources)
        if op["op"] == "allocate_batch":
            return {"responses": await self.submit_batch(op["requests"])}
        return await self._shard(op["category"]).submit(op)

    async def submit_batch(
        self, requests: Sequence[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Apply a batch of operation documents, coalesced per shard.

        Responses come back in request order and are bit-identical to a
        sequential loop awaiting each request: within a shard the batch
        is applied contiguously in request order, and requests on
        different shards touch disjoint allocators.
        """
        for request in requests:
            if not isinstance(request, dict):
                raise ProtocolError("allocate_batch: every request must be an object")
            if request.get("op") not in (OP_ALLOCATE, OP_RETRY, OP_RECORD):
                raise ProtocolError(
                    f"allocate_batch: nested op {request.get('op')!r} not allowed"
                )
            validate_request(request, self.resources, depth=1)
        by_shard: Dict[int, List[int]] = {}
        for position, request in enumerate(requests):
            by_shard.setdefault(self.shard_for(request["category"]), []).append(position)
        ordered = sorted(by_shard.items())
        grouped = await asyncio.gather(
            *(
                self._shards[index].submit_many([requests[pos] for pos in positions])
                for index, positions in ordered
            )
        )
        responses: List[Optional[Dict[str, Any]]] = [None] * len(requests)
        for (_, positions), results in zip(ordered, grouped):
            for position, result in zip(positions, results):
                responses[position] = result
        return responses  # type: ignore[return-value]

    async def allocate(self, category: str, task_id: int) -> ResourceVector:
        """First-attempt allocation for one task of ``category``."""
        result = await self.submit(
            {"op": OP_ALLOCATE, "category": category, "task_id": task_id}
        )
        return ResourceVector.from_state(result["allocation"])

    async def allocate_retry(
        self,
        category: str,
        task_id: int,
        previous: ResourceVector,
        observed: ResourceVector,
        exhausted: Sequence[Union[Resource, str]],
    ) -> ResourceVector:
        """Re-allocation after ``previous`` was exhausted."""
        result = await self.submit(
            {
                "op": OP_RETRY,
                "category": category,
                "task_id": task_id,
                "previous": previous.state_dict(),
                "observed": observed.state_dict(),
                "exhausted": [str(res) for res in exhausted],
            }
        )
        return ResourceVector.from_state(result["allocation"])

    async def record(
        self,
        category: str,
        peaks: ResourceVector,
        task_id: int,
        significance: Optional[float] = None,
    ) -> int:
        """Feed back a completed task's peaks; returns the record count."""
        op: Dict[str, Any] = {
            "op": OP_RECORD,
            "category": category,
            "task_id": task_id,
            "peaks": peaks.state_dict(),
        }
        if significance is not None:
            op["significance"] = significance
        result = await self.submit(op)
        return int(result["records_count"])

    def _shard(self, category: str) -> AllocationShard:
        if not self._started:
            raise RuntimeError("service is not started")
        return self._shards[self.shard_for(category)]

    # -- introspection ---------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Operational counters, per shard and service-wide."""
        shards = [shard.stats() for shard in self._shards]
        return {
            "n_shards": self._config.n_shards,
            "algorithm": self._config.allocator.algorithm,
            "ops": sum(s["seq"] for s in shards),
            "shed": sum(s["shed"] for s in shards),
            "recovered_ops": self.recovered_ops,
            "shards": shards,
        }

    def health(self) -> Dict[str, Any]:
        """Liveness view for the wire ``health`` request.

        ``ok`` is false once any shard writer died at a crash point (or
        was aborted); the per-shard rows carry queue depth, breaker
        state, dedup occupancy, and durability wiring so an operator
        can see *why* before the daemon is bounced.
        """
        shards = [shard.stats() for shard in self._shards]
        for shard, row in zip(self._shards, shards):
            row["crashed"] = shard.crashed
        return {
            "ok": self._started and not any(s["crashed"] for s in shards),
            "started": self._started,
            "durability": self._config.durability,
            "wal": self._config.data_dir is not None,
            "dedup_window": self._config.dedup_window,
            "recovered_ops": self.recovered_ops,
            "dedup_hits": sum(s["dedup_hits"] for s in shards),
            "shards": shards,
        }

    def shard_digests(self) -> List[str]:
        """Per-shard allocator digests (bit-identity handles)."""
        return [shard.allocator.digest() for shard in self._shards]

    def __repr__(self) -> str:
        return (
            f"AllocationService(shards={self._config.n_shards}, "
            f"algorithm={self._config.allocator.algorithm!r}, "
            f"started={self._started})"
        )
